//! End-to-end TRP: server ↔ reader ↔ tags through the full device
//! simulation (no fast paths), across channel conditions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::core::trp;
use tagwatch::prelude::*;

fn server_and_floor(n: usize, m: u64) -> (MonitorServer, TagPopulation) {
    let floor = TagPopulation::with_sequential_ids(n);
    let server = MonitorServer::new(floor.ids(), m, 0.95).expect("valid params");
    (server, floor)
}

#[test]
fn intact_set_passes_over_many_rounds() {
    let (mut server, floor) = server_and_floor(300, 5);
    let mut rng = StdRng::seed_from_u64(1);
    let mut reader = Reader::new(ReaderConfig::default());
    for round in 0..20 {
        let challenge = server.issue_trp_challenge(&mut rng).unwrap();
        let bs = trp::run_reader(&mut reader, &challenge, &floor, &Channel::ideal()).unwrap();
        let report = server.verify_trp(challenge, &bs).unwrap();
        assert!(report.verdict.is_intact(), "round {round}: {report}");
    }
    assert_eq!(server.history().len(), 20);
    assert!(server.alarms().is_empty());
}

#[test]
fn theft_beyond_tolerance_is_detected_at_design_rate() {
    let (server, _) = server_and_floor(300, 5);
    let mut detected = 0u32;
    let trials = 200u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut floor = TagPopulation::with_sequential_ids(300);
        floor.remove_random(6, &mut rng).unwrap();
        let challenge = server.issue_trp_challenge(&mut rng).unwrap();
        let mut reader = Reader::new(ReaderConfig::default());
        let bs = trp::run_reader(&mut reader, &challenge, &floor, &Channel::ideal()).unwrap();
        let report = trp::verify(&server.registered_ids(), challenge, &bs).unwrap();
        if report.is_alarm() {
            detected += 1;
        }
    }
    let rate = f64::from(detected) / trials as f64;
    assert!(rate > 0.90, "detection rate {rate} (design target 0.95)");
}

#[test]
fn theft_within_tolerance_detection_is_not_required() {
    // Stealing <= m tags: the system gives NO guarantee either way; this
    // test pins the actual behaviour — detection is possible but the
    // rate is below the m+1 rate (fewer missing tags, Lemma 1).
    let (server, _) = server_and_floor(300, 10);
    let count_alarms = |steal: usize| -> u32 {
        let mut alarms = 0;
        for seed in 0..150u64 {
            let mut rng = StdRng::seed_from_u64(9_000 + seed);
            let mut floor = TagPopulation::with_sequential_ids(300);
            floor.remove_random(steal, &mut rng).unwrap();
            let challenge = server.issue_trp_challenge(&mut rng).unwrap();
            let bs = trp::observed_bitstring(&floor.ids(), &challenge);
            if trp::verify(&server.registered_ids(), challenge, &bs)
                .unwrap()
                .is_alarm()
            {
                alarms += 1;
            }
        }
        alarms
    };
    let small_theft = count_alarms(2);
    let big_theft = count_alarms(11);
    assert!(
        small_theft < big_theft,
        "2-tag theft alarmed {small_theft}, 11-tag theft {big_theft}"
    );
}

#[test]
fn perfect_channel_never_false_alarms() {
    // With no losses and an intact set, the bit-exact comparison must
    // match every time: zero false-positive rate on the ideal channel.
    let (mut server, floor) = server_and_floor(500, 0);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..30 {
        let challenge = server.issue_trp_challenge(&mut rng).unwrap();
        let bs = trp::observed_bitstring(&floor.ids(), &challenge);
        let report = server.verify_trp(challenge, &bs).unwrap();
        assert!(report.verdict.is_intact());
    }
}

#[test]
fn lossy_channel_fails_safe() {
    // Reply loss makes present tags look absent: the server may alarm
    // spuriously (fail safe) but must never be *fooled into intact* by
    // noise when tags genuinely are missing beyond tolerance.
    let lossy = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.05,
        ..ChannelConfig::default()
    })
    .unwrap();
    let (server, _) = server_and_floor(300, 5);
    let mut missed = 0;
    let trials = 100u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let mut floor = TagPopulation::with_sequential_ids(300);
        floor.remove_random(6, &mut rng).unwrap();
        let challenge = server.issue_trp_challenge(&mut rng).unwrap();
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &challenge, &floor, &lossy).unwrap();
        let report = trp::verify(&server.registered_ids(), challenge, &bs).unwrap();
        if !report.is_alarm() {
            missed += 1;
        }
    }
    // Loss only *adds* mismatches on top of the theft evidence, so the
    // miss rate can only shrink relative to the ideal channel.
    assert!(
        missed <= 10,
        "missed {missed}/{trials} thefts on a lossy channel"
    );
}

#[test]
fn phantom_noise_alarms_rather_than_masks() {
    // Phantom energy sets bits the server expected empty — extra
    // mismatches, i.e. alarms. It must never repair a missing-tag hole.
    let noisy = Channel::with_config(ChannelConfig {
        phantom_reply_prob: 0.02,
        ..ChannelConfig::default()
    })
    .unwrap();
    let (server, floor) = server_and_floor(200, 0);
    let mut rng = StdRng::seed_from_u64(77);
    let challenge = server.issue_trp_challenge(&mut rng).unwrap();
    let mut reader = Reader::new(ReaderConfig::default());
    let bs = trp::run_reader(&mut reader, &challenge, &floor, &noisy).unwrap();
    let expected = trp::expected_bitstring(&server.registered_ids(), &challenge);
    // Any phantom bit is a 0→1 flip relative to expectation; check that
    // no expected-1 bit was cleared (phantoms cannot hide tags).
    for (i, (exp, obs)) in expected.iter().zip(bs.iter()).enumerate() {
        if exp {
            assert!(obs, "slot {i}: phantom noise erased a present tag?");
        }
    }
}

#[test]
fn frame_sizes_scale_with_the_paper_shape() {
    // Sanity on the Eq. 2 implementation end-to-end through the server.
    let mut rng = StdRng::seed_from_u64(5);
    let mut last = 0;
    for n in [200usize, 400, 800, 1600] {
        let (server, _) = server_and_floor(n, 10);
        let f = server
            .issue_trp_challenge(&mut rng)
            .unwrap()
            .frame_size()
            .get();
        assert!(f > last, "frame must grow with n: {f} after {last}");
        assert!(f < n as u64 * 2, "frame {f} implausibly large for n={n}");
        last = f;
    }
}

#[test]
fn slot_accounting_matches_frame_size() {
    let (mut server, floor) = server_and_floor(150, 5);
    let mut rng = StdRng::seed_from_u64(8);
    let mut reader = Reader::new(ReaderConfig::default());
    let challenge = server.issue_trp_challenge(&mut rng).unwrap();
    let f = challenge.frame_size().get();
    let bs = trp::run_reader(&mut reader, &challenge, &floor, &Channel::ideal()).unwrap();
    assert_eq!(bs.len() as u64, f);
    assert_eq!(reader.slots_used(), f);
    server.verify_trp(challenge, &bs).unwrap();
}
