//! Integration tests for the long-horizon soak subsystem: seed
//! determinism (byte-identical event logs and JSON reports) and the
//! three soak invariants over randomized short schedules.

use proptest::prelude::*;

use tagwatch::analytics::soak::{run_soak, SoakConfig};
use tagwatch::analytics::TickProtocol;

fn base(seed: u64, ticks: u64, protocol: TickProtocol) -> SoakConfig {
    SoakConfig {
        seed,
        ticks,
        protocol,
        burst_period: 20,
        theft_period: 45,
        ..SoakConfig::default()
    }
}

#[test]
fn same_seed_soak_is_byte_identical_including_json() {
    let config = base(11, 90, TickProtocol::Utrp);
    let a = run_soak(&config).unwrap();
    let b = run_soak(&config).unwrap();
    assert_eq!(a.log, b.log, "event logs must be byte-identical");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.recovery_latencies, b.recovery_latencies);
    assert_eq!(a.audit_ticks, b.audit_ticks);
}

#[test]
fn soak_invariants_hold_for_both_protocols() {
    for protocol in [TickProtocol::Trp, TickProtocol::Utrp] {
        let report = run_soak(&base(5, 100, protocol)).unwrap();
        assert!(
            report.is_clean(),
            "{protocol:?} violations: {:?}",
            report.violations
        );
        // The run must actually exercise the machinery it claims to:
        assert!(
            report.counts.thefts >= 1,
            "{protocol:?}: no theft scheduled"
        );
        assert!(
            report.counts.escalations >= 1,
            "{protocol:?}: theft never escalated to identification"
        );
        assert!(
            !report.recovery_latencies.is_empty(),
            "{protocol:?}: no incident recovery measured"
        );
        // Every latency respects the detection deadline by construction
        // (a deadline breach is a violation, and the run is clean).
        let deadline = report.config.detection_deadline;
        assert!(report.recovery_latencies.iter().all(|&l| l <= deadline + 1));
    }
}

#[test]
fn log_lines_are_one_per_tick_and_stable_format() {
    let report = run_soak(&base(2, 40, TickProtocol::Utrp)).unwrap();
    assert_eq!(report.log.len(), 40);
    for (i, line) in report.log.iter().enumerate() {
        assert!(
            line.starts_with(&format!("t={i:05} level=")),
            "malformed log line {i}: {line}"
        );
        assert!(line.contains("verdict="), "{line}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Invariant sweep over random short schedules: whatever the seed
    // and incident cadence, a soak run must finish with zero invariant
    // violations and a log line per tick.
    #[test]
    fn soak_invariants_hold_over_random_short_schedules(
        seed in 1u64..10_000,
        ticks in 40u64..90,
        burst_period in 12u64..35,
        theft_period in 40u64..80,
    ) {
        let config = SoakConfig {
            seed,
            ticks,
            burst_period,
            theft_period,
            ..SoakConfig::default()
        };
        let report = run_soak(&config).unwrap();
        prop_assert!(
            report.is_clean(),
            "violations for seed {}: {:?}",
            seed,
            report.violations
        );
        prop_assert_eq!(report.log.len() as u64, ticks);
        // Audit frequency is bounded by attribution: in a run this
        // short every audit is near an incident, so the global count
        // stays well below one per tick.
        prop_assert!(report.counts.audits < ticks);
    }
}
