//! Cross-protocol consistency: every identification/estimation baseline
//! must agree with the ground-truth population, and their costs must
//! order the way the paper argues.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch::protocols::collect_all::{collect_all, CollectAllConfig, FramePolicy};
use tagwatch::protocols::estimate::{estimate_cardinality, EstimateConfig};
use tagwatch::protocols::query_tree::query_tree_inventory;

#[test]
fn collect_all_and_query_tree_find_the_same_set() {
    let mut rng = StdRng::seed_from_u64(11);
    let pop = TagPopulation::with_random_ids(256, &mut rng);
    let truth: std::collections::BTreeSet<TagId> = pop.ids().into_iter().collect();

    // Query tree.
    let qt = query_tree_inventory(&pop, &TimingModel::uniform_slots());
    let qt_set: std::collections::BTreeSet<TagId> = qt.collected.iter().copied().collect();
    assert_eq!(qt_set, truth);

    // Collect-all.
    let mut reader = Reader::new(ReaderConfig::default());
    let mut floor = pop.clone();
    let run = collect_all(
        &mut reader,
        &mut floor,
        &Channel::ideal(),
        &CollectAllConfig::paper(256, 0),
        &mut rng,
    )
    .unwrap();
    let ca_set: std::collections::BTreeSet<TagId> = run.collected.iter().copied().collect();
    assert_eq!(ca_set, truth);
}

#[test]
fn estimator_brackets_the_true_cardinality() {
    let mut rng = StdRng::seed_from_u64(12);
    for n in [50usize, 200, 600] {
        let pop = TagPopulation::with_sequential_ids(n);
        let mut reader = Reader::new(ReaderConfig::default());
        let outcome = estimate_cardinality(
            &mut reader,
            &pop,
            &Channel::ideal(),
            &EstimateConfig::for_expected(n as u64).unwrap(),
            &mut rng,
        )
        .unwrap();
        let rel = (outcome.estimate - n as f64).abs() / n as f64;
        assert!(
            rel < 0.25,
            "n={n}: estimate {} off by {rel}",
            outcome.estimate
        );
    }
}

#[test]
fn monitoring_beats_identification_in_slots() {
    // The paper's core claim, as an executable assertion: for every
    // tested n, the TRP frame is smaller than what any identification
    // protocol spends.
    let mut rng = StdRng::seed_from_u64(13);
    for n in [200usize, 500, 1000] {
        let params = MonitorParams::new(n as u64, 10, 0.95).unwrap();
        let trp_slots = trp_frame_size(&params).unwrap().get();

        let pop = TagPopulation::with_sequential_ids(n);
        let qt = query_tree_inventory(&pop, &TimingModel::uniform_slots());

        let mut reader = Reader::new(ReaderConfig::default());
        let mut floor = pop.clone();
        let ca = collect_all(
            &mut reader,
            &mut floor,
            &Channel::ideal(),
            &CollectAllConfig::paper(n as u64, 10),
            &mut rng,
        )
        .unwrap();

        assert!(
            trp_slots < ca.total_slots,
            "n={n}: trp {trp_slots} vs collect-all {}",
            ca.total_slots
        );
        assert!(
            trp_slots < qt.total_queries,
            "n={n}: trp {trp_slots} vs query-tree {}",
            qt.total_queries
        );
    }
}

#[test]
fn frame_policies_all_terminate_and_agree_on_the_set() {
    let mut rng = StdRng::seed_from_u64(14);
    let truth: std::collections::BTreeSet<TagId> = TagPopulation::with_sequential_ids(150)
        .ids()
        .into_iter()
        .collect();
    for policy in [
        FramePolicy::LeeOptimal,
        FramePolicy::Fixed(64),
        FramePolicy::Adaptive(16),
    ] {
        let mut reader = Reader::new(ReaderConfig::default());
        let mut floor = TagPopulation::with_sequential_ids(150);
        let run = collect_all(
            &mut reader,
            &mut floor,
            &Channel::ideal(),
            &CollectAllConfig {
                expected_tags: 150,
                tolerance: 0,
                policy,
                max_rounds: 10_000,
            },
            &mut rng,
        )
        .unwrap();
        let set: std::collections::BTreeSet<TagId> = run.collected.iter().copied().collect();
        assert_eq!(set, truth, "{policy:?}");
        assert!(!run.truncated, "{policy:?} truncated");
    }
}

#[test]
fn lee_policy_is_cheapest_of_the_dfsa_policies() {
    // The Lee-optimal frame sizing the paper cites should beat naive
    // fixed frames on total slots (that is why Fig. 4 uses it).
    let run_with = |policy: FramePolicy, seed: u64| -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig::default());
        let mut floor = TagPopulation::with_sequential_ids(400);
        collect_all(
            &mut reader,
            &mut floor,
            &Channel::ideal(),
            &CollectAllConfig {
                expected_tags: 400,
                tolerance: 0,
                policy,
                max_rounds: 100_000,
            },
            &mut rng,
        )
        .unwrap()
        .total_slots
    };
    let lee: u64 = (0..5).map(|s| run_with(FramePolicy::LeeOptimal, s)).sum();
    let tiny_fixed: u64 = (0..5).map(|s| run_with(FramePolicy::Fixed(32), s)).sum();
    let huge_fixed: u64 = (0..5).map(|s| run_with(FramePolicy::Fixed(4096), s)).sum();
    assert!(lee < tiny_fixed, "lee {lee} vs fixed-32 {tiny_fixed}");
    assert!(lee < huge_fixed, "lee {lee} vs fixed-4096 {huge_fixed}");
}

#[test]
fn collect_all_matches_registry_diff_detection() {
    // Collect-all detects missing tags exactly (that is its virtue —
    // cost is its vice): registry minus collected = the stolen set.
    let mut rng = StdRng::seed_from_u64(15);
    let mut floor = TagPopulation::with_sequential_ids(200);
    let registry: std::collections::BTreeSet<TagId> = floor.ids().into_iter().collect();
    let stolen = floor.remove_random(7, &mut rng).unwrap();
    let stolen_ids: std::collections::BTreeSet<TagId> = stolen.iter().map(|t| t.id()).collect();

    let mut reader = Reader::new(ReaderConfig::default());
    let run = collect_all(
        &mut reader,
        &mut floor,
        &Channel::ideal(),
        &CollectAllConfig::paper(200, 0),
        &mut rng,
    )
    .unwrap();
    let collected: std::collections::BTreeSet<TagId> = run.collected.into_iter().collect();
    let diff: std::collections::BTreeSet<TagId> =
        registry.difference(&collected).copied().collect();
    assert_eq!(diff, stolen_ids);
}
