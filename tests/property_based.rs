//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;

use tagwatch::analytics::PooledEngine;
use tagwatch::core::utrp::{
    simulate_round, simulate_round_reference, UtrpChallenge, UtrpParticipant,
};
use tagwatch::core::{trp, Bitstring, NonceSequence, RoundEngine, RoundScratch, TrpChallenge};
use tagwatch::obs::Obs;
use tagwatch::prelude::*;
use tagwatch::sim::aloha::{predicted_occupancy, FramePlan};
use tagwatch::sim::{slot_for, slot_for_counted};

fn bits(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..max_len)
}

/// One observed UTRP round through `engine`: the triple every exact
/// engine must agree on (occupancy, announcements, probe total).
fn observed_round<E: RoundEngine>(
    engine: &mut E,
    parts: &[UtrpParticipant],
    ch: &UtrpChallenge,
) -> (Bitstring, u64, u64) {
    let obs = Obs::new();
    engine.load_participants(parts);
    let announcements = engine
        .run_observed(ch.frame_size(), ch.nonces(), &obs)
        .expect("nonce sequence covers the frame");
    (
        engine.take_bitstring(),
        announcements,
        obs.counter(obs.m.probes_total),
    )
}

proptest! {
    // ---------------- bitstring algebra ----------------

    #[test]
    fn bitstring_round_trips_bools(pattern in bits(300)) {
        let bs = Bitstring::from_bools(&pattern);
        prop_assert_eq!(bs.to_bools(), pattern.clone());
        prop_assert_eq!(bs.len(), pattern.len());
        prop_assert_eq!(bs.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bitstring_or_is_commutative_and_monotone(a in bits(256), b in bits(256)) {
        let la = a.len().min(b.len());
        let x = Bitstring::from_bools(&a[..la]);
        let y = Bitstring::from_bools(&b[..la]);
        let xy = x.or(&y).unwrap();
        let yx = y.or(&x).unwrap();
        prop_assert_eq!(&xy, &yx);
        prop_assert!(xy.count_ones() >= x.count_ones().max(y.count_ones()));
    }

    #[test]
    fn bitstring_xor_self_is_zero(a in bits(256)) {
        let x = Bitstring::from_bools(&a);
        let z = x.xor(&x).unwrap();
        prop_assert_eq!(z.count_ones(), 0);
        prop_assert_eq!(x.hamming_distance(&x).unwrap(), 0);
    }

    #[test]
    fn hamming_is_a_metric_sample(a in bits(128), b in bits(128), c in bits(128)) {
        let l = a.len().min(b.len()).min(c.len());
        let x = Bitstring::from_bools(&a[..l]);
        let y = Bitstring::from_bools(&b[..l]);
        let z = Bitstring::from_bools(&c[..l]);
        let xy = x.hamming_distance(&y).unwrap();
        let yz = y.hamming_distance(&z).unwrap();
        let xz = x.hamming_distance(&z).unwrap();
        prop_assert!(xz <= xy + yz, "triangle inequality violated");
        prop_assert_eq!(xy, y.hamming_distance(&x).unwrap());
    }

    #[test]
    fn mismatch_indices_match_xor(a in bits(200), b in bits(200)) {
        let l = a.len().min(b.len());
        let x = Bitstring::from_bools(&a[..l]);
        let y = Bitstring::from_bools(&b[..l]);
        let idx = x.mismatch_indices(&y).unwrap();
        prop_assert_eq!(idx.len(), x.hamming_distance(&y).unwrap());
        for i in idx {
            prop_assert_ne!(x.get(i).unwrap(), y.get(i).unwrap());
        }
    }

    // ---------------- hashing ----------------

    #[test]
    fn slots_always_land_in_frame(id in any::<u64>(), r in any::<u64>(), ct in any::<u64>(), f in 1u64..100_000) {
        let f = FrameSize::new(f).unwrap();
        prop_assert!(slot_for(TagId::from(id), Nonce::new(r), f) < f.get());
        prop_assert!(slot_for_counted(TagId::from(id), Nonce::new(r), Counter::new(ct), f) < f.get());
    }

    #[test]
    fn predicted_occupancy_is_union_of_slots(ids in prop::collection::hash_set(any::<u64>(), 0..60), r in any::<u64>(), f in 1u64..512) {
        let f = FrameSize::new(f).unwrap();
        let ids: Vec<TagId> = ids.into_iter().map(TagId::from).collect();
        let occ = predicted_occupancy(&ids, Nonce::new(r), f);
        // Exactly the slots some tag picked are set.
        let mut expect = vec![false; f.as_usize()];
        for &id in &ids {
            expect[slot_for(id, Nonce::new(r), f) as usize] = true;
        }
        prop_assert_eq!(occ, expect);
    }

    // ---------------- TRP protocol ----------------

    #[test]
    fn trp_expected_equals_observed_for_intact_sets(n in 1usize..200, f in 1u64..1024, r in any::<u64>(), seed in any::<u64>()) {
        let _ = seed;
        let pop = TagPopulation::with_sequential_ids(n);
        let ch = TrpChallenge::new(FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r)));
        let expected = trp::expected_bitstring(&pop.ids(), &ch);
        let observed = trp::observed_bitstring(&pop.ids(), &ch);
        prop_assert_eq!(&expected, &observed);
        let report = trp::verify(&pop.ids(), ch, &observed).unwrap();
        prop_assert!(report.verdict.is_intact());
    }

    #[test]
    fn trp_missing_tags_never_add_bits(n in 10usize..150, steal in 1usize..9, f in 16u64..512, r in any::<u64>(), seed in any::<u64>()) {
        // Removing tags can only clear bits: observed ⊆ expected.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pop = TagPopulation::with_sequential_ids(n);
        let all = pop.ids();
        let steal = steal.min(n - 1);
        pop.remove_random(steal, &mut rng).unwrap();
        let ch = TrpChallenge::new(FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r)));
        let expected = trp::expected_bitstring(&all, &ch);
        let observed = trp::observed_bitstring(&pop.ids(), &ch);
        let union = expected.or(&observed).unwrap();
        prop_assert_eq!(union, expected, "a missing tag added energy?");
    }

    // ---------------- UTRP round engine ----------------

    #[test]
    fn utrp_fast_equals_reference_everywhere(
        n in 0usize..60,
        f in 1u64..160,
        seed in any::<u64>(),
        mute_mod in 1u64..12,
        ct0 in 0u64..50,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ch = UtrpChallenge::generate(
            FrameSize::new(f).unwrap(),
            &TimingModel::gen2(),
            &mut rng,
        );
        let mut fast: Vec<UtrpParticipant> = (1..=n as u64)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(ct0 + i));
                p.mute = i % mute_mod == 0;
                p
            })
            .collect();
        let mut reference = fast.clone();
        let a = simulate_round(&mut fast, ch.frame_size(), ch.nonces()).unwrap();
        let b = simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast, reference);
    }

    // The pooled engine is an exact engine: for any population
    // (scattered counters, mute tags), any frame, and any worker
    // count, its sharded scan must reproduce the scalar engine's
    // bitstring, announcement count, AND observed probe total — the
    // probe accounting is `Σ active_i`, so it is chunking- and
    // thread-invariant by contract. The threshold is forced down so
    // the workers actually engage at proptest-sized populations.
    #[test]
    fn pooled_engine_matches_scalar_at_any_thread_count(
        n in 1usize..300,
        f in 8u64..200,
        seed in any::<u64>(),
        threads in 1usize..5,
        mute_mod in 1u64..12,
        ct0 in 0u64..50,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ch = UtrpChallenge::generate(
            FrameSize::new(f).unwrap(),
            &TimingModel::gen2(),
            &mut rng,
        );
        let parts: Vec<UtrpParticipant> = (1..=n as u64)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(ct0 + i % 7));
                p.mute = i % mute_mod == 0;
                p
            })
            .collect();

        let expected = observed_round(&mut RoundScratch::new(), &parts, &ch);
        let mut engine = PooledEngine::with_threshold(threads, 16);
        let got = observed_round(&mut engine, &parts, &ch);
        prop_assert_eq!(&got, &expected, "threads={}", threads);
    }

    #[test]
    fn utrp_round_invariants(n in 1usize..80, f in 1u64..200, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ch = UtrpChallenge::generate(
            FrameSize::new(f).unwrap(),
            &TimingModel::gen2(),
            &mut rng,
        );
        let mut parts: Vec<UtrpParticipant> = (1..=n as u64)
            .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
            .collect();
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        // Occupied slots never exceed participants or frame size.
        prop_assert!(outcome.bitstring.count_ones() <= n.min(f as usize));
        // Announcements: 1 initial + at most one per occupied slot.
        prop_assert!(outcome.announcements >= 1);
        prop_assert!(outcome.announcements <= 1 + outcome.bitstring.count_ones() as u64);
        // All counters advanced by exactly the announcement count.
        prop_assert!(parts.iter().all(|p| p.counter.get() == outcome.announcements));
    }

    // ---------------- nonce sequences ----------------

    #[test]
    fn nonce_cursor_yields_sequence_in_order(len in 0usize..200, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seq = NonceSequence::generate(len, &mut rng);
        let mut cur = seq.cursor();
        for k in 0..len {
            prop_assert_eq!(cur.next_nonce().unwrap(), seq.get(k).unwrap());
        }
        prop_assert!(cur.next_nonce().is_err());
    }

    // ---------------- frame sizing ----------------

    #[test]
    fn trp_frame_satisfies_constraint_on_random_params(n in 2u64..800, m_frac in 0.0f64..0.3, alpha in 0.5f64..0.999) {
        let m = ((n - 1) as f64 * m_frac) as u64;
        let params = MonitorParams::new(n, m, alpha).unwrap();
        let f = trp_frame_size(&params).unwrap().get();
        let g = tagwatch::core::math::detection::detection_probability(
            n, m + 1, f, tagwatch::core::math::detection::EmptySlotModel::Poisson);
        prop_assert!(g > alpha, "g({f}) = {g} <= {alpha}");
        if f > 1 {
            let g_prev = tagwatch::core::math::detection::detection_probability(
                n, m + 1, f - 1, tagwatch::core::math::detection::EmptySlotModel::Poisson);
            prop_assert!(g_prev <= alpha, "f not minimal: g({}) = {g_prev}", f - 1);
        }
    }
}
