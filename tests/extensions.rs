//! Integration tests for the extension features through the facade:
//! grouped monitoring, missing-tag identification, monitoring sessions,
//! registry persistence, SGTIN identities, and the counter ablation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch::analytics::{MonitoringSession, Policy, SessionEvent, TickProtocol};
use tagwatch::attack::rescan::{counterless_round, prescan_attack};
use tagwatch::core::groups::GroupedMonitor;
use tagwatch::core::trp::observed_bitstring;
use tagwatch::core::utrp::expected_round;
use tagwatch::prelude::*;
use tagwatch::sim::sgtin_batch;

#[test]
fn grouped_monitor_with_sgtin_identities_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1);
    let pallets: Vec<(String, Vec<TagId>)> = (0..4)
        .map(|k| {
            let ids = sgtin_batch(0xC0FFEE, 100 + k, 0, 200 + 50 * k).unwrap();
            (format!("pallet-{k}"), ids)
        })
        .collect();

    let mut monitor = GroupedMonitor::new();
    for (name, ids) in &pallets {
        monitor
            .add_group(name, ids.iter().copied(), 3, 0.95)
            .unwrap();
    }
    assert_eq!(monitor.total_tags(), 200 + 250 + 300 + 350);

    // Steal from pallet-2 beyond tolerance; others intact.
    let mut floor2 = TagPopulation::from_ids(pallets[2].1.clone()).unwrap();
    floor2.remove_random(4, &mut rng).unwrap();

    let audit = monitor.issue_audit(&mut rng).unwrap();
    let mut responses = BTreeMap::new();
    for (name, ids) in &pallets {
        let present = if name == "pallet-2" {
            floor2.ids()
        } else {
            ids.clone()
        };
        responses.insert(
            name.clone(),
            observed_bitstring(&present, audit.challenge(name).unwrap()),
        );
    }
    let report = monitor.verify_audit(audit, &responses).unwrap();
    // 4 tags stolen at m = 3: detection designed > 0.95 (this seed
    // detects); the other pallets must never false-alarm.
    for k in [0, 1, 3] {
        assert!(!report.per_group[&format!("pallet-{k}")].is_alarm());
    }
    assert!(report.per_group["pallet-2"].is_alarm());
}

#[test]
fn identification_after_detection_names_the_exact_tags() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut floor = TagPopulation::with_sequential_ids(500);
    let registry = floor.ids();
    let stolen = floor.remove_random(9, &mut rng).unwrap();
    let mut stolen_ids: Vec<TagId> = stolen.iter().map(|t| t.id()).collect();
    stolen_ids.sort_unstable();

    // Detection first (one cheap frame)…
    let params = MonitorParams::new(500, 5, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap();
    let ch = TrpChallenge::generate(f, &mut rng);
    let report = tagwatch::core::trp::verify(
        &registry,
        ch.clone(),
        &observed_bitstring(&floor.ids(), &ch),
    )
    .unwrap();
    assert!(report.is_alarm());

    // …then identification pins the culprits.
    let outcome = identify_missing(&registry, IdentifyConfig::default(), &mut rng, |c| {
        Ok(observed_bitstring(&floor.ids(), c))
    })
    .unwrap();
    assert_eq!(outcome.missing, stolen_ids);
    assert!(outcome.unresolved.is_empty());
}

#[test]
fn utrp_session_survives_a_snapshot_restore_cycle() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut floor = TagPopulation::with_sequential_ids(150);
    let server = MonitorServer::new(floor.ids(), 4, 0.95).unwrap();
    let policy = Policy {
        protocol: TickProtocol::Utrp,
        ..Policy::default()
    };
    let mut session = MonitoringSession::builder(server)
        .policy(policy.clone())
        .build();

    for _ in 0..3 {
        assert!(!session.tick(&mut floor, &mut rng).unwrap().is_alarm());
    }

    // Power cycle: persist, restore, keep monitoring with live counters.
    let text = session.server().snapshot().to_text();
    let restored = MonitorServer::from_snapshot(
        RegistrySnapshot::from_text(&text).unwrap(),
        *session.server().config(),
    )
    .unwrap();
    let mut session = MonitoringSession::builder(restored).policy(policy).build();
    for _ in 0..3 {
        assert!(
            !session.tick(&mut floor, &mut rng).unwrap().is_alarm(),
            "restored mirror must keep verifying the same physical tags"
        );
    }
}

#[test]
fn session_escalation_event_is_logged_in_order() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut floor = TagPopulation::with_sequential_ids(250);
    let server = MonitorServer::new(floor.ids(), 3, 0.95).unwrap();
    let mut session = MonitoringSession::builder(server)
        .alarms_to_escalate(1)
        .build();
    session.tick(&mut floor, &mut rng).unwrap();
    floor.remove_random(6, &mut rng).unwrap();
    session.tick(&mut floor, &mut rng).unwrap();

    let log = session.log();
    assert!(matches!(log[0], SessionEvent::Checked(_)));
    assert!(matches!(log[1], SessionEvent::Checked(_)));
    assert!(matches!(log[2], SessionEvent::Escalated { .. }));
    if let SessionEvent::Escalated { missing, .. } = &log[2] {
        assert_eq!(missing.len(), 6);
    }
}

#[test]
fn counter_ablation_story_holds_through_the_facade() {
    // Counter-less UTRP: offline forgery perfect. Real UTRP: useless.
    let mut rng = StdRng::seed_from_u64(5);
    let mut s1 = TagPopulation::with_sequential_ids(100);
    let s2 = s1.split_random(7, &mut rng).unwrap();
    let f = FrameSize::new(250).unwrap();
    let challenge = UtrpChallenge::generate(f, &TimingModel::gen2(), &mut rng);

    let all: Vec<TagId> = s1.ids().into_iter().chain(s2.ids()).collect();
    let counterless_expected =
        counterless_round(&all, challenge.frame_size(), challenge.nonces()).unwrap();
    let forged = prescan_attack(&s1.ids(), &s2.ids(), &challenge).unwrap();
    assert_eq!(forged, counterless_expected, "counterless design is broken");

    let registry: Vec<(TagId, Counter)> = all.iter().map(|&id| (id, Counter::ZERO)).collect();
    let real_expected = expected_round(&registry, &challenge).unwrap();
    assert_ne!(
        forged, real_expected.bitstring,
        "the hardware counter defeats the offline forgery"
    );
}

#[test]
fn sgtin_identities_flow_through_trp_unchanged() {
    let mut rng = StdRng::seed_from_u64(6);
    let ids = sgtin_batch(0xFEED5, 42, 10_000, 400).unwrap();
    let mut server = MonitorServer::new(ids.clone(), 5, 0.95).unwrap();
    let ch = server.issue_trp_challenge(&mut rng).unwrap();
    let bs = observed_bitstring(&ids, &ch);
    assert!(server.verify_trp(ch, &bs).unwrap().verdict.is_intact());

    // Every registered ID decodes back to its SGTIN fields.
    for id in &ids {
        let sgtin = Sgtin96::decode(*id).unwrap();
        assert_eq!(sgtin.company_prefix, 0xFEED5);
        assert_eq!(sgtin.item_reference, 42);
    }
}
