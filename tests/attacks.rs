//! Adversarial integration: every implemented attack against both
//! protocols, through the public server API — the security claims of
//! the paper as executable assertions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::attack::colluder::{collude_utrp, ColluderConfig};
use tagwatch::attack::replay::ReplayAttacker;
use tagwatch::attack::split_set::split_set_attack;
use tagwatch::core::trp::observed_bitstring;
use tagwatch::prelude::*;

const N: usize = 250;
const M: u64 = 5;

fn fresh_server() -> MonitorServer {
    MonitorServer::new(TagPopulation::with_sequential_ids(N).ids(), M, 0.95).unwrap()
}

#[test]
fn replay_never_beats_fresh_challenges() {
    let mut server = fresh_server();
    let stock = TagPopulation::with_sequential_ids(N);
    let mut rng = StdRng::seed_from_u64(1);

    let mut attacker = ReplayAttacker::new();
    // Attacker tapes 5 honest rounds while the set is intact.
    for _ in 0..5 {
        let ch = server.issue_trp_challenge(&mut rng).unwrap();
        attacker.record(&ch, observed_bitstring(&stock.ids(), &ch));
        // The honest result is also submitted, keeping the server happy.
        let bs = attacker.respond(&ch);
        assert!(server.verify_trp(ch, &bs).unwrap().verdict.is_intact());
    }
    assert_eq!(attacker.recordings(), 5);

    // Theft happens; attacker replays tapes against 50 fresh challenges.
    for _ in 0..50 {
        let ch = server.issue_trp_challenge(&mut rng).unwrap();
        let bs = attacker.respond(&ch);
        let report = server.verify_trp(ch, &bs).unwrap();
        assert!(report.is_alarm(), "a taped bitstring passed a fresh nonce");
    }
}

#[test]
fn split_set_collusion_beats_trp_but_not_utrp() {
    let mut rng = StdRng::seed_from_u64(2);

    // TRP: the Alg. 4 attack passes every time.
    let mut trp_server = fresh_server();
    let mut s1 = TagPopulation::with_sequential_ids(N);
    let s2 = s1.split_random((M + 1) as usize, &mut rng).unwrap();
    for _ in 0..20 {
        let ch = trp_server.issue_trp_challenge(&mut rng).unwrap();
        let forged = split_set_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
        let report = trp_server.verify_trp(ch, &forged).unwrap();
        assert!(report.verdict.is_intact(), "Alg. 4 must defeat plain TRP");
    }

    // UTRP: the strongest colluder variant is caught at the design rate.
    let mut caught = 0;
    let trials = 100u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let mut server = fresh_server();
        let ch = server.issue_utrp_challenge(&mut rng).unwrap();
        let mut a1 = TagPopulation::with_sequential_ids(N);
        let mut a2 = a1.split_random((M + 1) as usize, &mut rng).unwrap();
        let outcome = collude_utrp(
            &mut a1,
            &mut a2,
            &ch,
            &ColluderConfig {
                sync_budget: 20,
                tcomm: SimDuration::from_micros(1),
            },
            &server.config().timing.clone(),
        )
        .unwrap();
        if server
            .verify_utrp(ch, &outcome.response)
            .unwrap()
            .is_alarm()
        {
            caught += 1;
        }
    }
    assert!(
        caught as f64 / trials as f64 > 0.9,
        "UTRP caught only {caught}/{trials}"
    );
}

#[test]
fn colluders_with_more_budget_evade_more() {
    // Detection should degrade monotonically (statistically) in the
    // sync budget — the quantity the deadline exists to cap.
    let rate_at = |budget: u64| -> f64 {
        let trials = 150u64;
        let mut caught = 0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(7_000 + seed);
            let mut server = fresh_server();
            // A deliberately small frame so budget matters.
            let f = FrameSize::new(150).unwrap();
            let ch = server.issue_utrp_challenge_with_frame(f, &mut rng).unwrap();
            let mut a1 = TagPopulation::with_sequential_ids(N);
            let mut a2 = a1.split_random((M + 1) as usize, &mut rng).unwrap();
            let outcome = collude_utrp(
                &mut a1,
                &mut a2,
                &ch,
                &ColluderConfig {
                    sync_budget: budget,
                    tcomm: SimDuration::from_micros(1),
                },
                &server.config().timing.clone(),
            )
            .unwrap();
            if server
                .verify_utrp(ch, &outcome.response)
                .unwrap()
                .is_alarm()
            {
                caught += 1;
            }
        }
        caught as f64 / trials as f64
    };
    let weak = rate_at(0);
    let strong = rate_at(120);
    assert!(
        weak > strong + 0.1,
        "budget 0 caught {weak}, budget 120 caught {strong}"
    );
}

#[test]
fn a_dishonest_reader_cannot_rescan_to_learn_the_pattern() {
    // Fig. 3's "re-seed backwards" attack: running the round twice gives
    // different bitstrings (counters moved), so pre-scanning the tags
    // teaches the attacker nothing about the verifiable answer.
    let mut rng = StdRng::seed_from_u64(3);
    let server = fresh_server();
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    let timing = server.config().timing;

    let mut floor = TagPopulation::with_sequential_ids(N);
    let first = tagwatch::core::utrp::run_honest_reader(&mut floor, &ch, &timing).unwrap();
    let second = tagwatch::core::utrp::run_honest_reader(&mut floor, &ch, &timing).unwrap();
    assert_ne!(
        first.bitstring, second.bitstring,
        "rescanning must re-randomize the bitstring"
    );
}

#[test]
fn forged_all_ones_and_all_zeros_fail() {
    // Lazy forgeries: claim everything answered / nothing answered.
    let mut server = fresh_server();
    let mut rng = StdRng::seed_from_u64(4);

    let ch = server.issue_trp_challenge(&mut rng).unwrap();
    let f = ch.frame_size().as_usize();
    let ones: Bitstring = (0..f).map(|_| true).collect();
    assert!(server.verify_trp(ch, &ones).unwrap().is_alarm());

    let ch = server.issue_trp_challenge(&mut rng).unwrap();
    let zeros = Bitstring::zeros(f);
    assert!(server.verify_trp(ch, &zeros).unwrap().is_alarm());
}

#[test]
fn random_guessing_has_negligible_success() {
    // A forger without the IDs guessing a random bitstring: with ~40%
    // of slots occupied, the per-slot match probability makes success
    // astronomically small. 200 attempts must all fail.
    use rand::Rng;
    let mut server = fresh_server();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let ch = server.issue_trp_challenge(&mut rng).unwrap();
        let f = ch.frame_size().as_usize();
        let guess: Bitstring = (0..f).map(|_| rng.gen_bool(0.5)).collect();
        assert!(server.verify_trp(ch, &guess).unwrap().is_alarm());
    }
}

#[test]
fn desync_diagnosis_never_accepts_colluders_and_names_stolen_tags() {
    // The robustness tradeoff, as an executable assertion. With a
    // desync window enabled (it is OFF by default precisely because of
    // this), a colluding reader holding the stolen tags can steer some
    // rounds into `Desynced` instead of an outright alarm — the stolen
    // tag genuinely lags its mirror, indistinguishably from a tag that
    // missed an announcement. Two things must still hold: the set is
    // NEVER accepted as intact above the design miss rate, and every
    // diagnosed suspect is one of the stolen tags, so the follow-up
    // physical check reveals the theft.
    let trials = 100u64;
    let mut accepted = 0u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(2_000 + seed);
        let mut server = MonitorServer::with_config(
            TagPopulation::with_sequential_ids(N).ids(),
            M,
            0.95,
            ServerConfig {
                desync_window: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let ch = server.issue_utrp_challenge(&mut rng).unwrap();
        let mut a1 = TagPopulation::with_sequential_ids(N);
        let mut a2 = a1.split_random((M + 1) as usize, &mut rng).unwrap();
        let stolen = a2.ids();
        let outcome = collude_utrp(
            &mut a1,
            &mut a2,
            &ch,
            &ColluderConfig {
                sync_budget: 20,
                tcomm: SimDuration::from_micros(1),
            },
            &server.config().timing.clone(),
        )
        .unwrap();
        let report = server.verify_utrp(ch, &outcome.response).unwrap();
        match report.verdict {
            Verdict::Intact => accepted += 1,
            Verdict::NotIntact => {}
            Verdict::Desynced { ref suspects } => {
                assert!(
                    suspects.iter().all(|s| stolen.contains(s)),
                    "desync diagnosis blamed an innocent tag: {suspects:?}"
                );
                // Inconclusive, not a pass: the mirror is poisoned until
                // resolved.
                assert!(!server.counters_synced());
            }
        }
    }
    // Design band, not exactly 1 - alpha: Fig. 7 measures detection
    // as low as 0.925 on small-n cells, and this seed range lands 12
    // wins with the diagnosis disabled too — the window converts zero
    // additional rounds into a pass.
    assert!(
        (accepted as f64 / trials as f64) < 0.15,
        "colluders accepted as intact {accepted}/{trials}"
    );
}
