//! Integration tests for the observability subsystem's export
//! discipline: same seed and plan must yield byte-identical JSONL
//! event traces and metrics snapshots at every layer — the observed
//! protocol rounds, the chunked parallel scanner, and the soak driver
//! (including its automatic flight dump on an invariant violation).

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch::analytics::scan::run_round_chunked_observed;
use tagwatch::analytics::soak::{run_soak_observed, SoakConfig};
use tagwatch::analytics::{worker_threads, PooledEngine, TickProtocol};
use tagwatch::core::utrp::{UtrpChallenge, UtrpParticipant};
use tagwatch::core::{
    MonitorServer, Protocol, RoundEngine, RoundExecutor, RoundScratch, Trp, Utrp,
};
use tagwatch::obs::Obs;
use tagwatch::sim::{Channel, Counter, FrameSize, TagId, TagPopulation, TimingModel};

/// Drives `rounds` observed rounds of `protocol` through `engine`
/// against a fresh server/floor pair and returns the export artifacts.
fn run_observed_rounds_with<P: Protocol, E: RoundEngine>(
    protocol: &P,
    seed: u64,
    rounds: usize,
    engine: &mut E,
) -> (String, String, u64) {
    let n = 150usize;
    let floor_src = TagPopulation::with_sequential_ids(n);
    let mut floor = floor_src.clone();
    let mut server = MonitorServer::new(floor_src.ids(), 4, 0.95).expect("valid params");
    let executor = RoundExecutor::new(Channel::ideal(), None);
    let mut rng = StdRng::seed_from_u64(seed);
    let obs = Obs::new();
    for _ in 0..rounds {
        let report = protocol
            .run_round_observed(&mut server, &mut floor, &executor, engine, &mut rng, &obs)
            .expect("round runs");
        assert!(report.verdict.is_intact(), "nothing is missing");
    }
    (
        obs.flight_jsonl(),
        obs.snapshot_json(),
        obs.snapshot_digest(),
    )
}

/// [`run_observed_rounds_with`] through the scalar scratch engine.
fn run_observed_rounds<P: Protocol>(
    protocol: &P,
    seed: u64,
    rounds: usize,
) -> (String, String, u64) {
    run_observed_rounds_with(protocol, seed, rounds, &mut RoundScratch::new())
}

#[test]
fn trp_exports_are_byte_identical_across_same_seed_runs() {
    let (trace_a, metrics_a, digest_a) = run_observed_rounds(&Trp, 17, 6);
    let (trace_b, metrics_b, digest_b) = run_observed_rounds(&Trp, 17, 6);
    assert!(!trace_a.is_empty(), "rounds must emit flight events");
    assert_eq!(trace_a, trace_b, "TRP trace must be byte-stable");
    assert_eq!(metrics_a, metrics_b, "TRP snapshot must be byte-stable");
    assert_eq!(digest_a, digest_b);
    assert!(trace_a.contains("\"type\":\"round_completed\",\"proto\":\"trp\""));
    assert!(metrics_a.contains("\"schema\": \"tagwatch-obs-metrics-v1\""));
}

#[test]
fn utrp_exports_are_byte_identical_across_same_seed_runs() {
    let (trace_a, metrics_a, digest_a) = run_observed_rounds(&Utrp, 23, 6);
    let (trace_b, metrics_b, digest_b) = run_observed_rounds(&Utrp, 23, 6);
    assert_eq!(trace_a, trace_b, "UTRP trace must be byte-stable");
    assert_eq!(metrics_a, metrics_b, "UTRP snapshot must be byte-stable");
    assert_eq!(digest_a, digest_b);
    assert!(trace_a.contains("\"type\":\"round_completed\",\"proto\":\"utrp\""));
    assert!(trace_a.contains("\"type\":\"verified\""));
}

/// Pulls one counter's export line out of a metrics snapshot.
fn counter_line(snapshot: &str, key: &str) -> String {
    snapshot
        .lines()
        .find(|l| l.contains(key))
        .unwrap_or_else(|| panic!("snapshot lacks {key}"))
        .to_owned()
}

/// The pooled round engine, forced into its sharded path (threshold
/// lowered below the 150-tag population), must reproduce the scalar
/// engine's observable behavior at every thread count: the flight
/// trace (bitstrings, announcements, verdicts, re-seed counts —
/// including UTRP's mid-round retirements) byte for byte, and the
/// probe total exactly. `probes_filtered` is the one deliberate
/// exception: the candidate-filter warm-up is per-shard, so its count
/// is strategy-dependent (the same contract
/// `chunked_min_scan_counting` documents for chunking) — full
/// snapshot byte-equality is therefore only owed at one thread,
/// where the pooled engine *is* the scalar engine.
#[test]
fn pooled_exports_are_thread_invariant_for_trp_and_utrp() {
    let thread_counts = [1, 2, 3, worker_threads()];
    let scalar_trp = run_observed_rounds(&Trp, 17, 6);
    let scalar_utrp = run_observed_rounds(&Utrp, 23, 6);
    for t in thread_counts {
        // TRP never touches the engine, so everything matches.
        let mut engine = PooledEngine::with_threshold(t, 64);
        let pooled = run_observed_rounds_with(&Trp, 17, 6, &mut engine);
        assert_eq!(
            pooled, scalar_trp,
            "TRP exports must be thread-invariant (t={t})"
        );

        let mut engine = PooledEngine::with_threshold(t, 64);
        let (trace, snapshot, digest) = run_observed_rounds_with(&Utrp, 23, 6, &mut engine);
        assert_eq!(
            trace, scalar_utrp.0,
            "UTRP flight trace must be thread-invariant (t={t})"
        );
        assert_eq!(
            counter_line(&snapshot, "\"probes_total\""),
            counter_line(&scalar_utrp.1, "\"probes_total\""),
            "probe accounting must be thread-invariant (t={t})"
        );
        if t == 1 {
            assert_eq!((snapshot, digest), (scalar_utrp.1.clone(), scalar_utrp.2));
        }
    }
}

#[test]
fn different_seeds_produce_different_digests() {
    let (_, _, digest_a) = run_observed_rounds(&Utrp, 23, 6);
    let (_, _, digest_b) = run_observed_rounds(&Utrp, 24, 6);
    assert_ne!(digest_a, digest_b, "the digest must track the content");
}

/// The chunked parallel scanner: per-configuration exports are
/// byte-stable, and the probe totals (unlike the per-chunk filter
/// warm-up counts) are invariant in the chunk size.
#[test]
fn chunked_scanner_exports_are_deterministic_at_every_chunk_size() {
    let frame = FrameSize::new(96).expect("positive frame");
    let mut rng = StdRng::seed_from_u64(41);
    let ch = UtrpChallenge::generate(frame, &TimingModel::gen2(), &mut rng);
    let population: Vec<UtrpParticipant> = (1..=200u64)
        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(i % 3)))
        .collect();

    let run = |chunk_len: usize| {
        let obs = Obs::new();
        let mut scratch = RoundScratch::new();
        scratch.load_participants(&population);
        let announcements =
            run_round_chunked_observed(&mut scratch, frame, ch.nonces(), chunk_len, &obs)
                .expect("round runs");
        (
            announcements,
            scratch.bitstring().clone(),
            obs.counter(obs.m.probes_total),
            obs.snapshot_json(),
        )
    };

    let baseline = run(64);
    assert!(baseline.2 > 0, "counting scan must record probes");
    for chunk_len in [1usize, 16, 64, 512] {
        let (ann_a, bs_a, probes_a, snap_a) = run(chunk_len);
        let (ann_b, bs_b, probes_b, snap_b) = run(chunk_len);
        assert_eq!(
            snap_a, snap_b,
            "chunk={chunk_len}: snapshot must be byte-stable"
        );
        assert_eq!((&ann_a, &bs_a, probes_a), (&ann_b, &bs_b, probes_b));
        assert_eq!(
            ann_a, baseline.0,
            "chunk={chunk_len}: announcements invariant"
        );
        assert_eq!(bs_a, baseline.1, "chunk={chunk_len}: bitstring invariant");
        assert_eq!(probes_a, baseline.2, "chunk={chunk_len}: probes invariant");
    }
}

/// Acceptance: a soak invariant violation latches the flight recorder,
/// and the dump is byte-identical across two same-seed runs.
#[test]
fn soak_violation_flight_dump_is_byte_identical_across_runs() {
    // An impossible one-tick detection deadline with unreliable
    // detection (small frames from the low confidence requirement)
    // deterministically violates invariant I1. TRP keeps counters —
    // and therefore earlier desync/quarantine dump triggers — out of
    // the picture, so the violation owns the first-wins latch.
    let config = SoakConfig {
        seed: 1,
        ticks: 100,
        alpha: 0.5,
        protocol: TickProtocol::Trp,
        burst_period: 0,
        theft_period: 10,
        detection_deadline: 1,
        ..SoakConfig::default()
    };
    let run = || {
        let obs = Obs::new();
        let report = run_soak_observed(&config, &obs).expect("soak runs to completion");
        (report, obs.snapshot_json())
    };
    let (report_a, snapshot_a) = run();
    let (report_b, snapshot_b) = run();

    assert!(!report_a.is_clean(), "the schedule must violate I1");
    let dump_a = report_a.flight_dump.expect("violation latches a dump");
    let dump_b = report_b.flight_dump.expect("violation latches a dump");
    assert_eq!(dump_a.reason, "invariant_violation");
    assert_eq!(dump_a, dump_b, "flight dumps must be byte-identical");
    assert!(dump_a.jsonl.contains("\"type\":\"invariant_violated\""));
    assert_eq!(snapshot_a, snapshot_b, "snapshots must be byte-identical");
    assert_eq!(report_a.log, report_b.log);
}
