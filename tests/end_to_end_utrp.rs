//! End-to-end UTRP: challenge → honest/dishonest round → verification,
//! including counter lifecycle across sessions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::attack::colluder::{collude_utrp, ColluderConfig};
use tagwatch::core::utrp::run_honest_reader;
use tagwatch::prelude::*;

fn setup(n: usize, m: u64) -> (MonitorServer, TagPopulation, StdRng) {
    let floor = TagPopulation::with_sequential_ids(n);
    let server = MonitorServer::new(floor.ids(), m, 0.95).expect("valid");
    (server, floor, StdRng::seed_from_u64(n as u64))
}

#[test]
fn honest_sessions_verify_across_many_rounds() {
    let (mut server, mut floor, mut rng) = setup(200, 5);
    let timing = server.config().timing;
    for round in 0..10 {
        let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
        let response = run_honest_reader(&mut floor, &challenge, &timing).unwrap();
        let report = server.verify_utrp(challenge, &response).unwrap();
        assert!(report.verdict.is_intact(), "round {round}: {report}");
        assert!(!report.late);
    }
    // Counter mirror still bit-exact after 10 rounds.
    for tag in floor.iter() {
        assert_eq!(server.counter_of(tag.id()).unwrap(), tag.counter());
    }
}

#[test]
fn honest_reader_is_always_on_time() {
    // The deadline is calibrated to STmax; an honest round can never be
    // late under the same timing model.
    let (server, _, mut rng) = setup(300, 10);
    let timing = server.config().timing;
    for _ in 0..10 {
        let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
        let mut floor = TagPopulation::with_sequential_ids(300);
        let response = run_honest_reader(&mut floor, &challenge, &timing).unwrap();
        assert!(
            challenge.timer().accepts(response.elapsed),
            "elapsed {} > deadline {}",
            response.elapsed,
            challenge.timer().deadline()
        );
    }
}

#[test]
fn desync_blocks_challenges_until_audit() {
    let (mut server, floor, mut rng) = setup(150, 5);
    let timing = server.config().timing;

    // Theft + honest scan of what's left → alarm + desync.
    let mut robbed = floor.clone();
    robbed.remove_random(6, &mut rng).unwrap();
    let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut robbed, &challenge, &timing).unwrap();
    let report = server.verify_utrp(challenge, &response).unwrap();
    assert!(report.is_alarm());
    assert!(!server.counters_synced());
    assert!(matches!(
        server.issue_utrp_challenge(&mut rng),
        Err(CoreError::CounterDesync)
    ));

    // TRP challenges remain available (no counters involved).
    assert!(server.issue_trp_challenge(&mut rng).is_ok());

    // Physical audit restores service.
    server
        .resync_counters(robbed.iter().map(|t| (t.id(), t.counter())))
        .unwrap();
    assert!(server.issue_utrp_challenge(&mut rng).is_ok());
}

#[test]
fn collusion_detection_rate_meets_design_target() {
    let (server, _, _) = setup(200, 5);
    let timing = server.config().timing;
    let mut detected = 0;
    let trials = 120u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(40_000 + seed);
        let mut fresh =
            MonitorServer::new(TagPopulation::with_sequential_ids(200).ids(), 5, 0.95).unwrap();
        let challenge = fresh.issue_utrp_challenge(&mut rng).unwrap();
        let mut s1 = TagPopulation::with_sequential_ids(200);
        let mut s2 = s1.split_random(6, &mut rng).unwrap();
        let outcome = collude_utrp(
            &mut s1,
            &mut s2,
            &challenge,
            &ColluderConfig {
                sync_budget: 20,
                tcomm: SimDuration::from_micros(1),
            },
            &timing,
        )
        .unwrap();
        let report = fresh.verify_utrp(challenge, &outcome.response).unwrap();
        if report.is_alarm() {
            detected += 1;
        }
    }
    let rate = detected as f64 / trials as f64;
    assert!(rate > 0.90, "collusion detection rate {rate}");
}

#[test]
fn slow_side_channel_blows_the_deadline() {
    // Give the colluders a generous budget but a slow channel: even a
    // bit-perfect forgery arrives late and fails.
    let (mut server, floor, mut rng) = setup(100, 5);
    let timing = server.config().timing;
    let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
    let deadline = challenge.timer().deadline();

    let mut s1 = floor.clone();
    let mut s2 = s1.split_random(6, &mut rng).unwrap();
    let outcome = collude_utrp(
        &mut s1,
        &mut s2,
        &challenge,
        &ColluderConfig {
            sync_budget: u64::MAX,
            // Slower than an entire honest round per sync.
            tcomm: deadline,
        },
        &timing,
    )
    .unwrap();
    // Unlimited budget → perfect bitstring, but hopelessly late.
    let report = server.verify_utrp(challenge, &outcome.response).unwrap();
    assert!(report.late);
    assert!(report.is_alarm());
    assert_eq!(report.mismatched_slots, 0, "forgery itself was perfect");
}

#[test]
fn stale_tag_counters_fail_verification() {
    // A tag whose counter drifted (e.g. an unauthorized scan incremented
    // it) must break the next honest verification — rewind protection.
    let (mut server, mut floor, mut rng) = setup(120, 5);
    let timing = server.config().timing;

    // Unauthorized out-of-band announcement: counters advance without
    // the server knowing.
    for tag in floor.iter_mut() {
        tag.advance_counter(3);
    }

    let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &challenge, &timing).unwrap();
    let report = server.verify_utrp(challenge, &response).unwrap();
    assert!(report.is_alarm(), "drifted counters must not verify");
}

#[test]
fn utrp_uses_each_nonce_at_most_once() {
    let (server, mut floor, mut rng) = setup(80, 3);
    let timing = server.config().timing;
    let challenge = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &challenge, &timing).unwrap();
    // Announcements = nonces consumed; can never exceed the committed
    // sequence (= frame size).
    assert!(response.announcements <= challenge.nonces().len() as u64);
    assert!(response.announcements >= 1);
}
