//! Failure injection: physical-layer faults and operator mistakes must
//! degrade *safely* — alarms and errors, never silent false "intact".

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::core::trp;
use tagwatch::core::utrp::run_honest_reader;
use tagwatch::prelude::*;

#[test]
fn heavy_reply_loss_causes_alarms_not_crashes() {
    let lossy = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.5,
        ..ChannelConfig::default()
    })
    .unwrap();
    let floor = TagPopulation::with_sequential_ids(200);
    let mut server = MonitorServer::new(floor.ids(), 5, 0.95).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut alarms = 0;
    for seed in 0..20 {
        let ch = server.issue_trp_challenge(&mut rng).unwrap();
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &ch, &floor, &lossy).unwrap();
        if server.verify_trp(ch, &bs).unwrap().is_alarm() {
            alarms += 1;
        }
    }
    // Half the replies vanish: essentially every round alarms. That is
    // the documented conservative behaviour (fail safe).
    assert!(alarms >= 19, "only {alarms}/20 alarms under 50% loss");
}

#[test]
fn combined_noise_and_theft_still_detects_theft() {
    // Noise must never *mask* theft: with loss and phantoms active and
    // 6 tags stolen, the miss rate stays at/below the clean-channel
    // bound.
    let noisy = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.02,
        phantom_reply_prob: 0.02,
        capture_prob: 0.5,
    })
    .unwrap();
    let registry = TagPopulation::with_sequential_ids(200).ids();
    let params = MonitorParams::new(200, 5, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap();
    let mut missed = 0;
    let trials = 150;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut floor = TagPopulation::with_sequential_ids(200);
        floor.remove_random(6, &mut rng).unwrap();
        let ch = TrpChallenge::generate(f, &mut rng);
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &ch, &floor, &noisy).unwrap();
        if !trp::verify(&registry, ch, &bs).unwrap().is_alarm() {
            missed += 1;
        }
    }
    assert!(
        missed as f64 / trials as f64 <= 0.05,
        "missed {missed}/{trials}"
    );
}

#[test]
fn wrong_length_responses_error_cleanly() {
    let mut server =
        MonitorServer::new(TagPopulation::with_sequential_ids(50).ids(), 2, 0.9).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let ch = server.issue_trp_challenge(&mut rng).unwrap();
    let too_short = Bitstring::zeros(3);
    assert!(matches!(
        server.verify_trp(ch, &too_short),
        Err(CoreError::ResponseShapeMismatch { .. })
    ));
    // The error is not recorded as a verification.
    assert!(server.history().is_empty());
}

#[test]
fn detuned_beyond_tolerance_alarms_like_theft() {
    // Physically-present-but-dead tags beyond m: indistinguishable from
    // theft, and treated as such.
    let mut rng = StdRng::seed_from_u64(3);
    let mut floor = TagPopulation::with_sequential_ids(200);
    let registry = floor.ids();
    floor.detune_random(30, &mut rng).unwrap();
    let params = MonitorParams::new(200, 5, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap();
    let mut alarms = 0;
    for seed in 0..50u64 {
        let mut r = StdRng::seed_from_u64(100 + seed);
        let ch = TrpChallenge::generate(f, &mut r);
        let mut reader = Reader::new(ReaderConfig::default());
        let bs = trp::run_reader(&mut reader, &ch, &floor, &Channel::ideal()).unwrap();
        if trp::verify(&registry, ch, &bs).unwrap().is_alarm() {
            alarms += 1;
        }
    }
    assert!(alarms >= 45, "30 dead tags alarmed only {alarms}/50 rounds");
}

#[test]
fn utrp_detuned_tags_keep_counters_in_sync() {
    // A blocked tag misses its reply window but still hears
    // announcements — after the round its counter matches its healthy
    // peers, so a later un-blocking does not poison the mirror.
    let mut rng = StdRng::seed_from_u64(4);
    let mut floor = TagPopulation::with_sequential_ids(60);
    let ids = floor.ids();
    floor.get_mut(ids[5]).unwrap().set_detuned(true);

    let server = MonitorServer::new(ids.clone(), 2, 0.9).unwrap();
    let timing = server.config().timing;
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    run_honest_reader(&mut floor, &ch, &timing).unwrap();

    let healthy_ct = floor.get(ids[0]).unwrap().counter();
    assert_eq!(floor.get(ids[5]).unwrap().counter(), healthy_ct);
}

#[test]
fn zero_sized_populations_are_rejected_at_the_door() {
    assert!(MonitorServer::new(Vec::<TagId>::new(), 0, 0.9).is_err());
}

#[test]
fn invalid_channel_configs_are_rejected() {
    for bad in [
        ChannelConfig {
            reply_loss_prob: -0.1,
            ..ChannelConfig::default()
        },
        ChannelConfig {
            phantom_reply_prob: 2.0,
            ..ChannelConfig::default()
        },
        ChannelConfig {
            capture_prob: f64::NAN,
            ..ChannelConfig::default()
        },
    ] {
        assert!(Channel::with_config(bad).is_err());
    }
}

#[test]
fn capture_effect_reduces_collisions_for_collect_all() {
    use tagwatch::protocols::collect_all::{collect_all, CollectAllConfig};
    let run_with_capture = |capture: f64, seed: u64| -> u32 {
        let ch = Channel::with_config(ChannelConfig {
            capture_prob: capture,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let mut floor = TagPopulation::with_sequential_ids(300);
        collect_all(
            &mut reader,
            &mut floor,
            &ch,
            &CollectAllConfig::paper(300, 0),
            &mut rng,
        )
        .unwrap()
        .rounds
    };
    let plain: u32 = (0..5).map(|s| run_with_capture(0.0, s)).sum();
    let capture: u32 = (0..5).map(|s| run_with_capture(0.9, s)).sum();
    assert!(
        capture <= plain,
        "capture effect should not slow inventory: {capture} vs {plain} rounds"
    );
}
