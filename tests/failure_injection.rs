//! Failure injection: physical-layer faults and operator mistakes must
//! degrade *safely* — alarms and errors, never silent false "intact".

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::core::trp;
use tagwatch::core::utrp::run_honest_reader;
use tagwatch::prelude::*;
use tagwatch::sim::FaultPlan;

#[test]
fn heavy_reply_loss_causes_alarms_not_crashes() {
    let lossy = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.5,
        ..ChannelConfig::default()
    })
    .unwrap();
    let floor = TagPopulation::with_sequential_ids(200);
    let mut server = MonitorServer::new(floor.ids(), 5, 0.95).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut alarms = 0;
    for seed in 0..20 {
        let ch = server.issue_trp_challenge(&mut rng).unwrap();
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &ch, &floor, &lossy).unwrap();
        if server.verify_trp(ch, &bs).unwrap().is_alarm() {
            alarms += 1;
        }
    }
    // Half the replies vanish: essentially every round alarms. That is
    // the documented conservative behaviour (fail safe).
    assert!(alarms >= 19, "only {alarms}/20 alarms under 50% loss");
}

#[test]
fn combined_noise_and_theft_still_detects_theft() {
    // Noise must never *mask* theft: with loss and phantoms active and
    // 6 tags stolen, the miss rate stays at/below the clean-channel
    // bound.
    let noisy = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.02,
        phantom_reply_prob: 0.02,
        capture_prob: 0.5,
        ..ChannelConfig::default()
    })
    .unwrap();
    let registry = TagPopulation::with_sequential_ids(200).ids();
    let params = MonitorParams::new(200, 5, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap();
    let mut missed = 0;
    let trials = 150;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut floor = TagPopulation::with_sequential_ids(200);
        floor.remove_random(6, &mut rng).unwrap();
        let ch = TrpChallenge::generate(f, &mut rng);
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &ch, &floor, &noisy).unwrap();
        if !trp::verify(&registry, ch, &bs).unwrap().is_alarm() {
            missed += 1;
        }
    }
    assert!(
        missed as f64 / trials as f64 <= 0.05,
        "missed {missed}/{trials}"
    );
}

#[test]
fn wrong_length_responses_error_cleanly() {
    let mut server =
        MonitorServer::new(TagPopulation::with_sequential_ids(50).ids(), 2, 0.9).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let ch = server.issue_trp_challenge(&mut rng).unwrap();
    let too_short = Bitstring::zeros(3);
    assert!(matches!(
        server.verify_trp(ch, &too_short),
        Err(CoreError::ResponseShapeMismatch { .. })
    ));
    // The error is not recorded as a verification.
    assert!(server.history().is_empty());
}

#[test]
fn detuned_beyond_tolerance_alarms_like_theft() {
    // Physically-present-but-dead tags beyond m: indistinguishable from
    // theft, and treated as such.
    let mut rng = StdRng::seed_from_u64(3);
    let mut floor = TagPopulation::with_sequential_ids(200);
    let registry = floor.ids();
    floor.detune_random(30, &mut rng).unwrap();
    let params = MonitorParams::new(200, 5, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap();
    let mut alarms = 0;
    for seed in 0..50u64 {
        let mut r = StdRng::seed_from_u64(100 + seed);
        let ch = TrpChallenge::generate(f, &mut r);
        let mut reader = Reader::new(ReaderConfig::default());
        let bs = trp::run_reader(&mut reader, &ch, &floor, &Channel::ideal()).unwrap();
        if trp::verify(&registry, ch, &bs).unwrap().is_alarm() {
            alarms += 1;
        }
    }
    assert!(alarms >= 45, "30 dead tags alarmed only {alarms}/50 rounds");
}

#[test]
fn utrp_detuned_tags_keep_counters_in_sync() {
    // A blocked tag misses its reply window but still hears
    // announcements — after the round its counter matches its healthy
    // peers, so a later un-blocking does not poison the mirror.
    let mut rng = StdRng::seed_from_u64(4);
    let mut floor = TagPopulation::with_sequential_ids(60);
    let ids = floor.ids();
    floor.get_mut(ids[5]).unwrap().set_detuned(true);

    let server = MonitorServer::new(ids.clone(), 2, 0.9).unwrap();
    let timing = server.config().timing;
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    run_honest_reader(&mut floor, &ch, &timing).unwrap();

    let healthy_ct = floor.get(ids[0]).unwrap().counter();
    assert_eq!(floor.get(ids[5]).unwrap().counter(), healthy_ct);
}

#[test]
fn zero_sized_populations_are_rejected_at_the_door() {
    assert!(MonitorServer::new(Vec::<TagId>::new(), 0, 0.9).is_err());
}

#[test]
fn invalid_channel_configs_are_rejected() {
    for bad in [
        ChannelConfig {
            reply_loss_prob: -0.1,
            ..ChannelConfig::default()
        },
        ChannelConfig {
            phantom_reply_prob: 2.0,
            ..ChannelConfig::default()
        },
        ChannelConfig {
            capture_prob: f64::NAN,
            ..ChannelConfig::default()
        },
    ] {
        assert!(Channel::with_config(bad).is_err());
    }
}

#[test]
fn scripted_desync_is_diagnosed_recovered_and_confirmed() {
    // The headline robustness scenario, end to end through the facade:
    // one tag misses a single downlink announcement, the next round is
    // diagnosed as Desynced (not an alarm), hypothesis-based recovery
    // repairs the mirror without a physical audit, and the round after
    // that verifies intact.
    use tagwatch::core::utrp::attributed_round;
    use tagwatch::core::{run_honest_reader_with, ResyncHypothesis};

    let mut server = MonitorServer::with_config(
        TagPopulation::with_sequential_ids(40).ids(),
        3,
        0.9,
        ServerConfig {
            desync_window: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut floor = TagPopulation::with_sequential_ids(40);
    let timing = server.config().timing;
    let mut rng = StdRng::seed_from_u64(7);

    // Round 1: the tag replying in the first occupied slot misses the
    // round's LAST announcement — its reply already landed, so the
    // round verifies intact, but its counter ends one behind the
    // mirror.
    let ch1 = server.issue_utrp_challenge(&mut rng).unwrap();
    let registry: Vec<(TagId, Counter)> = floor
        .ids()
        .into_iter()
        .map(|id| (id, Counter::ZERO))
        .collect();
    let (dry, attribution) = attributed_round(&registry, &ch1).unwrap();
    let first_occupied = dry.bitstring.iter_ones().next().unwrap();
    let victim = attribution[first_occupied][0];
    let plan = FaultPlan::new().lose_announcement(dry.announcements - 1, [victim]);
    let response = run_honest_reader_with(
        &mut floor,
        &ch1,
        &timing,
        &Channel::ideal(),
        &plan,
        &mut rng,
    )
    .unwrap();
    assert!(server
        .verify_utrp(ch1, &response)
        .unwrap()
        .verdict
        .is_intact());

    // Later rounds: the stale counter stays latent while it happens to
    // hash into an indistinguishable slot (those rounds verify intact)
    // and surfaces as soon as a challenge separates it. Desynced is
    // inconclusive — neither an alarm nor a pass — and names the
    // victim.
    let report = loop {
        let ch = server.issue_utrp_challenge(&mut rng).unwrap();
        let response = run_honest_reader(&mut floor, &ch, &timing).unwrap();
        let report = server.verify_utrp(ch, &response).unwrap();
        if report.verdict.is_desynced() {
            break report;
        }
        assert!(report.verdict.is_intact(), "{report}");
    };
    assert_eq!(
        report.verdict,
        Verdict::Desynced {
            suspects: vec![victim]
        },
        "{report}"
    );
    assert!(!report.is_alarm());
    assert!(matches!(
        server.pending_resync(),
        Some(ResyncHypothesis::SingleLag { tag, lag: 1, .. }) if *tag == victim
    ));

    // Recover from the hypothesis alone and let round 3 confirm it.
    assert_eq!(server.resync_from_hypothesis().unwrap(), vec![victim]);
    let ch3 = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &ch3, &timing).unwrap();
    assert!(server
        .verify_utrp(ch3, &response)
        .unwrap()
        .verdict
        .is_intact());
}

#[test]
fn physical_audit_resyncs_after_undiagnosable_fault() {
    // A fault outside the hypothesis window (here: a lead past the
    // configured window) alarms rather than guessing; a physical audit
    // via resync_counters restores monitoring exactly.
    let mut server = MonitorServer::with_config(
        TagPopulation::with_sequential_ids(30).ids(),
        2,
        0.9,
        ServerConfig {
            desync_window: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut floor = TagPopulation::with_sequential_ids(30);
    let timing = server.config().timing;
    let mut rng = StdRng::seed_from_u64(8);

    // Three whole rounds run in the field but never reach the server —
    // a uniform lead far beyond desync_window = 2.
    for _ in 0..3 {
        let ch = server.issue_utrp_challenge(&mut rng).unwrap();
        run_honest_reader(&mut floor, &ch, &timing).unwrap();
    }
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &ch, &timing).unwrap();
    let report = server.verify_utrp(ch, &response).unwrap();
    assert!(
        report.is_alarm(),
        "beyond-window desync must alarm: {report}"
    );
    assert!(!server.counters_synced());
    assert!(matches!(
        server.issue_utrp_challenge(&mut rng),
        Err(CoreError::CounterDesync)
    ));

    // Audit the floor, resync, and monitoring resumes cleanly.
    server
        .resync_counters(floor.iter().map(|t| (t.id(), t.counter())))
        .unwrap();
    assert!(server.counters_synced());
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &ch, &timing).unwrap();
    assert!(server
        .verify_utrp(ch, &response)
        .unwrap()
        .verdict
        .is_intact());
}

#[test]
fn desynced_snapshot_round_trips_and_blocks_until_audit() {
    // A server persisted mid-desync must come back desynced: the text
    // snapshot carries counters_synced = false, the restored server
    // refuses to issue UTRP challenges, and only an audit reopens it.
    let mut server =
        MonitorServer::new(TagPopulation::with_sequential_ids(20).ids(), 2, 0.9).unwrap();
    let mut floor = TagPopulation::with_sequential_ids(20);
    let timing = server.config().timing;
    let mut rng = StdRng::seed_from_u64(9);

    // Steal two tags; the UTRP round alarms and poisons the mirror.
    let ch = server.issue_utrp_challenge(&mut rng).unwrap();
    floor.remove_random(3, &mut rng).unwrap();
    let response = run_honest_reader(&mut floor, &ch, &timing).unwrap();
    assert!(server.verify_utrp(ch, &response).unwrap().is_alarm());
    assert!(!server.counters_synced());

    // Round-trip through the durable text form.
    let text = server.snapshot().to_text();
    let snap = RegistrySnapshot::from_text(&text).unwrap();
    assert!(!snap.counters_synced);
    let mut restored = MonitorServer::from_snapshot(snap, ServerConfig::default()).unwrap();
    assert!(!restored.counters_synced());
    assert!(matches!(
        restored.issue_utrp_challenge(&mut rng),
        Err(CoreError::CounterDesync)
    ));
    // A diagnosed hypothesis is deliberately NOT persisted: recovery
    // after a restore requires a physical audit.
    assert!(matches!(
        restored.resync_from_hypothesis(),
        Err(CoreError::NoResyncHypothesis)
    ));

    restored
        .resync_counters(floor.iter().map(|t| (t.id(), t.counter())))
        .unwrap();
    assert!(restored.counters_synced());
    assert!(restored.issue_utrp_challenge(&mut rng).is_ok());
}

#[test]
fn capture_effect_reduces_collisions_for_collect_all() {
    use tagwatch::protocols::collect_all::{collect_all, CollectAllConfig};
    let run_with_capture = |capture: f64, seed: u64| -> u32 {
        let ch = Channel::with_config(ChannelConfig {
            capture_prob: capture,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let mut floor = TagPopulation::with_sequential_ids(300);
        collect_all(
            &mut reader,
            &mut floor,
            &ch,
            &CollectAllConfig::paper(300, 0),
            &mut rng,
        )
        .unwrap()
        .rounds
    };
    let plain: u32 = (0..5).map(|s| run_with_capture(0.0, s)).sum();
    let capture: u32 = (0..5).map(|s| run_with_capture(0.9, s)).sum();
    assert!(
        capture <= plain,
        "capture effect should not slow inventory: {capture} vs {plain} rounds"
    );
}

// ---------------------------------------------------------------------
// Unified-executor differential audit: the `RoundExecutor` introduced
// with the soak subsystem must agree *exactly* with both pre-existing
// fault engines (the fast participant-array engine behind
// `run_honest_reader_with` and the per-device state-machine engine
// behind `run_device_round_with`) for arbitrary fault plans, and with
// the fault-free paths when no faults are configured. Any bitstring or
// counter divergence between the paths is a regression.
// ---------------------------------------------------------------------

fn random_plan(rng: &mut StdRng, frame: u64) -> FaultPlan {
    use rand::Rng;
    let mut plan = FaultPlan::new();
    for _ in 0..rng.gen_range(0..4u32) {
        plan = plan.lose_replies_at(rng.gen_range(0..frame));
    }
    if rng.gen_bool(0.5) {
        let victim = TagId::new(u128::from(rng.gen_range(1..=40u64)));
        plan = plan.lose_announcement(rng.gen_range(0..30u64), [victim]);
    }
    if rng.gen_bool(0.25) {
        plan = plan.crash_after_slot(rng.gen_range(frame / 2..frame));
    }
    if rng.gen_bool(0.25) {
        plan = plan.truncate_response(rng.gen_range(1..frame));
    }
    plan
}

#[test]
fn unified_executor_agrees_with_both_legacy_fault_engines() {
    use tagwatch::core::{run_device_round_with, run_honest_reader_with, RoundExecutor};

    let channel = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.05,
        phantom_reply_prob: 0.01,
        capture_prob: 0.2,
        downlink_loss_prob: 0.02,
    })
    .unwrap();
    let timing = TimingModel::gen2();

    for seed in 0..12u64 {
        let mut meta_rng = StdRng::seed_from_u64(900 + seed);
        let mut floor_a = TagPopulation::with_sequential_ids(40);
        let mut floor_b = floor_a.clone();
        let mut floor_c = floor_a.clone();
        let f = FrameSize::new(120).unwrap();
        let challenge = UtrpChallenge::generate(f, &timing, &mut meta_rng);
        let plan = random_plan(&mut meta_rng, f.get());

        let executor = RoundExecutor::new(channel, Some(plan.clone()));
        let mut rng_a = StdRng::seed_from_u64(7000 + seed);
        let mut rng_b = StdRng::seed_from_u64(7000 + seed);
        let mut rng_c = StdRng::seed_from_u64(7000 + seed);

        let a = executor
            .run_utrp(&mut floor_a, &challenge, &timing, &mut rng_a)
            .unwrap();
        let b = run_honest_reader_with(
            &mut floor_b,
            &challenge,
            &timing,
            &channel,
            &plan,
            &mut rng_b,
        )
        .unwrap();
        let c = run_device_round_with(
            &mut floor_c,
            &challenge,
            &timing,
            &channel,
            &plan,
            &mut rng_c,
        )
        .unwrap();

        assert_eq!(a, b, "executor vs honest-reader engine, seed {seed}");
        assert_eq!(b, c, "participant engine vs device engine, seed {seed}");
        for (ta, tb) in floor_a.iter().zip(floor_b.iter()) {
            assert_eq!(ta.counter(), tb.counter(), "counter drift, seed {seed}");
        }
        for (tb, tc) in floor_b.iter().zip(floor_c.iter()) {
            assert_eq!(tb.counter(), tc.counter(), "counter drift, seed {seed}");
        }
    }
}

#[test]
fn faultless_executor_is_byte_identical_to_fault_free_paths() {
    use tagwatch::core::utrp::run_honest_reader;
    use tagwatch::core::RoundExecutor;

    let timing = TimingModel::gen2();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let mut floor_a = TagPopulation::with_sequential_ids(60);
        let mut floor_b = floor_a.clone();
        let f = FrameSize::new(160).unwrap();

        // UTRP: executor with an *empty* plan must take the exact
        // fault-free path (and consume no RNG).
        let challenge = UtrpChallenge::generate(f, &timing, &mut rng);
        let executor = RoundExecutor::new(Channel::ideal(), Some(FaultPlan::new()));
        let mut unused_rng = StdRng::seed_from_u64(0);
        let via_executor = executor
            .run_utrp(&mut floor_a, &challenge, &timing, &mut unused_rng)
            .unwrap();
        let direct = run_honest_reader(&mut floor_b, &challenge, &timing).unwrap();
        assert_eq!(via_executor, direct, "seed {seed}");

        // TRP: same story against observed_bitstring.
        let trp_ch = TrpChallenge::generate(f, &mut rng);
        let via_trp = executor
            .run_trp(&floor_a, &trp_ch, &mut unused_rng)
            .unwrap();
        assert_eq!(
            via_trp,
            trp::observed_bitstring(&floor_a.ids(), &trp_ch),
            "seed {seed}"
        );
        assert_eq!(
            unused_rng,
            StdRng::seed_from_u64(0),
            "faultless executor consumed RNG, seed {seed}"
        );
    }
}
