//! Statistical validation: the analytic machinery (Theorems 1, 3–5)
//! against the simulated protocols — the reproduction's core soundness
//! check. If these hold, the figure binaries are measuring what the
//! paper measured.

use tagwatch::analytics::{trp_detection_trial, utrp_detection_cell, Proportion};
use tagwatch::core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch::prelude::*;
use tagwatch::sim::SeedSequence;

/// Simulated TRP detection rate over `trials` at explicit `f`.
fn simulated_trp_rate(n: u64, m: u64, f: u64, trials: u64) -> f64 {
    let f = FrameSize::new(f).unwrap();
    let detected = (0..trials)
        .filter(|&s| trp_detection_trial(n, m, f, 0xABC0 + s))
        .count();
    detected as f64 / trials as f64
}

#[test]
fn theorem_1_matches_simulation_on_a_grid() {
    // g(n, m+1, f) vs measured detection, at frames below/at/above the
    // design point, where the probability is far from saturating.
    for &(n, m, f) in &[(200u64, 5u64, 200u64), (200, 5, 350), (400, 10, 300)] {
        let analytic = detection_probability(n, m + 1, f, EmptySlotModel::Poisson);
        let trials = 600;
        let measured = simulated_trp_rate(n, m, f, trials);
        // Binomial noise: sd <= 0.5/sqrt(600) ≈ 0.020; allow ~4σ plus
        // Poissonization error.
        assert!(
            (analytic - measured).abs() < 0.09,
            "n={n} m={m} f={f}: analytic {analytic:.3} vs measured {measured:.3}"
        );
    }
}

#[test]
fn eq2_frames_hit_alpha_without_excess() {
    // At the Eq. 2 frame the measured rate must exceed alpha, and at a
    // clearly smaller frame it must fall below — the frame really is
    // near-minimal in practice, not just in the model.
    let n = 300u64;
    let m = 10u64;
    let params = MonitorParams::new(n, m, 0.95).unwrap();
    let f = tagwatch::core::trp_frame_size(&params).unwrap().get();
    let at_design = simulated_trp_rate(n, m, f, 800);
    let below = simulated_trp_rate(n, m, (f as f64 * 0.7) as u64, 800);
    assert!(at_design > 0.92, "at design frame: {at_design}");
    assert!(below < 0.92, "at 0.7x frame: {below}");
    assert!(at_design > below);
}

#[test]
fn lemma_1_monotonicity_shows_up_in_simulation() {
    // More stolen tags → higher measured detection.
    let f = FrameSize::new(250).unwrap();
    let rate = |steal_minus_1: u64| {
        let detected = (0..400u64)
            .filter(|&s| trp_detection_trial(300, steal_minus_1, f, 0xD00D + s))
            .count();
        detected as f64 / 400.0
    };
    let few = rate(2); // steals 3
    let many = rate(20); // steals 21
    assert!(
        many > few + 0.1,
        "21-tag theft ({many}) should dominate 3-tag theft ({few})"
    );
}

#[test]
fn eq3_frames_hold_against_the_implemented_attack() {
    // The Fig. 7 property at two grid points: measured detection of the
    // best-strategy colluder at the Eq. 3 frame stays near alpha.
    for &(n, m) in &[(150u64, 5u64), (300, 10)] {
        let params = MonitorParams::new(n, m, 0.95).unwrap();
        let f = tagwatch::core::utrp_frame_size(&params, UtrpSizing::default()).unwrap();
        let trials = 300;
        let detected = utrp_detection_cell(n, m, f, 20, trials, SeedSequence::new(0xF167 + n + m));
        let p = Proportion::new(detected, trials);
        assert!(
            p.rate() > 0.90,
            "n={n} m={m}: measured {} at Eq.3 frame {}",
            p.rate(),
            f
        );
    }
}

#[test]
fn undersized_utrp_frames_lose_to_the_colluders() {
    // Control: at a frame well below Eq. 3 the colluders' 20-sync
    // budget covers most of the action and detection collapses.
    let n = 300u64;
    let m = 10u64;
    // Eq. 3 frame is ~400+; try a frame the sync budget can mostly cover.
    let f = FrameSize::new(60).unwrap();
    let trials = 200;
    let detected = utrp_detection_cell(n, m, f, 20, trials, SeedSequence::new(0xBAD));
    let rate = detected as f64 / trials as f64;
    assert!(
        rate < 0.90,
        "tiny frame should not reach design confidence: {rate}"
    );
}

#[test]
fn poissonization_error_is_small_at_paper_scale() {
    // The paper's p = e^{-(n-x)/f} vs the exact (1 - 1/f)^{n-x}: on the
    // evaluation grid the induced difference in g stays in the third
    // decimal — justifying reproducing figures with the Poisson form.
    for &(n, m) in &[(500u64, 10u64), (1000, 20), (2000, 30)] {
        let params = MonitorParams::new(n, m, 0.95).unwrap();
        let f = tagwatch::core::trp_frame_size(&params).unwrap().get();
        let a = detection_probability(n, m + 1, f, EmptySlotModel::Poisson);
        let b = detection_probability(n, m + 1, f, EmptySlotModel::Exact);
        assert!((a - b).abs() < 5e-3, "n={n} m={m} f={f}: {a} vs {b}");
    }
}

#[test]
fn device_path_and_fast_path_agree_trial_by_trial() {
    // The Monte-Carlo sweeps use the hashing fast path; the reference
    // path drives real Tag devices through a Reader. On an ideal
    // channel they must produce the *same verdict on every trial*, not
    // merely similar rates.
    use rand::SeedableRng;
    use tagwatch::core::trp::{run_reader, verify, TrpChallenge};

    let n = 150usize;
    let m = 5u64;
    let params = MonitorParams::new(n as u64, m, 0.95).unwrap();
    let f = tagwatch::core::trp_frame_size(&params).unwrap();

    for seed in 0..40u64 {
        // Fast path.
        let fast = trp_detection_trial(n as u64, m, f, seed);

        // Device path with the identical removal and challenge draws.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pop = TagPopulation::with_sequential_ids(n);
        let registry = pop.ids();
        pop.remove_random((m + 1) as usize, &mut rng).unwrap();
        let challenge = TrpChallenge::generate(f, &mut rng);
        let mut reader = Reader::new(ReaderConfig::default());
        let bs = run_reader(&mut reader, &challenge, &pop, &Channel::ideal()).unwrap();
        let device = verify(&registry, challenge, &bs).unwrap().is_alarm();

        assert_eq!(fast, device, "trial {seed} diverged between paths");
    }
}

#[test]
fn detection_estimates_are_reproducible_across_runs() {
    let f = FrameSize::new(300).unwrap();
    let run = || {
        (0..100u64)
            .filter(|&s| trp_detection_trial(200, 5, f, s))
            .count()
    };
    assert_eq!(run(), run());
}
