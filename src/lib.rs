//! # tagwatch
//!
//! Monitor large sets of RFID tags for missing tags **without
//! collecting a single ID over the air** — a production-quality Rust
//! reproduction of Chiu C. Tan, Bo Sheng, and Qun Li, *"How to Monitor
//! for Missing RFID Tags"*, ICDCS 2008.
//!
//! This crate is the facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `tagwatch-sim` | discrete-event RFID substrate: tags, readers, channel, slotted ALOHA, timing |
//! | [`core`] | `tagwatch-core` | the paper's protocols: TRP, UTRP, frame-sizing math, the monitoring server |
//! | [`protocols`] | `tagwatch-protocols` | baselines: collect-all DFSA, query tree, cardinality estimation |
//! | [`attack`] | `tagwatch-attack` | adversaries: replay, split-set collusion, budgeted UTRP colluders |
//! | [`analytics`] | `tagwatch-analytics` | Monte-Carlo harness reproducing the paper's Figures 4–7, plus continuous monitoring sessions |
//! | [`obs`] | `tagwatch-obs` | observability: metrics registry, flight recorder, deterministic JSONL/snapshot export |
//!
//! A command-line interface ships as the `tagwatch-cli` crate
//! (`cargo run -p tagwatch-cli -- help`), and figure-regeneration
//! binaries as `tagwatch-bench`.
//!
//! ## Sixty-second tour
//!
//! ```rust
//! use rand::SeedableRng;
//! use tagwatch::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // A warehouse of 1 000 tagged items, registered with the server.
//! // Policy: tolerate up to 10 missing items, 95% detection confidence.
//! let warehouse = TagPopulation::with_sequential_ids(1_000);
//! let mut server = MonitorServer::new(warehouse.ids(), 10, 0.95)?;
//!
//! // Routine check: one challenge, one ALOHA frame, one bit per slot.
//! let challenge = server.issue_trp_challenge(&mut rng)?;
//! let mut reader = Reader::new(ReaderConfig::default());
//! let bs = trp::run_reader(&mut reader, &challenge, &warehouse, &Channel::ideal())?;
//! let report = server.verify_trp(challenge, &bs)?;
//! assert!(report.verdict.is_intact());
//! println!("{report}; used {} slots", reader.slots_used());
//! # Ok(())
//! # }
//! ```
//!
//! For the untrusted-reader protocol, collusion attacks, baselines, and
//! the figure reproductions, see the `examples/` directory and the
//! `fig4`–`fig7` binaries in `tagwatch-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tagwatch_analytics as analytics;
pub use tagwatch_attack as attack;
pub use tagwatch_core as core;
pub use tagwatch_obs as obs;
pub use tagwatch_protocols as protocols;
pub use tagwatch_sim as sim;

/// One-import convenience: the types almost every user touches.
pub mod prelude {
    pub use tagwatch_core::{
        identify_missing, trp, trp_frame_size, utrp, utrp_frame_size, Bitstring, CoreError,
        GroupedMonitor, IdentifyConfig, MonitorParams, MonitorReport, MonitorServer, ProtocolKind,
        RegistrySnapshot, ServerConfig, TrpChallenge, UtrpChallenge, UtrpResponse, UtrpSizing,
        Verdict,
    };
    pub use tagwatch_sim::{
        Channel, ChannelConfig, Counter, FrameSize, Nonce, Reader, ReaderConfig, Sgtin96,
        SimDuration, SimError, SimTime, TagId, TagPopulation, TimingModel,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let id = crate::sim::TagId::new(1);
        assert_eq!(id.as_u128(), 1);
        let params = crate::core::MonitorParams::new(10, 1, 0.9).unwrap();
        assert_eq!(params.population(), 10);
    }
}
