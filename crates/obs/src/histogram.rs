//! Fixed-bin histograms and exact percentiles.
//!
//! Detection rates are proportions, but slot counts, air times and
//! round counts are *distributions* worth more than a mean:
//! collect-all's cost spread, UTRP announcement counts, identification
//! round counts, resync ladder depths. [`Histogram`] gives a compact
//! fixed-bin view with an ASCII rendering; [`percentile`] gives exact
//! order statistics for tail reporting.
//!
//! This module moved here from `tagwatch-analytics` so the metrics
//! registry can use the same type as the experiment reports
//! (`analytics::histogram` re-exports it unchanged).

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins plus overflow and
/// underflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not
    /// finite — construction bugs, not data conditions.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// `NaN` counts as overflow: it belongs to no bin, and silently
    /// landing it in bin 0 (as a naive cast would) corrupts the
    /// distribution without any trace.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        // Non-finite observations are excluded from the sum: one NaN
        // or infinity would otherwise poison `_sum` forever while the
        // bucket counts stayed healthy.
        if value.is_finite() {
            self.sum += value;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi || value.is_nan() {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Guard the hi-adjacent float edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Adds every count of `other` into `self` — the reduction step
    /// when per-shard histograms are combined into one report.
    ///
    /// Counts saturate instead of wrapping: near-`u64::MAX` inputs
    /// would otherwise overflow-panic in debug builds and silently
    /// wrap in release builds, and a saturated (pinned-at-max) count
    /// is the only rendering of that state that cannot masquerade as
    /// a small healthy value. The sum saturates to `f64::MAX` the
    /// same way (IEEE addition already does).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bounds or bin
    /// counts: merging incompatible shapes is a construction bug, and
    /// re-binning silently would misreport the distribution.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different shapes: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len(),
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b = b.saturating_add(*o);
        }
        self.underflow = self.underflow.saturating_add(other.underflow);
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bin counts by the
    /// nearest-rank method: returns the upper edge of the bin holding
    /// the rank-th observation. Underflow observations resolve to `lo`,
    /// overflow observations to `hi`. Returns `None` for an empty
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.lo);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.bin_range(i).1);
            }
        }
        // Rank lands in the overflow counter (covers the single-bucket
        // case where every observation was >= hi).
        Some(self.hi)
    }

    /// Total observations recorded (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every finite observation recorded (the Prometheus
    /// `_sum` series; non-finite observations are excluded — see
    /// [`Histogram::record`]).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The histogram's `[lo, hi)` domain.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[start, end)` value range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

impl fmt::Display for Histogram {
    /// Renders one line per bin with a proportional bar.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const BAR: usize = 40;
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let len = (c as usize * BAR) / max as usize;
            writeln!(f, "[{a:>10.1}, {b:>10.1})  {:<BAR$} {c}", "#".repeat(len))?;
        }
        if self.underflow > 0 {
            writeln!(f, "underflow: {}", self.underflow)?;
        }
        if self.overflow > 0 {
            writeln!(f, "overflow: {}", self.overflow)?;
        }
        Ok(())
    }
}

/// The exact `q`-quantile (0 ≤ q ≤ 1) of a sample by the
/// nearest-rank method. Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or NaN.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 9.9]);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.extend([-1.0, 10.0, 11.0, 5.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[0, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn nan_counts_as_overflow_not_bin_zero() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.bins(), &[0, 0]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bin_ranges_partition_the_domain() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn merge_adds_counts_pointwise() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.extend([1.0, 2.5, -1.0]);
        let mut b = Histogram::new(0.0, 10.0, 5);
        b.extend([2.6, 11.0]);
        a.merge(&b);
        assert_eq!(a.bins(), &[1, 2, 0, 0, 0]);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one() {
        let xs = [0.5, 3.0, 7.7, -2.0, 12.0];
        let ys = [1.1, 9.9, 5.5];
        let mut combined = Histogram::new(0.0, 10.0, 4);
        combined.extend(xs.iter().chain(&ys).copied());

        let mut a = Histogram::new(0.0, 10.0, 4);
        a.extend(xs);
        let mut b = Histogram::new(0.0, 10.0, 4);
        b.extend(ys);
        a.merge(&b);
        assert_eq!(a.bins(), combined.bins());
        assert_eq!(a.underflow(), combined.underflow());
        assert_eq!(a.overflow(), combined.overflow());
        assert_eq!(a.count(), combined.count());
        // Sums associate differently across the merge; equality holds
        // only up to float rounding.
        assert!((a.sum() - combined.sum()).abs() < 1e-9);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping_near_u64_max() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let mut b = Histogram::new(0.0, 10.0, 2);
        // Drive every counter near the ceiling by hand: recording
        // u64::MAX observations is not a thing a test can do.
        for h in [&mut a, &mut b] {
            h.bins = vec![u64::MAX - 1, 3];
            h.underflow = u64::MAX - 2;
            h.overflow = u64::MAX;
            h.count = u64::MAX - 1;
        }
        a.merge(&b);
        assert_eq!(a.bins(), &[u64::MAX, 6]);
        assert_eq!(a.underflow(), u64::MAX);
        assert_eq!(a.overflow(), u64::MAX);
        assert_eq!(a.count(), u64::MAX);
        // Merging again must stay pinned, not wrap back around.
        a.merge(&b);
        assert_eq!(a.bins(), &[u64::MAX, 9]);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn sum_tracks_finite_observations_only() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.extend([1.0, 4.0, 12.0, -2.0]);
        assert_eq!(h.sum(), 15.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.sum(), 15.0, "non-finite observations leave sum alone");
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn single_in_range_bucket_percentiles_hit_its_upper_edge() {
        let mut h = Histogram::new(0.0, 10.0, 1);
        h.extend([1.0, 5.0, 9.0]);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(10.0));
        }
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 4);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_percentile_is_none() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
    }

    #[test]
    fn percentile_walks_bins_in_order() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        // 4 observations in bin 0, 4 in bin 4.
        h.extend([0.1, 0.2, 0.3, 0.4, 9.0, 9.1, 9.2, 9.3]);
        assert_eq!(h.percentile(0.25), Some(2.0)); // upper edge of bin 0
        assert_eq!(h.percentile(1.0), Some(10.0)); // upper edge of bin 4
    }

    #[test]
    fn single_bucket_overflow_percentile_clamps_to_hi() {
        // Every observation lands in the overflow counter of a 1-bin
        // histogram; the percentile walk must fall through to hi
        // rather than index past the bins.
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.extend([5.0, 6.0, 7.0]);
        assert_eq!(h.bins(), &[0]);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.percentile(0.5), Some(1.0));
        assert_eq!(h.percentile(1.0), Some(1.0));
    }

    #[test]
    fn underflow_percentile_resolves_to_lo() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.extend([-5.0, -4.0, 5.0]);
        assert_eq!(h.percentile(0.3), Some(0.0));
        assert_eq!(h.percentile(1.0), Some(10.0));
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5]);
        let text = h.to_string();
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 0.5), Some(3.0));
        assert_eq!(percentile(&data, 0.9), Some(5.0));
        assert_eq!(percentile(&data, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for q in [0.1, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(percentile(&a, q), percentile(&b, q));
        }
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn bad_quantile_panics() {
        let _ = percentile(&[1.0], 1.5);
    }

    mod quantile_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The fixed-bucket estimate returns the upper edge of the
            /// bin holding the nearest-rank observation, so it can
            /// never stray more than one bucket width above the exact
            /// sorted-sample quantile (and never below it).
            #[test]
            fn estimate_within_one_bucket_width_of_exact(
                samples in prop::collection::vec(0.0f64..100.0, 1..200),
            ) {
                const BINS: usize = 20;
                let width = 100.0 / BINS as f64;
                let mut h = Histogram::new(0.0, 100.0, BINS);
                h.extend(samples.iter().copied());
                for q in [0.5, 0.99] {
                    let est = h.percentile(q).expect("non-empty");
                    let exact = percentile(&samples, q).expect("non-empty");
                    prop_assert!(
                        est >= exact && est - exact <= width,
                        "q={q}: estimate {est} vs exact {exact} (width {width})"
                    );
                }
            }
        }
    }
}
