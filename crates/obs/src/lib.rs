//! `tagwatch-obs`: zero-overhead telemetry for the tagwatch stack.
//!
//! The paper's protocols are judged on probabilistic guarantees, but a
//! production monitor is judged on what it can tell you *when
//! something goes wrong*. This crate is the workspace's telemetry
//! layer, in three pieces:
//!
//! - **[`Obs`] + [`StandardMetrics`]** — a metrics registry with
//!   pre-resolved handles: counters, gauges and fixed-bucket
//!   histograms, recorded through plain `u64` adds with no allocation
//!   and no locking. [`Obs::disabled`] reduces every record call to
//!   one untaken branch; the perf harness measures and gates that
//!   cost.
//! - **[`FlightRecorder`] + [`ObsEvent`]** — a bounded, drop-oldest
//!   ring of structured events, captured into a [`FlightDump`]
//!   postmortem on failure triggers (soak invariant violations,
//!   desynced verdicts, quarantine transitions). The [`EventSink`]
//!   trait is the common mouth this ring shares with
//!   `tagwatch_sim::Trace`.
//! - **[`SpanRecorder`]** — deterministic span tracing: a session →
//!   tick → round tree whose spans are timed by the *cost clock*
//!   (slots elapsed, probes issued, ticks) instead of wall time, with
//!   per-phase attribution (sub-frame setup, min-scan, verify,
//!   re-seed). Wall-clock decoration is opt-in via the [`Clock`]
//!   trait and lives only in the CLI/bench I/O shell.
//! - **Deterministic export** — [`Obs::snapshot_json`],
//!   [`FlightRecorder::to_jsonl`] and [`to_prometheus_text`] render
//!   byte-stable artifacts with embedded FNV-1a digests
//!   ([`fnv1a_lines`]), so two runs with the same seed diff clean and
//!   CI can pin a golden fingerprint.
//!
//! The crate is std-only and sits below every other workspace crate;
//! any layer can record into it without dependency cycles.

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod histogram;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use event::{EventSink, NullSink, ObsEvent, ProtoKind, VerdictKind};
pub use export::{
    fnv1a_bytes, fnv1a_lines, json_escape, json_f64, to_prometheus_text, FNV_OFFSET_BASIS,
    FNV_PRIME, PROM_PREFIX,
};
pub use histogram::{percentile, Histogram};
pub use metrics::{CounterId, FlightDump, GaugeId, HistogramId, Obs, StandardMetrics};
pub use recorder::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use span::{
    Clock, Phase, PhaseCost, SpanKind, SpanRecorder, SpanRollup, DEFAULT_SPAN_CAPACITY, PHASES,
};
