//! Deterministic export primitives: FNV-1a digests and hand-rolled
//! JSON encoding.
//!
//! The workspace has no serde; every exported artifact (soak reports,
//! perf baselines, metrics snapshots, flight-recorder dumps) is
//! written by hand with a fixed field order so that two runs with the
//! same seed produce *byte-identical* files. The FNV-1a digest over
//! those bytes is the regression fingerprint CI compares. These
//! helpers centralize the discipline `analytics::soak` pioneered so
//! every exporter shares one implementation.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a sequence of lines, hashing each line's bytes plus a
/// terminating `\n` — exactly the digest `analytics::soak` has always
/// used for its per-tick event log, so existing fingerprints are
/// unchanged.
#[must_use]
pub fn fnv1a_lines<I, S>(lines: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut hash = FNV_OFFSET_BASIS;
    for line in lines {
        for byte in line.as_ref().bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number that round-trips, or `null` for
/// non-finite values. `{:?}` keeps a decimal point / exponent (plain
/// `{}` prints `1` for 1.0) and is Rust's shortest round-trip
/// rendering, identical on every platform.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}

/// The metric-name prefix every exposed series carries, namespacing
/// the registry for multi-exporter scrape configs.
pub const PROM_PREFIX: &str = "tagwatch_";

/// Escapes a HELP string per the Prometheus text format: backslash
/// and newline are the only specials on a HELP line.
fn prom_escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders the whole registry in the Prometheus text exposition
/// format (version 0.0.4): counters and gauges as single samples,
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum`
/// and `_count` — the exact body the `tagwatchd` status endpoint will
/// serve from `/metrics`.
///
/// The output is **byte-deterministic**: metrics render in
/// registration order, the only label is `le` (edges ascend, `+Inf`
/// last), and floats go through [`json_f64`]'s shortest-round-trip
/// rendering — so two runs with the same seed produce identical
/// bodies at any thread count, and CI pins the instrumented soak's
/// body as a golden artifact.
#[must_use]
pub fn to_prometheus_text(obs: &crate::metrics::Obs) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, help, value) in obs.counters_iter() {
        let _ = writeln!(out, "# HELP {PROM_PREFIX}{name} {}", prom_escape_help(help));
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{name} counter");
        let _ = writeln!(out, "{PROM_PREFIX}{name} {value}");
    }
    for (name, help, value) in obs.gauges_iter() {
        let _ = writeln!(out, "# HELP {PROM_PREFIX}{name} {}", prom_escape_help(help));
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{name} gauge");
        let _ = writeln!(out, "{PROM_PREFIX}{name} {value}");
    }
    for (name, help, h) in obs.histograms_iter() {
        let _ = writeln!(out, "# HELP {PROM_PREFIX}{name} {}", prom_escape_help(help));
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{name} histogram");
        // Buckets are cumulative from below: everything under the
        // domain (the underflow counter) is below every edge.
        let mut cumulative = h.underflow();
        for (i, &c) in h.bins().iter().enumerate() {
            cumulative += c;
            let (_, edge) = h.bin_range(i);
            let _ = writeln!(
                out,
                "{PROM_PREFIX}{name}_bucket{{le=\"{}\"}} {cumulative}",
                json_f64(edge)
            );
        }
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{name}_bucket{{le=\"+Inf\"}} {}",
            h.count()
        );
        let _ = writeln!(out, "{PROM_PREFIX}{name}_sum {}", json_f64(h.sum()));
        let _ = writeln!(out, "{PROM_PREFIX}{name}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Obs;

    #[test]
    fn line_digest_matches_manual_fold() {
        // Hash of "ab\n" computed step by step.
        let mut expect = FNV_OFFSET_BASIS;
        for b in [b'a', b'b', b'\n'] {
            expect ^= u64::from(b);
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(fnv1a_lines(["ab"]), expect);
        assert_eq!(fnv1a_bytes(b"ab\n"), expect);
    }

    #[test]
    fn line_digest_separates_lines() {
        // "ab" + "c" must differ from "a" + "bc": the newline byte is
        // part of the fold.
        assert_ne!(fnv1a_lines(["ab", "c"]), fnv1a_lines(["a", "bc"]));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_round_trips_and_rejects_nonfinite() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn prometheus_body_is_byte_deterministic() {
        let build = || {
            let obs = Obs::new();
            obs.inc(obs.m.rounds_total);
            obs.add(obs.m.slots_total, 128);
            obs.set_gauge(obs.m.last_frame_size, 64);
            obs.observe(obs.m.frame_size, 64.0);
            obs.observe(obs.m.frame_size, 4500.0);
            to_prometheus_text(&obs)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn prometheus_counters_and_gauges_render_with_metadata() {
        let obs = Obs::new();
        obs.add(obs.m.rounds_total, 7);
        obs.set_gauge(obs.m.quarantine_occupancy, 3);
        let body = to_prometheus_text(&obs);
        assert!(body.contains("# HELP tagwatch_rounds_total Rounds executed, either protocol.\n"));
        assert!(body.contains("# TYPE tagwatch_rounds_total counter\n"));
        assert!(body.contains("\ntagwatch_rounds_total 7\n"));
        assert!(body.contains("# TYPE tagwatch_quarantine_occupancy gauge\n"));
        assert!(body.contains("\ntagwatch_quarantine_occupancy 3\n"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let obs = Obs::new();
        // hamming_distance spans [0, 64) with 16 bins of width 4.
        // Underflow (-1.0) must fold into every bucket from the first
        // edge up; overflow (100.0) appears only in +Inf.
        for v in [-1.0, 1.0, 5.0, 6.0, 100.0] {
            obs.observe(obs.m.hamming_distance, v);
        }
        let body = to_prometheus_text(&obs);
        assert!(body.contains("# TYPE tagwatch_hamming_distance histogram\n"));
        assert!(body.contains("tagwatch_hamming_distance_bucket{le=\"4.0\"} 2\n"));
        assert!(body.contains("tagwatch_hamming_distance_bucket{le=\"8.0\"} 4\n"));
        assert!(body.contains("tagwatch_hamming_distance_bucket{le=\"64.0\"} 4\n"));
        assert!(body.contains("tagwatch_hamming_distance_bucket{le=\"+Inf\"} 5\n"));
        assert!(body.contains("tagwatch_hamming_distance_sum 111.0\n"));
        assert!(body.contains("tagwatch_hamming_distance_count 5\n"));
    }

    #[test]
    fn prometheus_bucket_counts_never_decrease() {
        let obs = Obs::new();
        for v in [10.0, 20.0, 750.0, 2000.0, 9999.0] {
            obs.observe(obs.m.frame_size, v);
        }
        let body = to_prometheus_text(&obs);
        let mut last = 0u64;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("tagwatch_frame_size_bucket{") {
                let count: u64 = rest
                    .rsplit(' ')
                    .next()
                    .and_then(|c| c.parse().ok())
                    .expect("bucket line ends with a count");
                assert!(count >= last, "cumulative counts must be monotone: {line}");
                last = count;
            }
        }
        assert_eq!(last, 5, "+Inf bucket covers every observation");
    }

    #[test]
    fn prometheus_help_escapes_specials() {
        assert_eq!(prom_escape_help("a\\b\nc"), "a\\\\b\\nc");
    }
}
