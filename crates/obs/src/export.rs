//! Deterministic export primitives: FNV-1a digests and hand-rolled
//! JSON encoding.
//!
//! The workspace has no serde; every exported artifact (soak reports,
//! perf baselines, metrics snapshots, flight-recorder dumps) is
//! written by hand with a fixed field order so that two runs with the
//! same seed produce *byte-identical* files. The FNV-1a digest over
//! those bytes is the regression fingerprint CI compares. These
//! helpers centralize the discipline `analytics::soak` pioneered so
//! every exporter shares one implementation.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a sequence of lines, hashing each line's bytes plus a
/// terminating `\n` — exactly the digest `analytics::soak` has always
/// used for its per-tick event log, so existing fingerprints are
/// unchanged.
#[must_use]
pub fn fnv1a_lines<I, S>(lines: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut hash = FNV_OFFSET_BASIS;
    for line in lines {
        for byte in line.as_ref().bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number that round-trips, or `null` for
/// non-finite values. `{:?}` keeps a decimal point / exponent (plain
/// `{}` prints `1` for 1.0) and is Rust's shortest round-trip
/// rendering, identical on every platform.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_digest_matches_manual_fold() {
        // Hash of "ab\n" computed step by step.
        let mut expect = FNV_OFFSET_BASIS;
        for b in [b'a', b'b', b'\n'] {
            expect ^= u64::from(b);
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(fnv1a_lines(["ab"]), expect);
        assert_eq!(fnv1a_bytes(b"ab\n"), expect);
    }

    #[test]
    fn line_digest_separates_lines() {
        // "ab" + "c" must differ from "a" + "bc": the newline byte is
        // part of the fold.
        assert_ne!(fnv1a_lines(["ab", "c"]), fnv1a_lines(["a", "bc"]));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_round_trips_and_rejects_nonfinite() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
