//! Deterministic span tracing: a session → tick → round → phase tree
//! timed by a *cost clock* instead of a wall clock.
//!
//! Profilers answer "where did the time go?"; this module answers the
//! question that actually has a deterministic answer in tagwatch:
//! **where did the slots and probes go?** Every span accumulates three
//! cost axes — frame slots elapsed, per-tag probes issued, monitoring
//! ticks — all derived from the same seeded integer math as the rest
//! of the stack, so the span tree for a given seed is byte-identical
//! across runs, machines, and `--threads` values. That is what lets CI
//! pin span artifacts next to the metrics goldens, and what gives the
//! re-seed pipelining work in docs/PERFORMANCE.md a per-phase Amdahl
//! baseline that survives re-measurement.
//!
//! Wall-clock duration is an optional *decoration*: the library crates
//! never read a clock (the d1 lint rule forbids `std::time` here), but
//! an I/O shell (CLI, bench harness) may inject a [`Clock`] via
//! [`SpanRecorder::set_clock`], and every span then additionally
//! records `wall_ns`. Artifacts produced with a clock are explicitly
//! not byte-stable — that is the caller's trade to make.
//!
//! The tree is bounded: at most `capacity` nodes are retained
//! (drop-newest, counted in `dropped`), but *cost totals and the
//! per-phase rollup are exact regardless of retention* — a dropped
//! node still folds its cost into its parent on close.

use std::fmt;
use std::rc::Rc;

/// A wall-clock source injected at the I/O shell. Implementations live
/// in binary crates (`tagwatch-cli`, `tagwatch-bench`); the library
/// layers only ever see the trait, which keeps `std::time` out of
/// every digested code path.
pub trait Clock {
    /// Monotonic nanoseconds since an arbitrary epoch.
    fn now_ns(&self) -> u64;
}

/// What a span covers. Phases are not nodes: each round (or tick, for
/// phase charges outside any round) aggregates its phase costs inline,
/// which keeps the tree at one node per session/tick/round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One monitoring session (a whole soak run).
    Session,
    /// One monitoring tick.
    Tick,
    /// One protocol round (TRP or UTRP, including its verify).
    Round,
}

impl SpanKind {
    /// The kind's wire name in span JSONL.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Tick => "tick",
            SpanKind::Round => "round",
        }
    }
}

/// The named phases of a monitoring round. These are the units the
/// protocol-zoo comparison table will report per protocol, and the
/// terms of the Amdahl decomposition in docs/PERFORMANCE.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-announcement bookkeeping: nonce consumption, sub-frame
    /// reducer construction, uniform-key collapse. Charged one entry
    /// per announcement, zero slots/probes (it is O(1) work).
    SubFrameSetup = 0,
    /// The first announcement's minimum-slot scan over the full
    /// active set.
    MinScan = 1,
    /// The server-side mirror verification (bitstring comparison and
    /// mirror round replay). Charged in slots: the mirror re-walks
    /// the frame.
    Verify = 2,
    /// Announcements beyond the first: the serial re-seed tail that
    /// shrinks the sub-frame one reply at a time.
    ReSeed = 3,
}

/// Every phase, in wire order.
pub const PHASES: [Phase; 4] = [
    Phase::SubFrameSetup,
    Phase::MinScan,
    Phase::Verify,
    Phase::ReSeed,
];

impl Phase {
    /// The phase's wire name in span JSONL and rollups.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::SubFrameSetup => "sub_frame_setup",
            Phase::MinScan => "min_scan",
            Phase::Verify => "verify",
            Phase::ReSeed => "re_seed",
        }
    }
}

/// Accumulated deterministic cost of one phase: how many times it was
/// entered and what it consumed on the slot and probe axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Times the phase was entered.
    pub entries: u64,
    /// Frame slots elapsed inside the phase.
    pub slots: u64,
    /// Per-tag probes issued inside the phase.
    pub probes: u64,
}

impl PhaseCost {
    fn charge(&mut self, slots: u64, probes: u64) {
        self.entries = self.entries.saturating_add(1);
        self.slots = self.slots.saturating_add(slots);
        self.probes = self.probes.saturating_add(probes);
    }

    fn absorb(&mut self, other: &PhaseCost) {
        self.entries = self.entries.saturating_add(other.entries);
        self.slots = self.slots.saturating_add(other.slots);
        self.probes = self.probes.saturating_add(other.probes);
    }
}

/// The whole-run per-phase totals, exact regardless of node retention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanRollup {
    /// Per-phase totals, indexed in [`PHASES`] order.
    pub phases: [PhaseCost; 4],
    /// Ticks charged to tick spans.
    pub ticks: u64,
}

impl SpanRollup {
    /// Total slots attributed to any named phase.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.phases.iter().map(|p| p.slots).sum()
    }

    /// Total probes attributed to any named phase.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.phases.iter().map(|p| p.probes).sum()
    }

    /// The cost of one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> PhaseCost {
        self.phases[phase as usize]
    }
}

/// One retained span node. Cost fields are complete once the span
/// closes; an open node exported mid-run renders with `"open": true`
/// and whatever has been folded in so far (nothing, for leaf charges,
/// which stamp at close).
#[derive(Debug, Clone)]
struct SpanNode {
    id: u64,
    parent: Option<u64>,
    kind: SpanKind,
    ordinal: u64,
    open: bool,
    ticks: u64,
    slots: u64,
    probes: u64,
    phases: [PhaseCost; 4],
    wall_ns: Option<u64>,
}

/// One open span's in-flight accumulation, kept on the stack until
/// close. `node: None` marks a span whose node was dropped by the
/// retention cap — its cost still folds into the parent.
#[derive(Debug)]
struct OpenSpan {
    node: Option<usize>,
    ticks: u64,
    slots: u64,
    probes: u64,
    phases: [PhaseCost; 4],
    /// Children opened so far, by kind — the source of child ordinals.
    children: [u64; 3],
    wall_open: u64,
}

const fn kind_index(kind: SpanKind) -> usize {
    match kind {
        SpanKind::Session => 0,
        SpanKind::Tick => 1,
        SpanKind::Round => 2,
    }
}

/// Default retained-node cap: enough for a 1000-tick soak's tick and
/// round spans with headroom, small enough to bound a runaway driver.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// The span tree recorder. Owned by `Obs` behind a `RefCell`; see the
/// module docs for the determinism contract.
pub struct SpanRecorder {
    enabled: bool,
    capacity: usize,
    nodes: Vec<SpanNode>,
    stack: Vec<OpenSpan>,
    /// Top-level (parentless) spans opened so far, by kind.
    top_children: [u64; 3],
    next_id: u64,
    dropped: u64,
    rollup: SpanRollup,
    clock: Option<Rc<dyn Clock>>,
}

impl fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.enabled)
            .field("nodes", &self.nodes.len())
            .field("open", &self.stack.len())
            .field("dropped", &self.dropped)
            .field("clock", &self.clock.is_some())
            .finish()
    }
}

impl SpanRecorder {
    /// Creates a recorder with the default retention cap.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self::with_capacity(enabled, DEFAULT_SPAN_CAPACITY)
    }

    /// Creates a recorder retaining at most `capacity` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        assert!(capacity > 0, "span recorder needs room for one node");
        SpanRecorder {
            enabled,
            capacity,
            nodes: Vec::new(),
            stack: Vec::new(),
            top_children: [0; 3],
            next_id: 0,
            dropped: 0,
            rollup: SpanRollup::default(),
            clock: None,
        }
    }

    /// Whether span recording is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Injects a wall clock. Spans opened afterwards carry `wall_ns`;
    /// artifacts stop being byte-stable, which is the caller's choice
    /// to make at the I/O shell.
    pub fn set_clock(&mut self, clock: Rc<dyn Clock>) {
        self.clock = Some(clock);
    }

    fn now(&self) -> u64 {
        self.clock.as_ref().map_or(0, |c| c.now_ns())
    }

    /// Opens a span. Ordinals are per-parent open order (the first
    /// round of a tick is ordinal 0), which makes node identity stable
    /// across runs without any global counter leaking between trees.
    pub fn open(&mut self, kind: SpanKind) {
        if !self.enabled {
            return;
        }
        let parent = self
            .stack
            .iter()
            .rev()
            .find_map(|o| o.node)
            .map(|i| self.nodes[i].id);
        // Per-parent open order: the first round of a tick is round 0
        // whether or not earlier siblings were retained.
        let slot = match self.stack.last_mut() {
            Some(top) => &mut top.children[kind_index(kind)],
            None => &mut self.top_children[kind_index(kind)],
        };
        let ordinal = *slot;
        *slot += 1;
        let ticks = u64::from(kind == SpanKind::Tick);
        if ticks > 0 {
            self.rollup.ticks = self.rollup.ticks.saturating_add(1);
        }
        let node = if self.nodes.len() < self.capacity {
            let id = self.next_id;
            self.next_id += 1;
            self.nodes.push(SpanNode {
                id,
                parent,
                kind,
                ordinal,
                open: true,
                ticks: 0,
                slots: 0,
                probes: 0,
                phases: [PhaseCost::default(); 4],
                wall_ns: None,
            });
            Some(self.nodes.len() - 1)
        } else {
            self.dropped += 1;
            None
        };
        let wall_open = self.now();
        self.stack.push(OpenSpan {
            node,
            ticks,
            slots: 0,
            probes: 0,
            phases: [PhaseCost::default(); 4],
            children: [0; 3],
            wall_open,
        });
    }

    /// Charges a phase on the innermost open span (and the global
    /// rollup). With no span open the rollup still accumulates, so
    /// bare round executions (tests, single-round tools) keep exact
    /// attribution without a tree.
    pub fn phase(&mut self, phase: Phase, slots: u64, probes: u64) {
        if !self.enabled {
            return;
        }
        self.rollup.phases[phase as usize].charge(slots, probes);
        if let Some(top) = self.stack.last_mut() {
            top.phases[phase as usize].charge(slots, probes);
            top.slots = top.slots.saturating_add(slots);
            top.probes = top.probes.saturating_add(probes);
        }
    }

    /// Closes the innermost open span, folding its cost (own phase
    /// charges plus everything its children folded in) into its
    /// parent. A close with no open span is a no-op: drivers may close
    /// defensively on error paths.
    pub fn close(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(top) = self.stack.pop() else {
            return;
        };
        let wall = self
            .clock
            .as_ref()
            .map(|c| c.now_ns().saturating_sub(top.wall_open));
        if let Some(i) = top.node {
            let node = &mut self.nodes[i];
            node.open = false;
            node.ticks = top.ticks;
            node.slots = top.slots;
            node.probes = top.probes;
            node.phases = top.phases;
            node.wall_ns = wall;
        }
        if let Some(parent) = self.stack.last_mut() {
            parent.ticks = parent.ticks.saturating_add(top.ticks);
            parent.slots = parent.slots.saturating_add(top.slots);
            parent.probes = parent.probes.saturating_add(top.probes);
            for (p, o) in parent.phases.iter_mut().zip(&top.phases) {
                p.absorb(o);
            }
        }
    }

    /// Closes every open span, innermost first — the finish hook for
    /// drivers that own the session span.
    pub fn close_all(&mut self) {
        while !self.stack.is_empty() {
            self.close();
        }
    }

    /// Spans currently open.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Nodes dropped by the retention cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The exact whole-run rollup.
    #[must_use]
    pub fn rollup(&self) -> SpanRollup {
        self.rollup
    }

    /// Serializes the span tree as JSONL: one `{"span": ...}` object
    /// per node in open order, then one `{"rollup": ...}` trailer with
    /// the exact totals. Without an injected clock the output is
    /// byte-identical across runs and thread counts; `wall_ns` renders
    /// as `null`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for n in &self.nodes {
            let _ = write!(
                out,
                "{{\"span\":{},\"parent\":{},\"kind\":\"{}\",\"ordinal\":{},\"open\":{},\
                 \"ticks\":{},\"slots\":{},\"probes\":{}",
                n.id,
                n.parent
                    .map_or_else(|| "null".to_owned(), |p| p.to_string()),
                n.kind.name(),
                n.ordinal,
                n.open,
                n.ticks,
                n.slots,
                n.probes,
            );
            if n.phases.iter().any(|p| p.entries > 0) {
                out.push_str(",\"phases\":{");
                let mut first = true;
                for phase in PHASES {
                    let c = n.phases[phase as usize];
                    if c.entries == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "\"{}\":{{\"entries\":{},\"slots\":{},\"probes\":{}}}",
                        phase.name(),
                        c.entries,
                        c.slots,
                        c.probes,
                    );
                }
                out.push('}');
            }
            match n.wall_ns {
                Some(ns) => {
                    let _ = write!(out, ",\"wall_ns\":{ns}");
                }
                None => out.push_str(",\"wall_ns\":null"),
            }
            out.push_str("}\n");
        }
        let _ = write!(out, "{{\"rollup\":{{");
        for phase in PHASES {
            let c = self.rollup.phases[phase as usize];
            let _ = write!(
                out,
                "\"{}\":{{\"entries\":{},\"slots\":{},\"probes\":{}}},",
                phase.name(),
                c.entries,
                c.slots,
                c.probes,
            );
        }
        let _ = writeln!(
            out,
            "\"ticks\":{},\"slots\":{},\"probes\":{},\"retained\":{},\"dropped\":{}}}}}",
            self.rollup.ticks,
            self.rollup.slots(),
            self.rollup.probes(),
            self.nodes.len(),
            self.dropped,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn spend_round(rec: &mut SpanRecorder, slots: (u64, u64), probes: (u64, u64)) {
        rec.open(SpanKind::Round);
        rec.phase(Phase::SubFrameSetup, 0, 0);
        rec.phase(Phase::MinScan, slots.0, probes.0);
        rec.phase(Phase::SubFrameSetup, 0, 0);
        rec.phase(Phase::ReSeed, slots.1, probes.1);
        rec.close();
    }

    #[test]
    fn tree_aggregates_child_costs_upward() {
        let mut rec = SpanRecorder::new(true);
        rec.open(SpanKind::Session);
        rec.open(SpanKind::Tick);
        spend_round(&mut rec, (10, 6), (100, 40));
        spend_round(&mut rec, (8, 0), (50, 0));
        rec.close(); // tick
        rec.close(); // session
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5, "session + tick + 2 rounds + rollup");
        assert!(lines[0].contains("\"kind\":\"session\""));
        assert!(lines[0].contains("\"slots\":24"));
        assert!(lines[0].contains("\"probes\":190"));
        assert!(lines[0].contains("\"ticks\":1"));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[2].contains("\"ordinal\":0"));
        assert!(lines[3].contains("\"ordinal\":1"));
        let roll = rec.rollup();
        assert_eq!(roll.slots(), 24);
        assert_eq!(roll.probes(), 190);
        assert_eq!(roll.ticks, 1);
        assert_eq!(roll.phase(Phase::MinScan).slots, 18);
        assert_eq!(roll.phase(Phase::ReSeed).slots, 6);
        assert_eq!(roll.phase(Phase::SubFrameSetup).entries, 4);
    }

    #[test]
    fn phase_without_open_span_still_rolls_up() {
        let mut rec = SpanRecorder::new(true);
        rec.phase(Phase::MinScan, 7, 3);
        assert_eq!(rec.rollup().slots(), 7);
        assert_eq!(rec.rollup().probes(), 3);
        assert!(rec.is_empty(), "no node without an open span");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = SpanRecorder::new(false);
        rec.open(SpanKind::Session);
        rec.phase(Phase::MinScan, 7, 3);
        rec.close();
        assert!(rec.is_empty());
        assert_eq!(rec.rollup(), SpanRollup::default());
        assert_eq!(rec.to_jsonl().lines().count(), 1, "rollup trailer only");
    }

    #[test]
    fn retention_cap_drops_nodes_but_keeps_totals_exact() {
        let mut rec = SpanRecorder::with_capacity(true, 2);
        rec.open(SpanKind::Session);
        rec.open(SpanKind::Tick);
        spend_round(&mut rec, (5, 0), (9, 0)); // round node dropped
        spend_round(&mut rec, (5, 0), (9, 0)); // round node dropped
        rec.close_all();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.rollup().slots(), 10);
        assert_eq!(rec.rollup().probes(), 18);
        let jsonl = rec.to_jsonl();
        // The session node still carries the full folded cost.
        assert!(jsonl.lines().next().unwrap().contains("\"slots\":10"));
        assert!(jsonl.contains("\"dropped\":2"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        let run = || {
            let mut rec = SpanRecorder::new(true);
            rec.open(SpanKind::Session);
            rec.open(SpanKind::Tick);
            spend_round(&mut rec, (12, 4), (30, 5));
            rec.close_all();
            rec.to_jsonl()
        };
        assert_eq!(run(), run());
        assert!(run().contains("\"wall_ns\":null"));
    }

    #[test]
    fn injected_clock_decorates_wall_ns() {
        struct FakeClock(Cell<u64>);
        impl Clock for FakeClock {
            fn now_ns(&self) -> u64 {
                let t = self.0.get();
                self.0.set(t + 250);
                t
            }
        }
        let mut rec = SpanRecorder::new(true);
        rec.set_clock(Rc::new(FakeClock(Cell::new(1000))));
        rec.open(SpanKind::Round);
        rec.close();
        let jsonl = rec.to_jsonl();
        assert!(jsonl.contains("\"wall_ns\":250"), "{jsonl}");
    }

    #[test]
    fn close_without_open_is_a_noop() {
        let mut rec = SpanRecorder::new(true);
        rec.close();
        assert!(rec.is_empty());
        assert_eq!(rec.open_depth(), 0);
    }
}
