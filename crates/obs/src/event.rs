//! Structured telemetry events and the sink abstraction.
//!
//! [`ObsEvent`] is the flight-recorder vocabulary: one compact,
//! heap-free variant per protocol-level happening (a round completing,
//! a verdict, a resync rung, a quarantine transition, a soak invariant
//! tripping). Events deliberately carry plain integers rather than
//! domain types so this crate stays a leaf — the layers above map
//! their richer types down when they emit.
//!
//! [`EventSink`] is the common mouth every event stream feeds:
//! the bounded [`FlightRecorder`](crate::FlightRecorder) here and
//! `tagwatch_sim::Trace`'s air-interface log both implement it, so
//! drivers can be generic over where their events land.

use std::fmt::Write as _;

/// Which protocol an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoKind {
    /// Trusted Reader Protocol.
    Trp,
    /// Untrusted Reader Protocol.
    Utrp,
}

impl ProtoKind {
    /// Lower-case wire name used in JSONL exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtoKind::Trp => "trp",
            ProtoKind::Utrp => "utrp",
        }
    }
}

/// A verdict, flattened for telemetry (suspect lists stay in the
/// domain layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// No evidence of missing tags.
    Intact,
    /// Alarm: the response is inconsistent with an intact population.
    NotIntact,
    /// The mismatch is explained by counter desynchronization.
    Desynced,
}

impl VerdictKind {
    /// Lower-case wire name used in JSONL exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Intact => "intact",
            VerdictKind::NotIntact => "not_intact",
            VerdictKind::Desynced => "desynced",
        }
    }
}

/// One flight-recorder event. All variants are `Copy` and heap-free:
/// emitting an event is a couple of word writes into the ring, never
/// an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// A field round finished (either protocol, any executor).
    RoundCompleted {
        /// Protocol that ran the round.
        proto: ProtoKind,
        /// Frame size of the round.
        frame: u64,
        /// Occupied (reply) slots observed.
        occupied: u64,
        /// UTRP re-seeds performed (0 for TRP).
        reseeds: u64,
        /// Simulated scanning time in microseconds (0 when the round
        /// carries no timing, e.g. TRP).
        elapsed_us: u64,
    },
    /// The server verified a response.
    Verified {
        /// Protocol verified.
        proto: ProtoKind,
        /// The flattened verdict.
        verdict: VerdictKind,
        /// Hamming distance between expected and observed bitstrings.
        mismatched: u64,
        /// Whether the response missed the round deadline.
        late: bool,
    },
    /// A resync ladder rung succeeded.
    Resynced {
        /// 1-based attempt number that succeeded.
        attempt: u64,
        /// Suspects carried by the accepted desync hypothesis.
        suspects: u64,
    },
    /// Tags entered quarantine.
    Quarantined {
        /// Tags quarantined by this transition.
        tags: u64,
        /// Total quarantine occupancy afterwards.
        occupancy: u64,
    },
    /// The session escalated to full identification.
    Escalated {
        /// Missing tags named by identification.
        missing: u64,
        /// Alarmed-but-unattributed tags.
        unresolved: u64,
        /// Identification slots consumed.
        slots_used: u64,
    },
    /// A quarantine audit completed.
    AuditCompleted {
        /// Tags released back to monitored status.
        released: u64,
        /// Ticks the audited tags spent quarantined.
        latency_ticks: u64,
    },
    /// One soak tick finished.
    TickCompleted {
        /// Tick index.
        tick: u64,
        /// The tick's verdict.
        verdict: VerdictKind,
    },
    /// A soak invariant was violated (the postmortem trigger).
    InvariantViolated {
        /// Tick at which the violation was detected.
        tick: u64,
        /// Invariant number (1–3, matching `SoakReport` docs).
        invariant: u8,
    },
    /// A declarative policy limit was breached (e.g. the audit budget
    /// for the trailing window was exhausted). Advisory: the session
    /// keeps running, but the breach is on the record.
    PolicyAlert {
        /// Tick at which the breach was detected.
        tick: u64,
        /// Audits observed inside the trailing window.
        audits: u64,
        /// The policy's budget for that window.
        budget: u64,
        /// Window length in ticks.
        window: u64,
    },
    /// A pooled round engine ran one round on its scalar path because
    /// the active set was below the pool's dispatch threshold (or the
    /// pool was configured single-threaded). Emitted only by the
    /// multi-thread pooled engine in `tagwatch-analytics` — never on
    /// the default scalar path — so default telemetry streams and
    /// their golden digests are unchanged.
    ScalarFallback {
        /// Active (non-mute) tags in the round.
        actives: u64,
        /// The pool's dispatch threshold.
        threshold: u64,
    },
    /// Durable-state recovery excised a damaged WAL tail (the
    /// attributable trace of a crash or corruption — a recovered run
    /// is never silently presented as an uninterrupted one).
    StoreRecovered {
        /// Corruption classification code (`tagwatch-store`'s
        /// `CorruptionKind::code`).
        kind: u8,
        /// Byte offset where the damage began (= intact prefix
        /// length).
        offset: u64,
        /// Trailing bytes dropped to restore a valid log.
        dropped: u64,
    },
}

impl ObsEvent {
    /// Appends this event as one JSON object line (no trailing
    /// newline) with the given sequence number. Field order is fixed,
    /// all values are integers, strings or booleans — byte-stable
    /// across runs and platforms.
    pub fn write_json(&self, seq: u64, out: &mut String) {
        let _ = match *self {
            ObsEvent::RoundCompleted {
                proto,
                frame,
                occupied,
                reseeds,
                elapsed_us,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"round_completed\",\"proto\":\"{}\",\"frame\":{frame},\"occupied\":{occupied},\"reseeds\":{reseeds},\"elapsed_us\":{elapsed_us}}}",
                proto.name()
            ),
            ObsEvent::Verified {
                proto,
                verdict,
                mismatched,
                late,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"verified\",\"proto\":\"{}\",\"verdict\":\"{}\",\"mismatched\":{mismatched},\"late\":{late}}}",
                proto.name(),
                verdict.name()
            ),
            ObsEvent::Resynced { attempt, suspects } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"resynced\",\"attempt\":{attempt},\"suspects\":{suspects}}}"
            ),
            ObsEvent::Quarantined { tags, occupancy } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"quarantined\",\"tags\":{tags},\"occupancy\":{occupancy}}}"
            ),
            ObsEvent::Escalated {
                missing,
                unresolved,
                slots_used,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"escalated\",\"missing\":{missing},\"unresolved\":{unresolved},\"slots_used\":{slots_used}}}"
            ),
            ObsEvent::AuditCompleted {
                released,
                latency_ticks,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"audit_completed\",\"released\":{released},\"latency_ticks\":{latency_ticks}}}"
            ),
            ObsEvent::TickCompleted { tick, verdict } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"tick_completed\",\"tick\":{tick},\"verdict\":\"{}\"}}",
                verdict.name()
            ),
            ObsEvent::InvariantViolated { tick, invariant } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"invariant_violated\",\"tick\":{tick},\"invariant\":{invariant}}}"
            ),
            ObsEvent::PolicyAlert {
                tick,
                audits,
                budget,
                window,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"policy_alert\",\"tick\":{tick},\"audits\":{audits},\"budget\":{budget},\"window\":{window}}}"
            ),
            ObsEvent::ScalarFallback { actives, threshold } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"scalar_fallback\",\"actives\":{actives},\"threshold\":{threshold}}}"
            ),
            ObsEvent::StoreRecovered {
                kind,
                offset,
                dropped,
            } => write!(
                out,
                "{{\"seq\":{seq},\"type\":\"store_recovered\",\"kind\":{kind},\"offset\":{offset},\"dropped\":{dropped}}}"
            ),
        };
    }
}

/// Anything that accepts a stream of events.
///
/// Implemented by [`FlightRecorder`](crate::FlightRecorder) (for
/// [`ObsEvent`]) and by `tagwatch_sim::Trace` (for its timestamped
/// air-interface events), so recording code can be written once
/// against the sink rather than a concrete buffer.
pub trait EventSink<E> {
    /// Accepts one event. Implementations must not fail; bounded sinks
    /// drop (and count) instead.
    fn accept(&mut self, event: E);

    /// Events discarded so far to respect a capacity bound.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The throwaway sink: accepts and discards everything. Useful as the
/// disabled-path default in code generic over a sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<E> EventSink<E> for NullSink {
    fn accept(&mut self, _event: E) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_stable() {
        let mut out = String::new();
        ObsEvent::RoundCompleted {
            proto: ProtoKind::Utrp,
            frame: 64,
            occupied: 12,
            reseeds: 11,
            elapsed_us: 1500,
        }
        .write_json(3, &mut out);
        assert_eq!(
            out,
            "{\"seq\":3,\"type\":\"round_completed\",\"proto\":\"utrp\",\"frame\":64,\"occupied\":12,\"reseeds\":11,\"elapsed_us\":1500}"
        );
    }

    #[test]
    fn store_recovered_json_is_stable() {
        let mut out = String::new();
        ObsEvent::StoreRecovered {
            kind: 3,
            offset: 4096,
            dropped: 17,
        }
        .write_json(9, &mut out);
        assert_eq!(
            out,
            "{\"seq\":9,\"type\":\"store_recovered\",\"kind\":3,\"offset\":4096,\"dropped\":17}"
        );
    }

    #[test]
    fn policy_alert_json_is_stable() {
        let mut out = String::new();
        ObsEvent::PolicyAlert {
            tick: 42,
            audits: 6,
            budget: 5,
            window: 100,
        }
        .write_json(11, &mut out);
        assert_eq!(
            out,
            "{\"seq\":11,\"type\":\"policy_alert\",\"tick\":42,\"audits\":6,\"budget\":5,\"window\":100}"
        );
    }

    #[test]
    fn scalar_fallback_json_is_stable() {
        let mut out = String::new();
        ObsEvent::ScalarFallback {
            actives: 60,
            threshold: 8192,
        }
        .write_json(4, &mut out);
        assert_eq!(
            out,
            "{\"seq\":4,\"type\":\"scalar_fallback\",\"actives\":60,\"threshold\":8192}"
        );
    }

    #[test]
    fn verdicts_and_protocols_have_wire_names() {
        assert_eq!(VerdictKind::NotIntact.name(), "not_intact");
        assert_eq!(ProtoKind::Trp.name(), "trp");
    }

    #[test]
    fn null_sink_swallows_everything() {
        let mut sink = NullSink;
        EventSink::<u32>::accept(&mut sink, 7);
        assert_eq!(EventSink::<u32>::dropped(&sink), 0);
    }
}
