//! The flight recorder: a bounded ring of recent events.
//!
//! Production systems don't log everything forever — they keep the
//! last N structured events in a ring and dump it when something goes
//! wrong. [`FlightRecorder`] is that ring for [`ObsEvent`]s: push is
//! O(1) and allocation-free once the ring is full (drop-oldest, with a
//! dropped counter so truncation is visible), and
//! [`FlightRecorder::to_jsonl`] serializes the surviving window
//! byte-stably for postmortems and CI diffing.

use std::collections::VecDeque;

use crate::event::{EventSink, ObsEvent};

/// Default ring capacity: enough for thousands of round/tick events —
/// a generous postmortem window — while bounding memory to a few
/// hundred kilobytes.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded, drop-oldest ring buffer of sequence-stamped events.
///
/// Sequence numbers are assigned at push time, start at 0, and never
/// reset — after drops, the first retained event's `seq` tells a
/// reader exactly how much history is missing.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<(u64, ObsEvent)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder with [`DEFAULT_RING_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a positive capacity");
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: ObsEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((self.next_seq, event));
        self.next_seq += 1;
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted to respect the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Iterates over retained `(seq, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, ObsEvent)> {
        self.ring.iter()
    }

    /// Discards all retained events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.dropped += self.ring.len() as u64;
        self.ring.clear();
    }

    /// Serializes the retained window as JSONL: one event object per
    /// line, oldest first, trailing newline after every line. Two
    /// recorders that saw the same pushes produce byte-identical
    /// output.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 64);
        for &(seq, ref event) in &self.ring {
            event.write_json(seq, &mut out);
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink<ObsEvent> for FlightRecorder {
    fn accept(&mut self, event: ObsEvent) {
        self.push(event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VerdictKind;

    fn tick(t: u64) -> ObsEvent {
        ObsEvent::TickCompleted {
            tick: t,
            verdict: VerdictKind::Intact,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut fr = FlightRecorder::with_capacity(3);
        for t in 0..5 {
            fr.push(tick(t));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.total_recorded(), 5);
        let seqs: Vec<u64> = fr.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, [2, 3, 4], "oldest survivors reveal the gap");
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut fr = FlightRecorder::new();
        fr.push(tick(0));
        fr.push(tick(1));
        let text = fr.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert!(text.starts_with("{\"seq\":0,\"type\":\"tick_completed\""));
    }

    #[test]
    fn same_pushes_same_bytes() {
        let build = || {
            let mut fr = FlightRecorder::with_capacity(4);
            for t in 0..9 {
                fr.push(tick(t));
            }
            fr.to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn clear_keeps_sequence_monotonic() {
        let mut fr = FlightRecorder::new();
        fr.push(tick(0));
        fr.clear();
        assert!(fr.is_empty());
        fr.push(tick(1));
        assert_eq!(fr.iter().next().unwrap().0, 1);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_panics() {
        let _ = FlightRecorder::with_capacity(0);
    }
}
