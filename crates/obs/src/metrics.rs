//! The metrics registry and the [`Obs`] handle threaded through the
//! execution stack.
//!
//! Design goals, in priority order:
//!
//! 1. **Zero-alloc hot path.** Recording is a pre-resolved index into
//!    a flat `Vec<Cell<u64>>` plus a plain add — no string lookup, no
//!    locking, no allocation. Names are resolved once at registration
//!    into copyable [`CounterId`]/[`GaugeId`]/[`HistogramId`] handles.
//! 2. **Disabled mode that compiles to near-nothing.** Every record
//!    method starts with a single predictable branch on `enabled`;
//!    [`Obs::disabled`] makes the whole telemetry layer one untaken
//!    branch per call site. `bench/src/bin/perf.rs` measures and
//!    gates this cost.
//! 3. **Deterministic export.** [`Obs::snapshot_json`] walks metrics
//!    in registration order and renders them with the workspace's
//!    byte-stable JSON discipline, with an FNV-1a digest embedded so
//!    CI can compare snapshots across runs by fingerprint.
//!
//! Interior mutability (`Cell`/`RefCell`) lets recording take `&self`,
//! so one `Obs` can be threaded through executor, protocol, session
//! and driver layers without fighting the borrow checker. `Obs` is
//! deliberately not `Sync`: it belongs to one driver thread; parallel
//! scan workers report through per-chunk aggregation instead.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::event::ObsEvent;
use crate::export::{fnv1a_lines, json_escape, json_f64};
use crate::histogram::Histogram;
use crate::recorder::FlightRecorder;
use crate::span::{Clock, Phase, SpanKind, SpanRecorder, SpanRollup};

/// Handle to a registered counter (monotonic `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (last-write-wins `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A captured flight-recorder dump: the postmortem artifact written
/// when a failure trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// What tripped the dump (e.g. `"invariant_violation"`,
    /// `"quarantine"`, `"desync"`).
    pub reason: String,
    /// The retained event window as JSONL (see
    /// [`FlightRecorder::to_jsonl`]).
    pub jsonl: String,
}

/// Pre-resolved handles for the standard tagwatch metric catalog (see
/// `docs/OBSERVABILITY.md` for names, units and semantics). Resolved
/// once in [`Obs::new`]; copying the struct copies plain indices.
#[derive(Debug, Clone, Copy)]
pub struct StandardMetrics {
    /// Rounds executed, either protocol.
    pub rounds_total: CounterId,
    /// TRP rounds executed.
    pub rounds_trp: CounterId,
    /// UTRP rounds executed.
    pub rounds_utrp: CounterId,
    /// Frame slots issued across all rounds.
    pub slots_total: CounterId,
    /// Slots that carried a reply.
    pub slots_occupied: CounterId,
    /// UTRP re-seeds (announcements beyond the first).
    pub reseeds_total: CounterId,
    /// Per-tag slot probes evaluated by the scan engine.
    pub probes_total: CounterId,
    /// Probes skipped by the candidate pre-filter.
    pub probes_filtered: CounterId,
    /// Verifications that returned `Intact`.
    pub verify_intact: CounterId,
    /// Verifications that returned `NotIntact`.
    pub verify_alarm: CounterId,
    /// Verifications that returned `Desynced`.
    pub verify_desynced: CounterId,
    /// Resync ladder rungs attempted.
    pub resync_attempts: CounterId,
    /// Resync rungs that restored sync.
    pub resync_successes: CounterId,
    /// Session escalations to full identification.
    pub escalations: CounterId,
    /// Quarantine transitions (batches, not tags).
    pub quarantine_events: CounterId,
    /// Quarantine audits performed.
    pub audits_total: CounterId,
    /// Soak ticks completed.
    pub soak_ticks: CounterId,
    /// Soak invariant violations observed.
    pub soak_violations: CounterId,
    /// Events dropped by bounded sinks (flight ring, sim traces).
    pub events_dropped: CounterId,

    /// Current quarantine occupancy (tags).
    pub quarantine_occupancy: GaugeId,
    /// Frame size of the most recent round.
    pub last_frame_size: GaugeId,

    /// Distribution of round frame sizes.
    pub frame_size: HistogramId,
    /// Distribution of verify hamming distances (mismatched slots).
    pub hamming_distance: HistogramId,
    /// Distribution of resync ladder depths (attempts per recovery).
    pub resync_depth: HistogramId,
    /// Distribution of quarantine audit latencies in ticks.
    pub audit_latency_ticks: HistogramId,
    /// Distribution of round scanning times in milliseconds.
    pub round_elapsed_ms: HistogramId,
}

#[derive(Debug, Default)]
struct Registry {
    counter_names: Vec<&'static str>,
    counter_help: Vec<&'static str>,
    counters: Vec<Cell<u64>>,
    gauge_names: Vec<&'static str>,
    gauge_help: Vec<&'static str>,
    gauges: Vec<Cell<u64>>,
    histogram_names: Vec<&'static str>,
    histogram_help: Vec<&'static str>,
    histograms: Vec<RefCell<Histogram>>,
}

/// The telemetry handle: metrics registry + flight recorder + dump
/// latch, behind one `enabled` switch.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    span_on: bool,
    reg: Registry,
    recorder: RefCell<FlightRecorder>,
    spans: RefCell<SpanRecorder>,
    dump: RefCell<Option<FlightDump>>,
    /// Pre-resolved handles for the standard catalog.
    pub m: StandardMetrics,
}

impl Obs {
    /// Creates an enabled `Obs` with the standard metric catalog and
    /// the default flight-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_ring_capacity(crate::recorder::DEFAULT_RING_CAPACITY)
    }

    /// Creates an enabled `Obs` whose flight ring holds at most
    /// `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self::build(true, true, capacity)
    }

    /// Creates a disabled `Obs`: every record method reduces to one
    /// untaken branch. Handles stay valid, so instrumented code paths
    /// need no `Option` plumbing.
    #[must_use]
    pub fn disabled() -> Self {
        // Capacity 1 keeps the unused ring allocation negligible.
        Self::build(false, false, 1)
    }

    /// Creates an enabled `Obs` with span tracing switched off:
    /// metrics, events and dumps record as usual, but every span call
    /// is one untaken branch and no tree is retained. For callers
    /// that want the registry without per-round span bookkeeping.
    #[must_use]
    pub fn metrics_only() -> Self {
        Self::build(true, false, crate::recorder::DEFAULT_RING_CAPACITY)
    }

    fn build(enabled: bool, spans: bool, ring_capacity: usize) -> Self {
        let mut reg = Registry::default();
        let mut counter = |name, help| {
            reg.counter_names.push(name);
            reg.counter_help.push(help);
            reg.counters.push(Cell::new(0));
            CounterId(reg.counters.len() - 1)
        };
        let rounds_total = counter("rounds_total", "Rounds executed, either protocol.");
        let rounds_trp = counter("rounds_trp", "TRP rounds executed.");
        let rounds_utrp = counter("rounds_utrp", "UTRP rounds executed.");
        let slots_total = counter("slots_total", "Frame slots issued across all rounds.");
        let slots_occupied = counter("slots_occupied", "Slots that carried a reply.");
        let reseeds_total = counter(
            "reseeds_total",
            "UTRP re-seeds (announcements beyond the first).",
        );
        let probes_total = counter(
            "probes_total",
            "Per-tag slot probes evaluated by the scan engine.",
        );
        let probes_filtered = counter(
            "probes_filtered",
            "Probes skipped by the candidate pre-filter.",
        );
        let verify_intact = counter("verify_intact", "Verifications that returned Intact.");
        let verify_alarm = counter("verify_alarm", "Verifications that returned NotIntact.");
        let verify_desynced = counter("verify_desynced", "Verifications that returned Desynced.");
        let resync_attempts = counter("resync_attempts", "Resync ladder rungs attempted.");
        let resync_successes = counter("resync_successes", "Resync rungs that restored sync.");
        let escalations = counter("escalations", "Session escalations to full identification.");
        let quarantine_events = counter(
            "quarantine_events",
            "Quarantine transitions (batches, not tags).",
        );
        let audits_total = counter("audits_total", "Quarantine audits performed.");
        let soak_ticks = counter("soak_ticks", "Soak ticks completed.");
        let soak_violations = counter("soak_violations", "Soak invariant violations observed.");
        let events_dropped = counter(
            "events_dropped",
            "Events dropped by bounded sinks (flight ring, sim traces).",
        );

        let mut gauge = |name, help| {
            reg.gauge_names.push(name);
            reg.gauge_help.push(help);
            reg.gauges.push(Cell::new(0));
            GaugeId(reg.gauges.len() - 1)
        };
        let quarantine_occupancy = gauge(
            "quarantine_occupancy",
            "Current quarantine occupancy (tags).",
        );
        let last_frame_size = gauge("last_frame_size", "Frame size of the most recent round.");

        let mut hist = |name, help, lo: f64, hi: f64, bins: usize| {
            reg.histogram_names.push(name);
            reg.histogram_help.push(help);
            reg.histograms
                .push(RefCell::new(Histogram::new(lo, hi, bins)));
            HistogramId(reg.histograms.len() - 1)
        };
        let frame_size = hist(
            "frame_size",
            "Distribution of round frame sizes.",
            0.0,
            4096.0,
            32,
        );
        let hamming_distance = hist(
            "hamming_distance",
            "Distribution of verify hamming distances (mismatched slots).",
            0.0,
            64.0,
            16,
        );
        let resync_depth = hist(
            "resync_depth",
            "Distribution of resync ladder depths (attempts per recovery).",
            0.0,
            8.0,
            8,
        );
        let audit_latency_ticks = hist(
            "audit_latency_ticks",
            "Distribution of quarantine audit latencies in ticks.",
            0.0,
            64.0,
            16,
        );
        let round_elapsed_ms = hist(
            "round_elapsed_ms",
            "Distribution of round scanning times in milliseconds.",
            0.0,
            1000.0,
            20,
        );

        Obs {
            enabled,
            span_on: enabled && spans,
            reg,
            recorder: RefCell::new(FlightRecorder::with_capacity(ring_capacity)),
            spans: RefCell::new(SpanRecorder::new(enabled && spans)),
            dump: RefCell::new(None),
            m: StandardMetrics {
                rounds_total,
                rounds_trp,
                rounds_utrp,
                slots_total,
                slots_occupied,
                reseeds_total,
                probes_total,
                probes_filtered,
                verify_intact,
                verify_alarm,
                verify_desynced,
                resync_attempts,
                resync_successes,
                escalations,
                quarantine_events,
                audits_total,
                soak_ticks,
                soak_violations,
                events_dropped,
                quarantine_occupancy,
                last_frame_size,
                frame_size,
                hamming_distance,
                resync_depth,
                audit_latency_ticks,
                round_elapsed_ms,
            },
        }
    }

    /// Whether recording is active. Instrumented code may branch on
    /// this once to skip whole blocks of aggregate computation.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, v: u64) {
        if self.enabled {
            let cell = &self.reg.counters[id.0];
            cell.set(cell.get().wrapping_add(v));
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Reads a counter's current value.
    #[must_use]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.reg.counters[id.0].get()
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: u64) {
        if self.enabled {
            self.reg.gauges[id.0].set(v);
        }
    }

    /// Reads a gauge's current value.
    #[must_use]
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.reg.gauges[id.0].get()
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, id: HistogramId, v: f64) {
        if self.enabled {
            self.reg.histograms[id.0].borrow_mut().record(v);
        }
    }

    /// Clones a histogram's current state.
    #[must_use]
    pub fn histogram(&self, id: HistogramId) -> Histogram {
        self.reg.histograms[id.0].borrow().clone()
    }

    /// Emits an event into the flight ring.
    #[inline]
    pub fn emit(&self, event: ObsEvent) {
        if self.enabled {
            self.recorder.borrow_mut().push(event);
        }
    }

    /// Serializes the flight ring's retained window as JSONL.
    #[must_use]
    pub fn flight_jsonl(&self) -> String {
        self.recorder.borrow().to_jsonl()
    }

    /// Events dropped by the flight ring so far.
    #[must_use]
    pub fn flight_dropped(&self) -> u64 {
        self.recorder.borrow().dropped()
    }

    /// Whether span tracing is active — instrumented loops may hoist
    /// this single branch out of per-announcement work.
    #[inline]
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.span_on
    }

    /// Opens a span of `kind` (see [`SpanRecorder::open`]).
    #[inline]
    pub fn span_open(&self, kind: SpanKind) {
        if self.span_on {
            self.spans.borrow_mut().open(kind);
        }
    }

    /// Closes the innermost open span.
    #[inline]
    pub fn span_close(&self) {
        if self.span_on {
            self.spans.borrow_mut().close();
        }
    }

    /// Closes every open span — the driver finish hook.
    pub fn span_close_all(&self) {
        if self.span_on {
            self.spans.borrow_mut().close_all();
        }
    }

    /// Charges `slots`/`probes` of deterministic cost to `phase` on
    /// the innermost open span and the whole-run rollup.
    #[inline]
    pub fn span_phase(&self, phase: Phase, slots: u64, probes: u64) {
        if self.span_on {
            self.spans.borrow_mut().phase(phase, slots, probes);
        }
    }

    /// Injects a wall clock into the span recorder. I/O-shell only:
    /// decorated span artifacts are not byte-stable (see
    /// [`SpanRecorder::set_clock`]).
    pub fn set_span_clock(&self, clock: Rc<dyn Clock>) {
        self.spans.borrow_mut().set_clock(clock);
    }

    /// The exact per-phase cost rollup (all-zero when spans are off).
    #[must_use]
    pub fn span_rollup(&self) -> SpanRollup {
        self.spans.borrow().rollup()
    }

    /// Serializes the span tree as JSONL (see
    /// [`SpanRecorder::to_jsonl`]). Byte-deterministic unless a wall
    /// clock was injected.
    #[must_use]
    pub fn spans_jsonl(&self) -> String {
        self.spans.borrow().to_jsonl()
    }

    /// Captures a flight-recorder dump if none has been captured yet.
    /// The *first* failure wins: later triggers in the same run keep
    /// the postmortem closest to the original fault. No-op when
    /// disabled.
    pub fn capture_dump(&self, reason: &str) {
        if !self.enabled {
            return;
        }
        let mut slot = self.dump.borrow_mut();
        if slot.is_none() {
            *slot = Some(FlightDump {
                reason: reason.to_owned(),
                jsonl: self.recorder.borrow().to_jsonl(),
            });
        }
    }

    /// The captured dump, if any failure trigger fired.
    #[must_use]
    pub fn dump(&self) -> Option<FlightDump> {
        self.dump.borrow().clone()
    }

    /// Walks every counter in registration order as
    /// `(name, help, value)` — the exposition surface
    /// [`crate::export::to_prometheus_text`] renders.
    pub fn counters_iter(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.reg
            .counter_names
            .iter()
            .zip(&self.reg.counter_help)
            .zip(&self.reg.counters)
            .map(|((&name, &help), cell)| (name, help, cell.get()))
    }

    /// Walks every gauge in registration order as `(name, help, value)`.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.reg
            .gauge_names
            .iter()
            .zip(&self.reg.gauge_help)
            .zip(&self.reg.gauges)
            .map(|((&name, &help), cell)| (name, help, cell.get()))
    }

    /// Walks every histogram in registration order as
    /// `(name, help, state)`. The state is cloned: histograms are tiny
    /// (tens of bins) and the caller gets a consistent snapshot.
    pub fn histograms_iter(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, Histogram)> + '_ {
        self.reg
            .histogram_names
            .iter()
            .zip(&self.reg.histogram_help)
            .zip(&self.reg.histograms)
            .map(|((&name, &help), h)| (name, help, h.borrow().clone()))
    }

    /// Renders every metric, in registration order, as a
    /// deterministic JSON document with an embedded FNV-1a digest of
    /// the body lines. Byte-identical across runs with identical
    /// recordings; the digest is what CI pins in its golden file.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push("{".into());
        lines.push("  \"schema\": \"tagwatch-obs-metrics-v1\",".into());

        lines.push("  \"counters\": {".into());
        let n = self.reg.counters.len();
        for (i, (name, cell)) in self
            .reg
            .counter_names
            .iter()
            .zip(&self.reg.counters)
            .enumerate()
        {
            let comma = if i + 1 < n { "," } else { "" };
            lines.push(format!(
                "    \"{}\": {}{comma}",
                json_escape(name),
                cell.get()
            ));
        }
        lines.push("  },".into());

        lines.push("  \"gauges\": {".into());
        let n = self.reg.gauges.len();
        for (i, (name, cell)) in self
            .reg
            .gauge_names
            .iter()
            .zip(&self.reg.gauges)
            .enumerate()
        {
            let comma = if i + 1 < n { "," } else { "" };
            lines.push(format!(
                "    \"{}\": {}{comma}",
                json_escape(name),
                cell.get()
            ));
        }
        lines.push("  },".into());

        lines.push("  \"histograms\": {".into());
        let n = self.reg.histograms.len();
        for (i, (name, h)) in self
            .reg
            .histogram_names
            .iter()
            .zip(&self.reg.histograms)
            .enumerate()
        {
            let comma = if i + 1 < n { "," } else { "" };
            let h = h.borrow();
            let (lo, hi) = h.bounds();
            let mut line = format!(
                "    \"{}\": {{\"lo\": {}, \"hi\": {}, \"bins\": [",
                json_escape(name),
                crate::export::json_f64(lo),
                crate::export::json_f64(hi),
            );
            for (j, b) in h.bins().iter().enumerate() {
                if j > 0 {
                    line.push_str(", ");
                }
                let _ = write!(line, "{b}");
            }
            let quantile = |q| {
                h.percentile(q)
                    .map_or_else(|| "null".into(), crate::export::json_f64)
            };
            let _ = write!(
                line,
                "], \"underflow\": {}, \"overflow\": {}, \"count\": {}, \"sum\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}{comma}",
                h.underflow(),
                h.overflow(),
                h.count(),
                json_f64(h.sum()),
                quantile(0.50),
                quantile(0.90),
                quantile(0.99),
            );
            lines.push(line);
        }
        lines.push("  },".into());

        lines.push(format!(
            "  \"flight\": {{\"recorded\": {}, \"retained\": {}, \"dropped\": {}, \"dump\": {}}},",
            self.recorder.borrow().total_recorded(),
            self.recorder.borrow().len(),
            self.recorder.borrow().dropped(),
            match self.dump.borrow().as_ref() {
                Some(d) => format!("\"{}\"", json_escape(&d.reason)),
                None => "null".into(),
            },
        ));

        let digest = fnv1a_lines(&lines);
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        let _ = writeln!(out, "  \"digest\": \"fnv64:{digest:016x}\"");
        out.push_str("}\n");
        out
    }

    /// The FNV-1a digest embedded by [`Obs::snapshot_json`], as a
    /// value — for asserting against a golden fingerprint without
    /// string surgery.
    #[must_use]
    pub fn snapshot_digest(&self) -> u64 {
        let json = self.snapshot_json();
        // Re-fold the body lines (everything before the digest line).
        let body: Vec<&str> = json
            .lines()
            .take_while(|l| !l.trim_start().starts_with("\"digest\""))
            .collect();
        fnv1a_lines(body)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ObsEvent, VerdictKind};

    #[test]
    fn counters_gauges_histograms_record() {
        let obs = Obs::new();
        obs.inc(obs.m.rounds_total);
        obs.add(obs.m.slots_total, 64);
        obs.set_gauge(obs.m.quarantine_occupancy, 3);
        obs.observe(obs.m.frame_size, 64.0);
        assert_eq!(obs.counter(obs.m.rounds_total), 1);
        assert_eq!(obs.counter(obs.m.slots_total), 64);
        assert_eq!(obs.gauge(obs.m.quarantine_occupancy), 3);
        assert_eq!(obs.histogram(obs.m.frame_size).count(), 1);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        obs.inc(obs.m.rounds_total);
        obs.set_gauge(obs.m.quarantine_occupancy, 9);
        obs.observe(obs.m.frame_size, 64.0);
        obs.emit(ObsEvent::TickCompleted {
            tick: 0,
            verdict: VerdictKind::Intact,
        });
        obs.capture_dump("whatever");
        assert!(!obs.enabled());
        assert_eq!(obs.counter(obs.m.rounds_total), 0);
        assert_eq!(obs.gauge(obs.m.quarantine_occupancy), 0);
        assert_eq!(obs.histogram(obs.m.frame_size).count(), 0);
        assert_eq!(obs.flight_jsonl(), "");
        assert!(obs.dump().is_none());
    }

    #[test]
    fn first_dump_wins() {
        let obs = Obs::new();
        obs.emit(ObsEvent::TickCompleted {
            tick: 1,
            verdict: VerdictKind::Intact,
        });
        obs.capture_dump("first");
        obs.emit(ObsEvent::TickCompleted {
            tick: 2,
            verdict: VerdictKind::Intact,
        });
        obs.capture_dump("second");
        let dump = obs.dump().unwrap();
        assert_eq!(dump.reason, "first");
        assert_eq!(dump.jsonl.lines().count(), 1, "pre-second-tick window");
    }

    #[test]
    fn snapshot_is_deterministic_and_digest_matches() {
        let build = || {
            let obs = Obs::new();
            obs.inc(obs.m.rounds_total);
            obs.observe(obs.m.hamming_distance, 3.0);
            obs.snapshot_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);

        let obs = Obs::new();
        obs.inc(obs.m.rounds_total);
        obs.observe(obs.m.hamming_distance, 3.0);
        let embedded = format!("fnv64:{:016x}", obs.snapshot_digest());
        assert!(a.contains(&embedded), "digest line must match the value");
    }

    #[test]
    fn snapshot_digest_changes_with_data() {
        let a = Obs::new();
        let b = Obs::new();
        b.inc(b.m.rounds_total);
        assert_ne!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn flight_dropped_counts_ring_evictions() {
        // Postmortems need to know how much of the window is missing:
        // `flight_dropped` is the eviction count, not the retained size.
        let obs = Obs::with_ring_capacity(2);
        assert_eq!(obs.flight_dropped(), 0);
        for tick in 0..5 {
            obs.emit(ObsEvent::TickCompleted {
                tick,
                verdict: VerdictKind::Intact,
            });
        }
        assert_eq!(obs.flight_dropped(), 3);
        // The retained window is the newest two events.
        let jsonl = obs.flight_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"tick\":4"));
    }
}
