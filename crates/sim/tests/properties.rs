//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use tagwatch_sim::epc::Sgtin96;
use tagwatch_sim::event::EventQueue;
use tagwatch_sim::hash::mix64;
use tagwatch_sim::tag::{SlotMode, Tag};
use tagwatch_sim::time::{SimDuration, SimTime};
use tagwatch_sim::{slot_for, Counter, FrameSize, Nonce, SeedSequence, TagId, TagPopulation};

proptest! {
    // ---------------- time ----------------

    #[test]
    fn time_addition_is_associative(a in 0u64..1u64<<40, b in 0u64..1u64<<20, c in 0u64..1u64<<20) {
        let t = SimTime::from_micros(a);
        let d1 = SimDuration::from_micros(b);
        let d2 = SimDuration::from_micros(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
    }

    #[test]
    fn duration_sub_add_round_trip(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let d = SimDuration::from_micros(hi) - SimDuration::from_micros(lo);
        prop_assert_eq!(d + SimDuration::from_micros(lo), SimDuration::from_micros(hi));
    }

    // ---------------- identity ----------------

    #[test]
    fn tag_id_display_parse_round_trip(raw in any::<u128>()) {
        let id = TagId::new(raw);
        let parsed: TagId = id.to_string().parse().unwrap();
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn frame_size_validation_is_total(raw in any::<u64>()) {
        match FrameSize::new(raw) {
            Ok(f) => {
                prop_assert!((1..=FrameSize::MAX).contains(&raw));
                prop_assert_eq!(f.get(), raw);
            }
            Err(_) => prop_assert!(raw == 0 || raw > FrameSize::MAX),
        }
    }

    #[test]
    fn frame_shrink_matches_arithmetic(f in 1u64..10_000, used in 0u64..12_000) {
        let frame = FrameSize::new(f).unwrap();
        match frame.shrink_by(used) {
            Some(s) => prop_assert_eq!(s.get(), f - used),
            None => prop_assert!(used >= f),
        }
    }

    // ---------------- hashing ----------------

    #[test]
    fn mix64_is_injective_on_pairs(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(mix64(a), mix64(b));
        }
    }

    #[test]
    fn slot_choice_is_pure(id in any::<u128>(), r in any::<u64>(), f in 1u64..1_000_000) {
        let f = FrameSize::new(f).unwrap();
        let s1 = slot_for(TagId::new(id), Nonce::new(r), f);
        let s2 = slot_for(TagId::new(id), Nonce::new(r), f);
        prop_assert_eq!(s1, s2);
        prop_assert!(s1 < f.get());
    }

    // ---------------- tag state machine ----------------

    #[test]
    fn tag_replies_exactly_in_its_slot(id in any::<u64>(), r in any::<u64>(), f in 1u64..256) {
        let f = FrameSize::new(f).unwrap();
        let mut tag = Tag::new(TagId::from(id));
        let slot = tag.on_frame(f, Nonce::new(r), SlotMode::Plain);
        let replies = (0..f.get())
            .filter(|&sn| {
                let mut t = tag.clone();
                t.on_slot(sn, false).is_some()
            })
            .count();
        prop_assert_eq!(replies, 1);
        prop_assert_eq!(tag.pending_slot(), Some(slot));
    }

    #[test]
    fn counted_mode_advances_counter_per_announcement(
        id in any::<u64>(),
        rounds in 1usize..20,
        f in 1u64..64,
    ) {
        let f = FrameSize::new(f).unwrap();
        let mut tag = Tag::new(TagId::from(id));
        for k in 1..=rounds {
            tag.on_frame(f, Nonce::new(k as u64), SlotMode::Counted);
            prop_assert_eq!(tag.counter(), Counter::new(k as u64));
        }
    }

    // ---------------- population ----------------

    #[test]
    fn remove_random_preserves_partition(n in 1usize..300, k in 0usize..300, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pop = TagPopulation::with_sequential_ids(n);
        let k = k.min(n);
        let removed = pop.remove_random(k, &mut rng).unwrap();
        prop_assert_eq!(removed.len(), k);
        prop_assert_eq!(pop.len(), n - k);
        for tag in &removed {
            prop_assert!(!pop.contains(tag.id()));
        }
        // Nothing invented: every removed id was an original.
        for tag in &removed {
            prop_assert!(tag.id().as_u128() >= 1 && tag.id().as_u128() <= n as u128);
        }
    }

    // ---------------- event queue ----------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..10_000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i).unwrap();
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(e.time() >= lt);
                if e.time() == lt {
                    // FIFO among equal times: seq increases.
                    prop_assert!(e.seq() as usize > lseq);
                }
            }
            last = Some((e.time(), e.seq() as usize));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    // ---------------- seeds ----------------

    #[test]
    fn seed_children_never_collide_with_parent_stream(root in any::<u64>(), i in 0u64..1_000, j in 0u64..1_000) {
        let s = SeedSequence::new(root);
        if i != j {
            prop_assert_ne!(s.seed_for(i), s.seed_for(j));
        }
    }

    // ---------------- sgtin ----------------

    #[test]
    fn sgtin_round_trips(
        filter in 0u8..8,
        partition in 0u8..7,
        cp in any::<u64>(),
        ir in any::<u64>(),
        serial in 0u64..(1u64<<38),
    ) {
        // Mask fields into range for the chosen partition.
        let widths = [(40u32, 4u32), (37, 7), (34, 10), (30, 14), (27, 17), (24, 20), (20, 24)];
        let (cpb, irb) = widths[partition as usize];
        let cp = cp & ((1u64 << cpb) - 1);
        let ir = ir & ((1u64 << irb) - 1);
        let s = Sgtin96::new(filter, partition, cp, ir, serial).unwrap();
        prop_assert_eq!(Sgtin96::decode(s.encode()).unwrap(), s);
    }
}
