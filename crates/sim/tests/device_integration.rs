//! Device-level integration: readers, tags, channel and trace working
//! together, with timing invariants under both timing models.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_sim::aloha::FramePlan;
use tagwatch_sim::prelude::*;
use tagwatch_sim::trace::TraceEvent;

fn plan(f: u64, r: u64) -> FramePlan {
    FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r))
}

#[test]
fn a_full_inventory_day_on_one_reader() {
    // Morning presence check, midday collection, evening presence check
    // — one reader accumulating clock and slots across heterogeneous
    // rounds.
    let mut reader = Reader::new(ReaderConfig {
        timing: TimingModel::gen2(),
        trace_enabled: true,
        seed: 0,
    });
    let mut floor = TagPopulation::with_sequential_ids(120);
    let channel = Channel::ideal();

    let morning = reader
        .run_presence_frame(&plan(256, 1), &floor, &channel)
        .unwrap();
    assert!(morning.stats().occupancy() > 0.0);

    let midday = reader
        .run_collection_frame(&plan(512, 2), &mut floor, &channel)
        .unwrap();
    assert!(!midday.collected.is_empty());

    floor.reset_inventory();
    let evening = reader
        .run_presence_frame(&plan(256, 3), &floor, &channel)
        .unwrap();
    assert_eq!(evening.occupancy_bits().len(), 256);

    assert_eq!(reader.slots_used(), 256 + 512 + 256);
    // Clock equals the sum of the three executions' durations.
    let expected = morning.duration() + midday.execution.duration() + evening.duration();
    assert_eq!(reader.clock().saturating_since(SimTime::ZERO), expected);
    // Trace saw three announcements and three completions.
    let announces = reader
        .trace()
        .filter(|e| matches!(e, TraceEvent::FrameAnnounced { .. }))
        .count();
    let completions = reader
        .trace()
        .filter(|e| matches!(e, TraceEvent::RoundCompleted { .. }))
        .count();
    assert_eq!(announces, 3);
    assert_eq!(completions, 3);
}

#[test]
fn uniform_timing_equates_slots_and_micros() {
    // The paper's cost model: duration == slot count exactly.
    let mut reader = Reader::new(ReaderConfig::default());
    let floor = TagPopulation::with_sequential_ids(50);
    let exec = reader
        .run_presence_frame(&plan(128, 9), &floor, &Channel::ideal())
        .unwrap();
    assert_eq!(exec.duration().as_micros(), 128);
}

#[test]
fn gen2_duration_decomposes_by_outcome_kind() {
    let timing = TimingModel::gen2();
    let mut reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let floor = TagPopulation::with_sequential_ids(300);
    let exec = reader
        .run_presence_frame(&plan(200, 4), &floor, &Channel::ideal())
        .unwrap();
    let stats = exec.stats();
    let expected = timing.frame_announce
        + timing.slot_broadcast * 200
        + timing.empty_slot * stats.empty
        + timing.presence_reply * stats.singles
        + timing.collision_slot * stats.collisions;
    assert_eq!(exec.duration(), expected);
}

#[test]
fn multiround_collection_drains_large_population() {
    // Collection rounds with shrinking frames until everyone is read —
    // the substrate loop underlying collect-all, driven manually.
    let mut reader = Reader::new(ReaderConfig::default());
    let mut floor = TagPopulation::with_sequential_ids(1_000);
    let channel = Channel::ideal();
    let mut collected = 0usize;
    let mut rng = StdRng::seed_from_u64(5);
    let mut round = 0u64;
    while collected < 1_000 {
        use rand::Rng;
        let remaining = (1_000 - collected).max(1) as u64;
        let p = FramePlan::new(FrameSize::new(remaining).unwrap(), Nonce::new(rng.gen()));
        let out = reader
            .run_collection_frame(&p, &mut floor, &channel)
            .unwrap();
        collected += out.collected.len();
        round += 1;
        assert!(round < 100, "failed to converge");
    }
    assert_eq!(collected, 1_000);
}

#[test]
fn capture_heavy_channel_speeds_up_collection() {
    let run_rounds = |capture: f64| -> u32 {
        let channel = Channel::with_config(ChannelConfig {
            capture_prob: capture,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut reader = Reader::new(ReaderConfig {
            seed: 11,
            ..ReaderConfig::default()
        });
        let mut floor = TagPopulation::with_sequential_ids(400);
        let mut rng = StdRng::seed_from_u64(11);
        let mut collected = 0usize;
        let mut rounds = 0u32;
        while collected < 400 && rounds < 200 {
            use rand::Rng;
            let remaining = (400 - collected).max(1) as u64;
            let p = FramePlan::new(FrameSize::new(remaining).unwrap(), Nonce::new(rng.gen()));
            collected += reader
                .run_collection_frame(&p, &mut floor, &channel)
                .unwrap()
                .collected
                .len();
            rounds += 1;
        }
        assert_eq!(collected, 400);
        rounds
    };
    assert!(run_rounds(0.95) <= run_rounds(0.0));
}

#[test]
fn trace_slot_indices_cover_the_frame_in_order() {
    let mut reader = Reader::new(ReaderConfig {
        trace_enabled: true,
        ..ReaderConfig::default()
    });
    let floor = TagPopulation::with_sequential_ids(10);
    reader
        .run_presence_frame(&plan(32, 2), &floor, &Channel::ideal())
        .unwrap();
    let slots: Vec<u64> = reader
        .trace()
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::SlotResolved { slot, .. } => Some(*slot),
            _ => None,
        })
        .collect();
    assert_eq!(slots, (0..32).collect::<Vec<_>>());
}

#[test]
fn seed_sequence_drives_reproducible_multi_reader_fleets() {
    // Two "sites" running the same experiment from the same root seed
    // must agree bit-for-bit even with noisy channels.
    let run_site = || {
        let seeds = SeedSequence::new(314);
        let channel = Channel::with_config(ChannelConfig {
            reply_loss_prob: 0.1,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut occupancies = Vec::new();
        for trial in 0..5u64 {
            let mut reader = Reader::new(ReaderConfig {
                seed: seeds.seed_for(trial),
                ..ReaderConfig::default()
            });
            let floor = TagPopulation::with_sequential_ids(64);
            let exec = reader
                .run_presence_frame(&plan(128, trial), &floor, &channel)
                .unwrap();
            occupancies.push(exec.occupancy_bits());
        }
        occupancies
    };
    assert_eq!(run_site(), run_site());
}

#[test]
fn detuned_then_restored_tag_reappears() {
    let mut reader = Reader::new(ReaderConfig::default());
    let mut floor = TagPopulation::with_sequential_ids(1);
    let id = floor.ids()[0];
    let channel = Channel::ideal();

    floor.get_mut(id).unwrap().set_detuned(true);
    let silent = reader
        .run_presence_frame(&plan(8, 1), &floor, &channel)
        .unwrap();
    assert_eq!(silent.stats().singles, 0);

    floor.get_mut(id).unwrap().set_detuned(false);
    let audible = reader
        .run_presence_frame(&plan(8, 1), &floor, &channel)
        .unwrap();
    assert_eq!(audible.stats().singles, 1);
}
