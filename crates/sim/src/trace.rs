//! Structured execution traces.
//!
//! A [`Trace`] records what happened on the air, event by event, so
//! tests can assert protocol behaviour ("the reader re-seeded exactly
//! after each reply slot") and failures can be diagnosed without a
//! debugger. Tracing is opt-in per reader and cheap when disabled.

use std::fmt;

use crate::ident::{FrameSize, Nonce};
use crate::radio::SlotOutcome;
use crate::time::SimTime;

/// One observable air-interface event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The reader announced a frame `(f, r)`.
    FrameAnnounced {
        /// Announced frame size.
        f: FrameSize,
        /// Announced nonce.
        r: Nonce,
    },
    /// The reader broadcast a slot number and observed an outcome.
    SlotResolved {
        /// Zero-based slot number within the *original* frame.
        slot: u64,
        /// What the reader observed.
        outcome: SlotOutcome,
    },
    /// A UTRP re-seed: remaining tags were re-announced a shrunken
    /// frame with the next nonce.
    Reseeded {
        /// The shrunken frame size.
        f: FrameSize,
        /// The nonce used for the re-seed.
        r: Nonce,
    },
    /// An inventory round completed.
    RoundCompleted {
        /// Total slots consumed across all frames of the round.
        slots_used: u64,
    },
}

/// A timestamped sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<(SimTime, TraceEvent)>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace: [`Trace::record`] becomes a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event at the given simulated time (no-op if disabled).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.enabled {
            self.entries.push((at, event));
        }
    }

    /// All recorded entries in order.
    #[must_use]
    pub fn entries(&self) -> &[(SimTime, TraceEvent)] {
        &self.entries
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over events matching a predicate.
    pub fn filter<'a, P>(&'a self, mut pred: P) -> impl Iterator<Item = &'a (SimTime, TraceEvent)>
    where
        P: FnMut(&TraceEvent) -> bool + 'a,
    {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }

    /// Count of re-seed events — handy in UTRP assertions.
    #[must_use]
    pub fn reseed_count(&self) -> usize {
        self.filter(|e| matches!(e, TraceEvent::Reseeded { .. }))
            .count()
    }

    /// Count of occupied slots observed.
    #[must_use]
    pub fn occupied_slots(&self) -> usize {
        self.filter(
            |e| matches!(e, TraceEvent::SlotResolved { outcome, .. } if outcome.is_occupied()),
        )
        .count()
    }

    /// Clears all recorded entries, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(empty trace)");
        }
        for (t, e) in &self.entries {
            writeln!(f, "[{t}] {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce() -> TraceEvent {
        TraceEvent::FrameAnnounced {
            f: FrameSize::new(8).unwrap(),
            r: Nonce::new(1),
        }
    }

    fn reply_slot(slot: u64) -> TraceEvent {
        TraceEvent::SlotResolved {
            slot,
            outcome: SlotOutcome::Single(crate::tag::TagReply::Presence { bits: 0 }),
        }
    }

    fn empty_slot(slot: u64) -> TraceEvent {
        TraceEvent::SlotResolved {
            slot,
            outcome: SlotOutcome::Empty,
        }
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new();
        tr.record(SimTime::from_micros(1), announce());
        tr.record(SimTime::from_micros(2), empty_slot(0));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.entries()[0].0, SimTime::from_micros(1));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::ZERO, announce());
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn counts_reseeds_and_occupied_slots() {
        let mut tr = Trace::new();
        tr.record(SimTime::ZERO, announce());
        tr.record(SimTime::from_micros(1), reply_slot(0));
        tr.record(
            SimTime::from_micros(2),
            TraceEvent::Reseeded {
                f: FrameSize::new(7).unwrap(),
                r: Nonce::new(2),
            },
        );
        tr.record(SimTime::from_micros(3), empty_slot(1));
        assert_eq!(tr.reseed_count(), 1);
        assert_eq!(tr.occupied_slots(), 1);
    }

    #[test]
    fn filter_selects_matching_events() {
        let mut tr = Trace::new();
        for i in 0..5 {
            tr.record(SimTime::from_micros(i), empty_slot(i));
        }
        let later: Vec<_> = tr
            .filter(|e| matches!(e, TraceEvent::SlotResolved { slot, .. } if *slot >= 3))
            .collect();
        assert_eq!(later.len(), 2);
    }

    #[test]
    fn clear_resets_entries_but_not_enabled() {
        let mut tr = Trace::new();
        tr.record(SimTime::ZERO, announce());
        tr.clear();
        assert!(tr.is_empty());
        assert!(tr.is_enabled());
    }

    #[test]
    fn display_renders_events_or_placeholder() {
        let mut tr = Trace::new();
        assert_eq!(tr.to_string(), "(empty trace)");
        tr.record(SimTime::from_micros(9), announce());
        let text = tr.to_string();
        assert!(text.contains("[9us]"));
        assert!(text.contains("FrameAnnounced"));
    }
}
