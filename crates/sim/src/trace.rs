//! Structured execution traces.
//!
//! A [`Trace`] records what happened on the air, event by event, so
//! tests can assert protocol behaviour ("the reader re-seeded exactly
//! after each reply slot") and failures can be diagnosed without a
//! debugger. Tracing is opt-in per reader and cheap when disabled.
//!
//! Traces are **bounded**: the buffer holds at most
//! [`Trace::capacity`] events and drops the oldest beyond that,
//! counting what it discarded — a week-long traced soak stays at a
//! fixed memory footprint instead of growing without limit. The trace
//! is one [`EventSink`] among others (the obs flight recorder is
//! another); drivers that fan events out can be generic over the
//! trait.

use std::collections::VecDeque;
use std::fmt;

use tagwatch_obs::EventSink;

use crate::ident::{FrameSize, Nonce};
use crate::radio::SlotOutcome;
use crate::time::SimTime;

/// Default bound on retained events. At ~32 bytes per entry this caps
/// a trace at ~2 MiB while holding several full rounds of slot-level
/// detail.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One observable air-interface event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The reader announced a frame `(f, r)`.
    FrameAnnounced {
        /// Announced frame size.
        f: FrameSize,
        /// Announced nonce.
        r: Nonce,
    },
    /// The reader broadcast a slot number and observed an outcome.
    SlotResolved {
        /// Zero-based slot number within the *original* frame.
        slot: u64,
        /// What the reader observed.
        outcome: SlotOutcome,
    },
    /// A UTRP re-seed: remaining tags were re-announced a shrunken
    /// frame with the next nonce.
    Reseeded {
        /// The shrunken frame size.
        f: FrameSize,
        /// The nonce used for the re-seed.
        r: Nonce,
    },
    /// An inventory round completed.
    RoundCompleted {
        /// Total slots consumed across all frames of the round.
        slots_used: u64,
    },
}

/// A timestamped, bounded sequence of [`TraceEvent`]s with drop-oldest
/// overflow semantics.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace bounded at
    /// [`DEFAULT_TRACE_CAPACITY`] events.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an enabled, empty trace holding at most `capacity`
    /// events before dropping the oldest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace needs a positive capacity");
        Trace {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Creates a disabled trace: [`Trace::record`] becomes a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
            enabled: false,
        }
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event at the given simulated time (no-op if
    /// disabled). At capacity, the oldest retained event is dropped
    /// and counted.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.enabled {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
                self.dropped += 1;
            }
            self.entries.push_back((at, event));
        }
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.entries.iter()
    }

    /// The maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded to respect the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over events matching a predicate.
    pub fn filter<'a, P>(&'a self, mut pred: P) -> impl Iterator<Item = &'a (SimTime, TraceEvent)>
    where
        P: FnMut(&TraceEvent) -> bool + 'a,
    {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }

    /// Count of re-seed events — handy in UTRP assertions.
    #[must_use]
    pub fn reseed_count(&self) -> usize {
        self.filter(|e| matches!(e, TraceEvent::Reseeded { .. }))
            .count()
    }

    /// Count of occupied slots observed.
    #[must_use]
    pub fn occupied_slots(&self) -> usize {
        self.filter(
            |e| matches!(e, TraceEvent::SlotResolved { outcome, .. } if outcome.is_occupied()),
        )
        .count()
    }

    /// Clears all retained entries and the dropped counter, keeping
    /// the enabled flag and capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink<(SimTime, TraceEvent)> for Trace {
    fn accept(&mut self, (at, event): (SimTime, TraceEvent)) {
        self.record(at, event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(empty trace)");
        }
        if self.dropped > 0 {
            writeln!(f, "({} older events dropped)", self.dropped)?;
        }
        for (t, e) in &self.entries {
            writeln!(f, "[{t}] {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce() -> TraceEvent {
        TraceEvent::FrameAnnounced {
            f: FrameSize::new(8).unwrap(),
            r: Nonce::new(1),
        }
    }

    fn reply_slot(slot: u64) -> TraceEvent {
        TraceEvent::SlotResolved {
            slot,
            outcome: SlotOutcome::Single(crate::tag::TagReply::Presence { bits: 0 }),
        }
    }

    fn empty_slot(slot: u64) -> TraceEvent {
        TraceEvent::SlotResolved {
            slot,
            outcome: SlotOutcome::Empty,
        }
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new();
        tr.record(SimTime::from_micros(1), announce());
        tr.record(SimTime::from_micros(2), empty_slot(0));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.iter().next().unwrap().0, SimTime::from_micros(1));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::ZERO, announce());
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn capacity_drops_oldest_and_counts() {
        let mut tr = Trace::with_capacity(3);
        for i in 0..5 {
            tr.record(SimTime::from_micros(i), empty_slot(i));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let slots: Vec<u64> = tr
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::SlotResolved { slot, .. } => *slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, [2, 3, 4], "oldest events were dropped");
    }

    #[test]
    fn event_sink_feeds_record() {
        use tagwatch_obs::EventSink;
        let mut tr = Trace::with_capacity(2);
        tr.accept((SimTime::from_micros(1), announce()));
        tr.accept((SimTime::from_micros(2), empty_slot(0)));
        tr.accept((SimTime::from_micros(3), empty_slot(1)));
        assert_eq!(tr.len(), 2);
        assert_eq!(EventSink::<(SimTime, TraceEvent)>::dropped(&tr), 1);
    }

    #[test]
    fn counts_reseeds_and_occupied_slots() {
        let mut tr = Trace::new();
        tr.record(SimTime::ZERO, announce());
        tr.record(SimTime::from_micros(1), reply_slot(0));
        tr.record(
            SimTime::from_micros(2),
            TraceEvent::Reseeded {
                f: FrameSize::new(7).unwrap(),
                r: Nonce::new(2),
            },
        );
        tr.record(SimTime::from_micros(3), empty_slot(1));
        assert_eq!(tr.reseed_count(), 1);
        assert_eq!(tr.occupied_slots(), 1);
    }

    #[test]
    fn filter_selects_matching_events() {
        let mut tr = Trace::new();
        for i in 0..5 {
            tr.record(SimTime::from_micros(i), empty_slot(i));
        }
        let later: Vec<_> = tr
            .filter(|e| matches!(e, TraceEvent::SlotResolved { slot, .. } if *slot >= 3))
            .collect();
        assert_eq!(later.len(), 2);
    }

    #[test]
    fn clear_resets_entries_but_not_enabled() {
        let mut tr = Trace::with_capacity(1);
        tr.record(SimTime::ZERO, announce());
        tr.record(SimTime::ZERO, announce());
        tr.clear();
        assert!(tr.is_empty());
        assert!(tr.is_enabled());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn display_renders_events_or_placeholder() {
        let mut tr = Trace::new();
        assert_eq!(tr.to_string(), "(empty trace)");
        tr.record(SimTime::from_micros(9), announce());
        let text = tr.to_string();
        assert!(text.contains("[9us]"));
        assert!(text.contains("FrameAnnounced"));
    }
}
