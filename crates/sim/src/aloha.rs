//! Framed-slotted-ALOHA round descriptors and executions.
//!
//! A round is announced as a [`FramePlan`] `(f, r)`; executing it yields
//! a [`FrameExecution`] holding the per-slot [`SlotOutcome`]s, summary
//! [`FrameStats`], and the simulated air time. The module also provides
//! the *server-side* bulk predictors ([`predicted_slots`],
//! [`predicted_occupancy`]) that compute, from IDs alone, exactly what an
//! ideal-channel execution would observe — the heart of the paper's
//! verification step, and the fast path for large Monte-Carlo sweeps.

use std::fmt;

use crate::hash::slot_for;
use crate::ident::{FrameSize, Nonce, TagId};
use crate::radio::SlotOutcome;
use crate::time::SimDuration;

/// A zero-based slot position within a frame.
///
/// A deliberate newtype so slot positions cannot be confused with frame
/// sizes or tag counts in protocol signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotIndex(u64);

impl SlotIndex {
    /// Creates a slot index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        SlotIndex(index)
    }

    /// The raw zero-based index.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The index as `usize` for vector addressing.
    #[must_use]
    pub fn as_usize(self) -> usize {
        // lint:allow(s2-panic): slot indices are residues mod a frame size, and frames are capped at FrameSize::MAX = 2^24, which fits usize on every supported platform
        usize::try_from(self.0).expect("slot index fits usize")
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl From<u64> for SlotIndex {
    fn from(index: u64) -> Self {
        SlotIndex(index)
    }
}

/// An announced frame: size `f` plus nonce `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FramePlan {
    f: FrameSize,
    r: Nonce,
}

impl FramePlan {
    /// Creates a frame plan.
    #[must_use]
    pub const fn new(f: FrameSize, r: Nonce) -> Self {
        FramePlan { f, r }
    }

    /// The frame size.
    #[must_use]
    pub const fn frame_size(self) -> FrameSize {
        self.f
    }

    /// The nonce.
    #[must_use]
    pub const fn nonce(self) -> Nonce {
        self.r
    }
}

impl fmt::Display for FramePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame({}, {})", self.f, self.r)
    }
}

/// Slot-outcome tallies for an executed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameStats {
    /// Slots with no reply.
    pub empty: u64,
    /// Slots with exactly one decoded reply.
    pub singles: u64,
    /// Slots with an undecodable collision.
    pub collisions: u64,
}

impl FrameStats {
    /// Tallies the outcomes of a frame.
    #[must_use]
    pub fn from_outcomes(outcomes: &[SlotOutcome]) -> Self {
        let mut stats = FrameStats::default();
        for o in outcomes {
            match o {
                SlotOutcome::Empty => stats.empty += 1,
                SlotOutcome::Single(_) => stats.singles += 1,
                SlotOutcome::Collision { .. } => stats.collisions += 1,
            }
        }
        stats
    }

    /// Total slots tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.empty + self.singles + self.collisions
    }

    /// Fraction of slots that carried any energy, in `[0, 1]`.
    /// Returns 0 for an empty tally.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.singles + self.collisions) as f64 / total as f64
        }
    }
}

/// The result of executing one frame on the air.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameExecution {
    plan: FramePlan,
    outcomes: Vec<SlotOutcome>,
    duration: SimDuration,
}

impl FrameExecution {
    /// Packages an execution. `outcomes.len()` must equal the planned
    /// frame size; protocol code builds these through
    /// [`crate::reader::Reader`], which guarantees it.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count disagrees with the plan.
    #[must_use]
    pub fn new(plan: FramePlan, outcomes: Vec<SlotOutcome>, duration: SimDuration) -> Self {
        assert_eq!(
            outcomes.len() as u64,
            plan.frame_size().get(),
            "outcome count must match frame size"
        );
        FrameExecution {
            plan,
            outcomes,
            duration,
        }
    }

    /// The plan this execution ran.
    #[must_use]
    pub fn plan(&self) -> FramePlan {
        self.plan
    }

    /// Per-slot outcomes, index = slot number.
    #[must_use]
    pub fn outcomes(&self) -> &[SlotOutcome] {
        &self.outcomes
    }

    /// Summary tallies.
    #[must_use]
    pub fn stats(&self) -> FrameStats {
        FrameStats::from_outcomes(&self.outcomes)
    }

    /// Simulated air time the frame consumed.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The occupancy bitstring: `true` where the reader saw energy.
    /// This is the `bs` of the paper (Alg. 3).
    #[must_use]
    pub fn occupancy_bits(&self) -> Vec<bool> {
        self.outcomes.iter().map(|o| o.is_occupied()).collect()
    }
}

/// Server-side prediction of each tag's slot for a plain frame:
/// `sn_i = h(id_i ⊕ r) mod f` (paper §4.1 — possible precisely because
/// low-cost tags pick slots deterministically).
#[must_use]
pub fn predicted_slots(ids: &[TagId], r: Nonce, f: FrameSize) -> Vec<u64> {
    ids.iter().map(|&id| slot_for(id, r, f)).collect()
}

/// Server-side prediction of the occupancy bitstring an ideal-channel
/// execution of `(f, r)` over `ids` would produce.
#[must_use]
pub fn predicted_occupancy(ids: &[TagId], r: Nonce, f: FrameSize) -> Vec<bool> {
    let mut bits = vec![false; f.as_usize()];
    for &id in ids {
        bits[slot_for(id, r, f) as usize] = true;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::TagReply;

    fn plan(f: u64, r: u64) -> FramePlan {
        FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r))
    }

    #[test]
    fn slot_index_accessors() {
        let s = SlotIndex::new(5);
        assert_eq!(s.get(), 5);
        assert_eq!(s.as_usize(), 5);
        assert_eq!(s.to_string(), "slot 5");
        assert_eq!(SlotIndex::from(9u64), SlotIndex::new(9));
    }

    #[test]
    fn frame_plan_accessors() {
        let p = plan(16, 3);
        assert_eq!(p.frame_size().get(), 16);
        assert_eq!(p.nonce().as_u64(), 3);
        assert!(p.to_string().contains("16 slots"));
    }

    #[test]
    fn stats_tally_outcomes() {
        let outcomes = [
            SlotOutcome::Empty,
            SlotOutcome::Single(TagReply::Presence { bits: 0 }),
            SlotOutcome::Collision { transmitters: 2 },
            SlotOutcome::Empty,
        ];
        let stats = FrameStats::from_outcomes(&outcomes);
        assert_eq!(stats.empty, 2);
        assert_eq!(stats.singles, 1);
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.total(), 4);
        assert!((stats.occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_occupancy() {
        assert_eq!(FrameStats::default().occupancy(), 0.0);
    }

    #[test]
    fn execution_exposes_bitstring() {
        let outcomes = vec![
            SlotOutcome::Single(TagReply::Presence { bits: 1 }),
            SlotOutcome::Empty,
            SlotOutcome::Collision { transmitters: 3 },
        ];
        let exec = FrameExecution::new(plan(3, 0), outcomes, SimDuration::from_micros(3));
        assert_eq!(exec.occupancy_bits(), [true, false, true]);
        assert_eq!(exec.duration().as_micros(), 3);
        assert_eq!(exec.plan(), plan(3, 0));
    }

    #[test]
    #[should_panic(expected = "outcome count must match frame size")]
    fn execution_rejects_mismatched_outcomes() {
        let _ = FrameExecution::new(plan(4, 0), vec![SlotOutcome::Empty], SimDuration::ZERO);
    }

    #[test]
    fn predicted_occupancy_marks_each_tags_slot() {
        let ids: Vec<TagId> = (1..=20u64).map(TagId::from).collect();
        let f = FrameSize::new(64).unwrap();
        let r = Nonce::new(7);
        let bits = predicted_occupancy(&ids, r, f);
        assert_eq!(bits.len(), 64);
        for (&id, &slot) in ids.iter().zip(predicted_slots(&ids, r, f).iter()) {
            assert!(bits[slot as usize], "tag {id} slot unmarked");
        }
        // Occupied count never exceeds tag count.
        assert!(bits.iter().filter(|&&b| b).count() <= 20);
    }

    #[test]
    fn predicted_slots_match_hash() {
        let ids = [TagId::new(10), TagId::new(20)];
        let f = FrameSize::new(32).unwrap();
        let r = Nonce::new(1);
        let slots = predicted_slots(&ids, r, f);
        assert_eq!(slots[0], slot_for(ids[0], r, f));
        assert_eq!(slots[1], slot_for(ids[1], r, f));
    }

    #[test]
    fn predicted_occupancy_of_no_tags_is_all_false() {
        let bits = predicted_occupancy(&[], Nonce::new(0), FrameSize::new(8).unwrap());
        assert!(bits.iter().all(|&b| !b));
    }
}
