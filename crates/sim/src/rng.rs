//! Deterministic seed derivation for reproducible experiments.
//!
//! Monte-Carlo runs fan thousands of trials across threads; each trial
//! must get an *independent* RNG stream that does not depend on thread
//! scheduling. [`SeedSequence`] derives child seeds from a root seed
//! with splitmix64 — the construction SplitMix was designed for — so
//! trial `i` always sees the same randomness no matter where or when it
//! executes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::mix64;

/// A stream of independent child seeds derived from one root seed.
///
/// ```rust
/// use tagwatch_sim::SeedSequence;
///
/// let root = SeedSequence::new(42);
/// let a = root.seed_for(0);
/// let b = root.seed_for(1);
/// assert_ne!(a, b);
/// // Stable: the same (root, index) always yields the same seed.
/// assert_eq!(a, SeedSequence::new(42).seed_for(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Golden-ratio increment used by splitmix64 to decorrelate indices.
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Creates a sequence rooted at `root`.
    #[must_use]
    pub const fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed.
    #[must_use]
    pub const fn root(self) -> u64 {
        self.root
    }

    /// The `index`-th child seed.
    #[must_use]
    pub fn seed_for(self, index: u64) -> u64 {
        mix64(
            self.root
                .wrapping_add(Self::GAMMA)
                .wrapping_add(index.wrapping_mul(Self::GAMMA)),
        )
    }

    /// A ready-to-use RNG for the `index`-th trial.
    #[must_use]
    pub fn rng_for(self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(index))
    }

    /// A child sequence for a named sub-experiment, so nested fan-outs
    /// (experiment → trial → phase) stay independent.
    #[must_use]
    pub fn child(self, label: u64) -> SeedSequence {
        SeedSequence {
            root: mix64(self.root ^ mix64(label.wrapping_add(Self::GAMMA))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_stable() {
        let s = SeedSequence::new(7);
        assert_eq!(s.seed_for(123), SeedSequence::new(7).seed_for(123));
    }

    #[test]
    fn seeds_differ_across_indices() {
        let s = SeedSequence::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(s.seed_for(i)), "collision at index {i}");
        }
    }

    #[test]
    fn seeds_differ_across_roots() {
        assert_ne!(
            SeedSequence::new(1).seed_for(0),
            SeedSequence::new(2).seed_for(0)
        );
    }

    #[test]
    fn child_sequences_are_independent() {
        let s = SeedSequence::new(99);
        let a = s.child(1);
        let b = s.child(2);
        assert_ne!(a.seed_for(0), b.seed_for(0));
        assert_ne!(a.root(), s.root());
    }

    #[test]
    fn rng_for_produces_matching_streams() {
        let s = SeedSequence::new(5);
        let x: u64 = s.rng_for(3).gen();
        let y: u64 = s.rng_for(3).gen();
        assert_eq!(x, y);
        let z: u64 = s.rng_for(4).gen();
        assert_ne!(x, z);
    }

    #[test]
    fn zero_root_is_not_degenerate() {
        // mix64(0) == 0, but the gamma offsets keep a zero root usable.
        let s = SeedSequence::new(0);
        assert_ne!(s.seed_for(0), 0);
        assert_ne!(s.seed_for(0), s.seed_for(1));
    }
}
