//! Collections of tags: the physical "set of tags" `T*` of the paper.
//!
//! The problem formulation (§3) fixes a *static* set of `n` tags. The
//! adversary acts by physically removing tags; the split-set colluder
//! attack (§5.1) partitions the set into a remaining part `s1` and a
//! stolen part `s2`. [`TagPopulation`] models all of that: it owns the
//! tag devices and supports random removal, random splitting, and
//! failure injection, all through explicit RNGs for reproducibility.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::SimError;
use crate::ident::TagId;
use crate::tag::{Counter, Tag};

/// An owned collection of simulated tags with unique IDs.
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_sim::TagPopulation;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut set = TagPopulation::with_sequential_ids(100);
/// let stolen = set.remove_random(6, &mut rng)?;
/// assert_eq!(stolen.len(), 6);
/// assert_eq!(set.len(), 94);
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TagPopulation {
    tags: Vec<Tag>,
    index: BTreeMap<TagId, usize>,
}

impl TagPopulation {
    /// Creates an empty population.
    #[must_use]
    pub fn new() -> Self {
        TagPopulation::default()
    }

    /// Creates `n` tags with IDs `1..=n`.
    ///
    /// Sequential IDs exercise the hash exactly as hard as random ones
    /// (the hash is the randomizer) while keeping experiments easy to
    /// reason about and reproduce.
    #[must_use]
    pub fn with_sequential_ids(n: usize) -> Self {
        (1..=n as u64).map(|i| Tag::new(TagId::from(i))).collect()
    }

    /// Creates `n` tags with uniformly random, distinct 96-bit IDs.
    pub fn with_random_ids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut pop = TagPopulation::new();
        while pop.len() < n {
            let raw = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
            // Duplicates are astronomically unlikely but loop anyway.
            let _ = pop.insert(Tag::new(TagId::new(raw)));
        }
        pop
    }

    /// Builds a population from explicit IDs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateTagId`] if any ID repeats.
    pub fn from_ids<I: IntoIterator<Item = TagId>>(ids: I) -> Result<Self, SimError> {
        let mut pop = TagPopulation::new();
        for id in ids {
            pop.insert(Tag::new(id))?;
        }
        Ok(pop)
    }

    /// Number of tags currently present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the population holds no tags.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Whether a tag with this ID is present.
    #[must_use]
    pub fn contains(&self, id: TagId) -> bool {
        self.index.contains_key(&id)
    }

    /// Shared access to a tag by ID.
    #[must_use]
    pub fn get(&self, id: TagId) -> Option<&Tag> {
        self.index.get(&id).map(|&i| &self.tags[i])
    }

    /// Exclusive access to a tag by ID.
    pub fn get_mut(&mut self, id: TagId) -> Option<&mut Tag> {
        self.index.get(&id).map(|&i| &mut self.tags[i])
    }

    /// Iterates over the tags in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tag> {
        self.tags.iter()
    }

    /// Iterates mutably over the tags in insertion order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Tag> {
        self.tags.iter_mut()
    }

    /// The IDs of all present tags, in insertion order.
    #[must_use]
    pub fn ids(&self) -> Vec<TagId> {
        self.tags.iter().map(Tag::id).collect()
    }

    /// Adds a tag.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateTagId`] if a tag with the same ID is
    /// already present.
    pub fn insert(&mut self, tag: Tag) -> Result<(), SimError> {
        if self.index.contains_key(&tag.id()) {
            return Err(SimError::DuplicateTagId {
                id: tag.id().to_string(),
            });
        }
        self.index.insert(tag.id(), self.tags.len());
        self.tags.push(tag);
        Ok(())
    }

    /// Removes a tag by ID, returning it if present.
    pub fn remove(&mut self, id: TagId) -> Option<Tag> {
        let i = self.index.remove(&id)?;
        let tag = self.tags.swap_remove(i);
        if let Some(moved) = self.tags.get(i) {
            self.index.insert(moved.id(), i);
        }
        Some(tag)
    }

    /// Removes `count` uniformly random tags — the adversary "stealing"
    /// tags (§3: the hardest case for the server is exactly `m + 1`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotEnoughTags`] if `count > self.len()`.
    pub fn remove_random<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<Tag>, SimError> {
        if count > self.len() {
            return Err(SimError::NotEnoughTags {
                requested: count,
                available: self.len(),
            });
        }
        let victims: Vec<TagId> = self.ids().choose_multiple(rng, count).copied().collect();
        Ok(victims
            .into_iter()
            // lint:allow(s2-panic): victims were just drawn from self.ids(), so every removal hits a present tag
            .map(|id| self.remove(id).expect("chosen from present ids"))
            .collect())
    }

    /// Splits off `count` uniformly random tags into a new population
    /// (the stolen set `s2` handed to the collaborator, §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotEnoughTags`] if `count > self.len()`.
    pub fn split_random<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        rng: &mut R,
    ) -> Result<TagPopulation, SimError> {
        let removed = self.remove_random(count, rng)?;
        let mut other = TagPopulation::new();
        for tag in removed {
            // lint:allow(s2-panic): tags removed from one population keep their unique ids, and `other` starts empty
            other.insert(tag).expect("ids unique by construction");
        }
        Ok(other)
    }

    /// Marks `count` random tags detuned (present but mute) — failure
    /// injection for false-alarm experiments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotEnoughTags`] if `count > self.len()`.
    pub fn detune_random<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<TagId>, SimError> {
        if count > self.len() {
            return Err(SimError::NotEnoughTags {
                requested: count,
                available: self.len(),
            });
        }
        let victims: Vec<TagId> = self.ids().choose_multiple(rng, count).copied().collect();
        for id in &victims {
            self.get_mut(*id)
                // lint:allow(s2-panic): victims were just drawn from self.ids(), so every lookup hits a present tag
                .expect("chosen from present ids")
                .set_detuned(true);
        }
        Ok(victims)
    }

    /// Re-arms every tag for a fresh inventory round.
    pub fn reset_inventory(&mut self) {
        for tag in &mut self.tags {
            tag.reset_inventory();
        }
    }

    /// Snapshot of every tag's counter, keyed by ID — what the server
    /// persists so it can keep predicting UTRP slots.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<TagId, Counter> {
        self.tags.iter().map(|t| (t.id(), t.counter())).collect()
    }
}

impl FromIterator<Tag> for TagPopulation {
    /// Collects tags, keeping the **first** occurrence of each ID.
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        let mut pop = TagPopulation::new();
        for tag in iter {
            let _ = pop.insert(tag);
        }
        pop
    }
}

impl Extend<Tag> for TagPopulation {
    /// Adds tags, keeping the first occurrence of each ID.
    fn extend<I: IntoIterator<Item = Tag>>(&mut self, iter: I) {
        for tag in iter {
            let _ = self.insert(tag);
        }
    }
}

impl<'a> IntoIterator for &'a TagPopulation {
    type Item = &'a Tag;
    type IntoIter = std::slice::Iter<'a, Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.tags.iter()
    }
}

impl IntoIterator for TagPopulation {
    type Item = Tag;
    type IntoIter = std::vec::IntoIter<Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.tags.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn sequential_population_has_distinct_ids() {
        let pop = TagPopulation::with_sequential_ids(500);
        assert_eq!(pop.len(), 500);
        let ids: std::collections::HashSet<_> = pop.ids().into_iter().collect();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn random_population_has_requested_size() {
        let mut r = rng();
        let pop = TagPopulation::with_random_ids(64, &mut r);
        assert_eq!(pop.len(), 64);
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut pop = TagPopulation::new();
        pop.insert(Tag::new(TagId::new(1))).unwrap();
        let err = pop.insert(Tag::new(TagId::new(1))).unwrap_err();
        assert!(matches!(err, SimError::DuplicateTagId { .. }));
        assert_eq!(pop.len(), 1);
    }

    #[test]
    fn from_ids_rejects_duplicates() {
        let ids = [TagId::new(1), TagId::new(2), TagId::new(1)];
        assert!(TagPopulation::from_ids(ids).is_err());
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut pop = TagPopulation::with_sequential_ids(10);
        assert!(pop.remove(TagId::from(5u64)).is_some());
        assert!(pop.remove(TagId::from(5u64)).is_none());
        assert_eq!(pop.len(), 9);
        // Every surviving tag is still reachable through the index.
        for id in pop.ids() {
            assert_eq!(pop.get(id).unwrap().id(), id);
        }
    }

    #[test]
    fn remove_random_takes_exactly_count() {
        let mut r = rng();
        let mut pop = TagPopulation::with_sequential_ids(100);
        let stolen = pop.remove_random(21, &mut r).unwrap();
        assert_eq!(stolen.len(), 21);
        assert_eq!(pop.len(), 79);
        for tag in &stolen {
            assert!(!pop.contains(tag.id()));
        }
    }

    #[test]
    fn remove_random_rejects_overdraw() {
        let mut r = rng();
        let mut pop = TagPopulation::with_sequential_ids(5);
        let err = pop.remove_random(6, &mut r).unwrap_err();
        assert_eq!(
            err,
            SimError::NotEnoughTags {
                requested: 6,
                available: 5
            }
        );
        // Population untouched on error.
        assert_eq!(pop.len(), 5);
    }

    #[test]
    fn split_random_partitions_the_set() {
        let mut r = rng();
        let mut s1 = TagPopulation::with_sequential_ids(50);
        let s2 = s1.split_random(20, &mut r).unwrap();
        assert_eq!(s1.len(), 30);
        assert_eq!(s2.len(), 20);
        for tag in &s2 {
            assert!(!s1.contains(tag.id()));
        }
    }

    #[test]
    fn split_is_random_not_prefix() {
        let mut r = rng();
        let mut s1 = TagPopulation::with_sequential_ids(1000);
        let _s2 = s1.split_random(500, &mut r).unwrap();
        // A prefix split would put ids 1..=500 in s2; a random one keeps
        // roughly half of the low ids in s1.
        let low_in_s1 = (1..=500u64)
            .filter(|&i| s1.contains(TagId::from(i)))
            .count();
        assert!(
            (150..=350).contains(&low_in_s1),
            "suspiciously non-random split: {low_in_s1}"
        );
    }

    #[test]
    fn detune_random_marks_tags_mute() {
        let mut r = rng();
        let mut pop = TagPopulation::with_sequential_ids(20);
        let victims = pop.detune_random(4, &mut r).unwrap();
        assert_eq!(victims.len(), 4);
        let detuned = pop.iter().filter(|t| t.is_detuned()).count();
        assert_eq!(detuned, 4);
        assert_eq!(pop.len(), 20, "detuned tags remain present");
    }

    #[test]
    fn counters_snapshot_tracks_ids() {
        let pop = TagPopulation::with_sequential_ids(3);
        let counters = pop.counters();
        assert_eq!(counters.len(), 3);
        assert!(counters.values().all(|ct| ct.get() == 0));
    }

    #[test]
    fn collect_and_extend_keep_first_occurrence() {
        let mut pop: TagPopulation = [Tag::new(TagId::new(1)), Tag::new(TagId::new(1))]
            .into_iter()
            .collect();
        assert_eq!(pop.len(), 1);
        pop.extend([Tag::new(TagId::new(2)), Tag::new(TagId::new(2))]);
        assert_eq!(pop.len(), 2);
    }

    #[test]
    fn removal_is_reproducible_for_equal_seeds() {
        let mut a = TagPopulation::with_sequential_ids(100);
        let mut b = TagPopulation::with_sequential_ids(100);
        let mut ra = StdRng::seed_from_u64(7);
        let mut rb = StdRng::seed_from_u64(7);
        let xa: Vec<_> = a
            .remove_random(10, &mut ra)
            .unwrap()
            .iter()
            .map(Tag::id)
            .collect();
        let xb: Vec<_> = b
            .remove_random(10, &mut rb)
            .unwrap()
            .iter()
            .map(Tag::id)
            .collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn reset_inventory_rearms_silenced_tags() {
        let mut pop = TagPopulation::with_sequential_ids(4);
        for tag in pop.iter_mut() {
            tag.silence();
        }
        pop.reset_inventory();
        assert!(pop.iter().all(|t| t.state() == crate::tag::TagState::Ready));
    }
}
