//! The RFID reader (interrogator) device model.
//!
//! A [`Reader`] broadcasts frame announcements and slot numbers, listens
//! through a [`Channel`], and accumulates an execution record per frame.
//! It is the *reference* implementation of the air protocol — tests and
//! examples drive real [`Tag`](crate::tag::Tag) state machines through
//! it, while the Monte-Carlo fast paths in downstream crates use the
//! bulk predictors of [`crate::aloha`] and are tested to agree with it.
//!
//! Each frame is sequenced through the discrete-event kernel
//! ([`crate::event::EventQueue`]): the announcement and every slot are
//! scheduled at their air-interface times from the [`TimingModel`], so
//! the reader's clock reflects exactly what a timed run would observe.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aloha::{FrameExecution, FramePlan};
use crate::error::SimError;
use crate::event::EventQueue;
use crate::ident::TagId;
use crate::population::TagPopulation;
use crate::radio::{Channel, SlotOutcome};
use crate::tag::{SlotMode, TagReply, TagState};
use crate::time::SimTime;
use crate::timing::TimingModel;
use crate::trace::{Trace, TraceEvent};

/// Reader configuration.
///
/// The default is the paper's cost model: uniform slot timing, tracing
/// off, RNG seed 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReaderConfig {
    /// Air-interface timing used to advance the simulated clock.
    pub timing: TimingModel,
    /// Whether to record a [`Trace`] of every air event.
    pub trace_enabled: bool,
    /// Seed for the reader's internal RNG (used only by non-ideal
    /// channels for failure injection).
    pub seed: u64,
}

/// The result of a collection (ID-gathering) frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionRound {
    /// The raw frame execution.
    pub execution: FrameExecution,
    /// IDs decoded from singleton slots, in slot order. The reader has
    /// silenced these tags.
    pub collected: Vec<TagId>,
    /// Number of collided slots (those tags must retransmit in a later
    /// round).
    pub collided_slots: u64,
}

/// A simulated RFID reader.
///
/// The reader owns a monotone simulated clock that accumulates across
/// rounds — matching how the server reasons about a reader's total
/// scanning time in UTRP — plus a running slot counter, the paper's
/// primary cost metric.
#[derive(Debug)]
pub struct Reader {
    config: ReaderConfig,
    rng: StdRng,
    trace: Trace,
    clock: SimTime,
    slots_used: u64,
}

/// Internal per-frame air event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AirEvent {
    Announce,
    Slot(u64),
}

impl Reader {
    /// Creates a reader.
    #[must_use]
    pub fn new(config: ReaderConfig) -> Self {
        Reader {
            rng: StdRng::seed_from_u64(config.seed),
            trace: if config.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            config,
            clock: SimTime::ZERO,
            slots_used: 0,
        }
    }

    /// The reader's configuration.
    #[must_use]
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// The recorded trace (empty if tracing is disabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current simulated clock.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Total slots broadcast across all frames so far.
    #[must_use]
    pub fn slots_used(&self) -> u64 {
        self.slots_used
    }

    /// Resets clock, slot counter, trace, and RNG to their initial
    /// state (a fresh monitoring session).
    pub fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.config.seed);
        self.clock = SimTime::ZERO;
        self.slots_used = 0;
        self.trace.clear();
    }

    /// Runs one full *presence* frame (TRP, Algs. 1–3): every ready tag
    /// hashes `(id ⊕ r) mod f` and answers its slot with a short burst.
    ///
    /// Tags are not mutated: plain-mode slot choice is stateless, and
    /// presence replies do not silence a tag.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid inputs; the `Result` is part of
    /// the stable signature because channel models added later may
    /// reject configurations.
    pub fn run_presence_frame(
        &mut self,
        plan: &FramePlan,
        tags: &TagPopulation,
        channel: &Channel,
    ) -> Result<FrameExecution, SimError> {
        let f = plan.frame_size();
        // One pass over tags: bucket replies by slot.
        let mut replies: Vec<Vec<TagReply>> = vec![Vec::new(); f.as_usize()];
        for tag in tags.iter() {
            if tag.state() == TagState::Silenced || tag.is_detuned() {
                continue;
            }
            // Stateless plain-mode slot choice; equals Tag::on_frame in
            // SlotMode::Plain (tested below).
            let sn = crate::hash::slot_for(tag.id(), plan.nonce(), f);
            replies[sn as usize].push(TagReply::Presence {
                bits: crate::hash::short_reply_bits(tag.id(), crate::ident::Nonce::new(sn)),
            });
        }
        self.drive_frame(plan, replies, channel, false)
    }

    /// Runs one full *collection* frame: ready tags answer with their
    /// IDs; tags decoded alone in their slot are silenced (paper §3).
    ///
    /// The collect-all baseline calls this repeatedly with shrinking
    /// frames until every tag is silenced.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid inputs (see
    /// [`Reader::run_presence_frame`]).
    pub fn run_collection_frame(
        &mut self,
        plan: &FramePlan,
        tags: &mut TagPopulation,
        channel: &Channel,
    ) -> Result<CollectionRound, SimError> {
        let f = plan.frame_size();
        let mut replies: Vec<Vec<TagReply>> = vec![Vec::new(); f.as_usize()];
        for tag in tags.iter_mut() {
            if tag.state() == TagState::Silenced || tag.is_detuned() {
                continue;
            }
            let sn = tag.on_frame(f, plan.nonce(), SlotMode::Plain);
            if let Some(reply) = tag.on_slot(sn, true) {
                replies[sn as usize].push(reply);
            }
        }
        let execution = self.drive_frame(plan, replies, channel, true)?;

        let mut collected = Vec::new();
        let mut collided_slots = 0;
        for outcome in execution.outcomes() {
            match outcome {
                SlotOutcome::Single(TagReply::Id(id)) => collected.push(*id),
                SlotOutcome::Collision { .. } => collided_slots += 1,
                _ => {}
            }
        }
        for &id in &collected {
            if let Some(tag) = tags.get_mut(id) {
                tag.silence();
            }
        }
        Ok(CollectionRound {
            execution,
            collected,
            collided_slots,
        })
    }

    /// Sequences a frame through the event kernel and resolves each slot
    /// on the channel.
    fn drive_frame(
        &mut self,
        plan: &FramePlan,
        replies: Vec<Vec<TagReply>>,
        channel: &Channel,
        collection: bool,
    ) -> Result<FrameExecution, SimError> {
        let f = plan.frame_size();
        let timing = &self.config.timing;

        let mut queue: EventQueue<AirEvent> = EventQueue::new();
        queue.schedule_at(SimTime::ZERO, AirEvent::Announce)?;

        let mut outcomes: Vec<SlotOutcome> = Vec::with_capacity(f.as_usize());
        let mut cursor = SimTime::ZERO + timing.frame_announce;
        for sn in 0..f.get() {
            cursor += timing.slot_broadcast;
            queue.schedule_at(cursor, AirEvent::Slot(sn))?;
            // Reserve the worst-case slot body; actual outcome duration
            // is accounted below once known.
            cursor += timing.empty_slot;
        }

        let frame_start = self.clock;
        while let Some(event) = queue.pop() {
            match event.into_event() {
                AirEvent::Announce => {
                    self.trace.record(
                        frame_start + queue.now().saturating_since(SimTime::ZERO),
                        TraceEvent::FrameAnnounced { f, r: plan.nonce() },
                    );
                }
                AirEvent::Slot(sn) => {
                    let outcome = channel.resolve_slot(&replies[sn as usize], &mut self.rng);
                    self.trace.record(
                        frame_start + queue.now().saturating_since(SimTime::ZERO),
                        TraceEvent::SlotResolved { slot: sn, outcome },
                    );
                    outcomes.push(outcome);
                }
            }
        }

        // Bill exact air time from the realized outcomes.
        let duration = if collection {
            timing.collection_frame_duration(&outcomes)
        } else {
            timing.frame_duration(&outcomes)
        };
        self.clock += duration;
        self.slots_used += f.get();
        self.trace.record(
            self.clock,
            TraceEvent::RoundCompleted {
                slots_used: f.get(),
            },
        );
        Ok(FrameExecution::new(*plan, outcomes, duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aloha::predicted_occupancy;
    use crate::ident::{FrameSize, Nonce};
    use crate::tag::Tag;

    fn plan(f: u64, r: u64) -> FramePlan {
        FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r))
    }

    #[test]
    fn presence_frame_matches_server_prediction() {
        // The protocol's foundation: on an ideal channel the reader's
        // observed occupancy equals the server's prediction from IDs.
        let tags = TagPopulation::with_sequential_ids(200);
        let mut reader = Reader::new(ReaderConfig::default());
        let p = plan(256, 99);
        let exec = reader
            .run_presence_frame(&p, &tags, &Channel::ideal())
            .unwrap();
        let predicted = predicted_occupancy(&tags.ids(), p.nonce(), p.frame_size());
        assert_eq!(exec.occupancy_bits(), predicted);
    }

    #[test]
    fn presence_frame_agrees_with_tag_state_machine() {
        // The reader's stateless fast path must match what the full Tag
        // state machine would answer.
        let tags = TagPopulation::with_sequential_ids(50);
        let mut reader = Reader::new(ReaderConfig::default());
        let p = plan(64, 7);
        let exec = reader
            .run_presence_frame(&p, &tags, &Channel::ideal())
            .unwrap();

        for tag_ref in tags.iter() {
            let mut tag = Tag::new(tag_ref.id());
            let sn = tag.on_frame(p.frame_size(), p.nonce(), SlotMode::Plain);
            assert!(tag.on_slot(sn, false).is_some());
            assert!(
                exec.occupancy_bits()[sn as usize],
                "tag {} slot {sn} should be occupied",
                tag_ref.id()
            );
        }
    }

    #[test]
    fn detuned_and_silenced_tags_do_not_reply() {
        let mut tags = TagPopulation::with_sequential_ids(2);
        let ids = tags.ids();
        tags.get_mut(ids[0]).unwrap().set_detuned(true);
        tags.get_mut(ids[1]).unwrap().silence();
        let mut reader = Reader::new(ReaderConfig::default());
        let exec = reader
            .run_presence_frame(&plan(16, 1), &tags, &Channel::ideal())
            .unwrap();
        assert!(exec.occupancy_bits().iter().all(|&b| !b));
    }

    #[test]
    fn collection_frame_silences_decoded_tags() {
        let mut tags = TagPopulation::with_sequential_ids(10);
        let mut reader = Reader::new(ReaderConfig::default());
        // Huge frame: collisions vanish, all 10 decode in one round.
        let round = reader
            .run_collection_frame(&plan(4096, 5), &mut tags, &Channel::ideal())
            .unwrap();
        assert_eq!(round.collected.len(), 10);
        assert_eq!(round.collided_slots, 0);
        assert!(tags.iter().all(|t| t.state() == TagState::Silenced));
    }

    #[test]
    fn collection_frame_reports_collisions() {
        let mut tags = TagPopulation::with_sequential_ids(300);
        let mut reader = Reader::new(ReaderConfig::default());
        // Tiny frame: mostly collisions.
        let round = reader
            .run_collection_frame(&plan(8, 5), &mut tags, &Channel::ideal())
            .unwrap();
        assert!(round.collided_slots > 0);
        // Collided tags stay ready for the next round.
        let ready = tags.iter().filter(|t| t.state() == TagState::Ready).count();
        assert_eq!(ready, 300 - round.collected.len());
    }

    #[test]
    fn slots_and_clock_accumulate_across_frames() {
        let tags = TagPopulation::with_sequential_ids(5);
        let mut reader = Reader::new(ReaderConfig::default());
        let ch = Channel::ideal();
        reader.run_presence_frame(&plan(10, 1), &tags, &ch).unwrap();
        reader.run_presence_frame(&plan(20, 2), &tags, &ch).unwrap();
        assert_eq!(reader.slots_used(), 30);
        // Uniform timing: clock microseconds == slots.
        assert_eq!(reader.clock().as_micros(), 30);
    }

    #[test]
    fn reset_restores_initial_state() {
        let tags = TagPopulation::with_sequential_ids(5);
        let mut reader = Reader::new(ReaderConfig {
            trace_enabled: true,
            ..ReaderConfig::default()
        });
        reader
            .run_presence_frame(&plan(8, 1), &tags, &Channel::ideal())
            .unwrap();
        assert!(reader.slots_used() > 0);
        reader.reset();
        assert_eq!(reader.slots_used(), 0);
        assert_eq!(reader.clock(), SimTime::ZERO);
        assert!(reader.trace().is_empty());
    }

    #[test]
    fn trace_records_announce_slots_and_completion() {
        let tags = TagPopulation::with_sequential_ids(3);
        let mut reader = Reader::new(ReaderConfig {
            trace_enabled: true,
            ..ReaderConfig::default()
        });
        reader
            .run_presence_frame(&plan(4, 1), &tags, &Channel::ideal())
            .unwrap();
        let trace = reader.trace();
        assert_eq!(
            trace
                .filter(|e| matches!(e, TraceEvent::FrameAnnounced { .. }))
                .count(),
            1
        );
        assert_eq!(
            trace
                .filter(|e| matches!(e, TraceEvent::SlotResolved { .. }))
                .count(),
            4
        );
        assert_eq!(
            trace
                .filter(|e| matches!(e, TraceEvent::RoundCompleted { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn gen2_timing_bills_longer_for_collection() {
        let mut tags_a = TagPopulation::with_sequential_ids(64);
        let tags_b = tags_a.clone();
        let cfg = ReaderConfig {
            timing: TimingModel::gen2(),
            ..ReaderConfig::default()
        };
        let p = plan(128, 3);
        let ch = Channel::ideal();

        let mut presence_reader = Reader::new(cfg);
        let presence = presence_reader
            .run_presence_frame(&p, &tags_b, &ch)
            .unwrap();

        let mut collection_reader = Reader::new(cfg);
        let collection = collection_reader
            .run_collection_frame(&p, &mut tags_a, &ch)
            .unwrap();

        // Same slot pattern, but ID bodies dwarf presence bursts — the
        // paper's argument that collect-all is worse than slot counts
        // alone suggest.
        assert!(collection.execution.duration() > presence.duration());
    }

    #[test]
    fn lossy_channel_can_blank_replies() {
        let tags = TagPopulation::with_sequential_ids(100);
        let mut reader = Reader::new(ReaderConfig::default());
        let lossy = Channel::with_config(crate::radio::ChannelConfig {
            reply_loss_prob: 1.0,
            ..Default::default()
        })
        .unwrap();
        let exec = reader
            .run_presence_frame(&plan(128, 1), &tags, &lossy)
            .unwrap();
        assert!(exec.occupancy_bits().iter().all(|&b| !b));
    }

    #[test]
    fn reader_runs_are_reproducible() {
        let tags = TagPopulation::with_sequential_ids(50);
        let noisy_cfg = crate::radio::ChannelConfig {
            reply_loss_prob: 0.2,
            ..Default::default()
        };
        let ch = Channel::with_config(noisy_cfg).unwrap();
        let run = |seed: u64| {
            let mut reader = Reader::new(ReaderConfig {
                seed,
                ..ReaderConfig::default()
            });
            reader
                .run_presence_frame(&plan(64, 9), &tags, &ch)
                .unwrap()
                .occupancy_bits()
        };
        assert_eq!(run(7), run(7));
    }
}
