//! Air-interface timing: converting slot counts into simulated time.
//!
//! The paper measures protocol cost in *slots* and assumes "the duration
//! of each slot is equally long" (§6) — but it also notes that
//! collect-all's real cost is higher because a 96-bit ID takes far
//! longer to transmit than TRP's short random burst. [`TimingModel`]
//! captures both views: a uniform-slot model for reproducing the paper's
//! figures, and an EPC-Gen2-inspired model with distinct durations per
//! slot kind for the time-domain comparison.
//!
//! The Gen2-inspired constants are derived from the Class-1 Gen-2 air
//! interface at a 40 kbps backscatter link rate: an empty slot costs only
//! the detection timeout, a short (RN16-style) reply ~16 bits plus
//! turnaround times, and a 96-bit EPC reply several times that. They are
//! deliberately round numbers — the *ratios* are what matter for the
//! comparison, not absolute microseconds.

use crate::radio::SlotOutcome;
use crate::tag::TagReply;
use crate::time::SimDuration;

/// Per-slot-kind durations for a framed-slotted-ALOHA inventory.
///
/// This is a passive parameter block: all fields are public and the
/// model performs no validation beyond what [`SimDuration`] enforces
/// (non-negative by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingModel {
    /// Broadcasting a frame announcement `(f, r)` — a Query-style
    /// command carrying the frame size and nonce.
    pub frame_announce: SimDuration,
    /// Broadcasting one slot number (QueryRep-style command).
    pub slot_broadcast: SimDuration,
    /// An empty slot: the reader's energy-detection timeout.
    pub empty_slot: SimDuration,
    /// A slot carrying one short presence burst (~10 random bits).
    pub presence_reply: SimDuration,
    /// A slot carrying one full 96-bit ID reply.
    pub id_reply: SimDuration,
    /// A collided slot (reader listens for the longest possible reply
    /// of the round before giving up).
    pub collision_slot: SimDuration,
}

impl TimingModel {
    /// The paper's model: every slot costs exactly one unit
    /// (1 µs), commands are free. `total_duration` then equals the slot
    /// count, which is what Figures 4 and 6 plot.
    #[must_use]
    pub fn uniform_slots() -> Self {
        TimingModel {
            frame_announce: SimDuration::ZERO,
            slot_broadcast: SimDuration::ZERO,
            empty_slot: SimDuration::from_micros(1),
            presence_reply: SimDuration::from_micros(1),
            id_reply: SimDuration::from_micros(1),
            collision_slot: SimDuration::from_micros(1),
        }
    }

    /// EPC-Gen2-inspired timings at a 40 kbps backscatter link.
    ///
    /// | event | budget |
    /// |---|---|
    /// | frame announce | 800 µs (Query + 64-bit nonce) |
    /// | slot broadcast | 100 µs (QueryRep) |
    /// | empty slot | 100 µs (detection timeout) |
    /// | presence reply | 400 µs (turnaround + ~16 bits) |
    /// | ID reply | 2 400 µs (turnaround + 96 bits) |
    /// | collision | 400 µs (garbled burst, short timeout) |
    #[must_use]
    pub fn gen2() -> Self {
        TimingModel {
            frame_announce: SimDuration::from_micros(800),
            slot_broadcast: SimDuration::from_micros(100),
            empty_slot: SimDuration::from_micros(100),
            presence_reply: SimDuration::from_micros(400),
            id_reply: SimDuration::from_micros(2_400),
            collision_slot: SimDuration::from_micros(400),
        }
    }

    /// Duration of one slot given its outcome.
    ///
    /// A collided *ID* round listens for the full ID duration (the reader
    /// cannot tell early that the burst is garbage), so collisions in
    /// collection mode are billed at [`TimingModel::id_reply`].
    #[must_use]
    pub fn slot_duration(&self, outcome: &SlotOutcome) -> SimDuration {
        match outcome {
            SlotOutcome::Empty => self.empty_slot,
            SlotOutcome::Single(TagReply::Presence { .. }) => self.presence_reply,
            SlotOutcome::Single(TagReply::Id(_)) => self.id_reply,
            SlotOutcome::Collision { .. } => self.collision_slot,
        }
    }

    /// Duration of a whole executed frame: the announcement, one slot
    /// broadcast per slot, and each slot's outcome-dependent body.
    #[must_use]
    pub fn frame_duration(&self, outcomes: &[SlotOutcome]) -> SimDuration {
        let body: SimDuration = outcomes.iter().map(|o| self.slot_duration(o)).sum();
        self.frame_announce + self.slot_broadcast * outcomes.len() as u64 + body
    }

    /// Duration of a frame in *collection* mode, where collisions are
    /// billed at the ID-reply length (see [`TimingModel::slot_duration`]).
    #[must_use]
    pub fn collection_frame_duration(&self, outcomes: &[SlotOutcome]) -> SimDuration {
        let body: SimDuration = outcomes
            .iter()
            .map(|o| match o {
                SlotOutcome::Collision { .. } => self.id_reply,
                other => self.slot_duration(other),
            })
            .sum();
        self.frame_announce + self.slot_broadcast * outcomes.len() as u64 + body
    }
}

impl Default for TimingModel {
    /// Defaults to the paper's [uniform-slot](TimingModel::uniform_slots)
    /// model so slot counts and durations agree out of the box.
    fn default() -> Self {
        TimingModel::uniform_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::TagId;

    fn empty() -> SlotOutcome {
        SlotOutcome::Empty
    }
    fn burst() -> SlotOutcome {
        SlotOutcome::Single(TagReply::Presence { bits: 1 })
    }
    fn id() -> SlotOutcome {
        SlotOutcome::Single(TagReply::Id(TagId::new(1)))
    }
    fn collision() -> SlotOutcome {
        SlotOutcome::Collision { transmitters: 2 }
    }

    #[test]
    fn uniform_model_counts_slots() {
        let t = TimingModel::uniform_slots();
        let outcomes = vec![empty(), burst(), collision(), id()];
        assert_eq!(t.frame_duration(&outcomes).as_micros(), 4);
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(TimingModel::default(), TimingModel::uniform_slots());
    }

    #[test]
    fn gen2_id_reply_dominates_presence_reply() {
        // The paper's footnote: collect-all slots are longer because the
        // tag returns its ID rather than a short random number.
        let t = TimingModel::gen2();
        assert!(t.id_reply > t.presence_reply * 2);
        assert!(t.presence_reply > t.empty_slot);
    }

    #[test]
    fn frame_duration_includes_command_overhead() {
        let t = TimingModel::gen2();
        let outcomes = vec![empty(); 10];
        let expected = t.frame_announce + t.slot_broadcast * 10 + t.empty_slot * 10;
        assert_eq!(t.frame_duration(&outcomes), expected);
    }

    #[test]
    fn collection_mode_bills_collisions_as_id_slots() {
        let t = TimingModel::gen2();
        let outcomes = vec![collision()];
        let presence_billed = t.frame_duration(&outcomes);
        let collection_billed = t.collection_frame_duration(&outcomes);
        assert!(collection_billed > presence_billed);
        assert_eq!(
            collection_billed,
            t.frame_announce + t.slot_broadcast + t.id_reply
        );
    }

    #[test]
    fn slot_duration_matches_outcome_kind() {
        let t = TimingModel::gen2();
        assert_eq!(t.slot_duration(&empty()), t.empty_slot);
        assert_eq!(t.slot_duration(&burst()), t.presence_reply);
        assert_eq!(t.slot_duration(&id()), t.id_reply);
        assert_eq!(t.slot_duration(&collision()), t.collision_slot);
    }

    #[test]
    fn empty_frame_costs_only_announcement() {
        let t = TimingModel::gen2();
        assert_eq!(t.frame_duration(&[]), t.frame_announce);
    }
}
