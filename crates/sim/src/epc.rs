//! SGTIN-96 EPC encoding — realistic identities for simulated tags.
//!
//! The paper's scenario tags every item in a store; real deployments
//! use GS1's *Serialized Global Trade Item Number* in its 96-bit EPC
//! binary encoding. This module implements the SGTIN-96 layout so
//! examples and tests can exercise the monitor with identities shaped
//! like production data (structured, highly non-uniform bit patterns —
//! a good stress for the slot hash, which must randomize them anyway).
//!
//! Layout (96 bits, most significant first):
//!
//! | field | bits | meaning |
//! |---|---|---|
//! | header | 8 | `0x30` for SGTIN-96 |
//! | filter | 3 | packaging level (0–7) |
//! | partition | 3 | split between company prefix and item reference |
//! | company prefix | 20–40 | GS1 company prefix |
//! | item reference | 24–4 | item class within the company |
//! | serial | 38 | per-item serial number |
//!
//! The partition table follows the EPC Tag Data Standard: partition `p`
//! gives the company prefix `40 − 3.29p…` — encoded exactly per the
//! standard's table below.

use std::fmt;

use crate::error::SimError;
use crate::ident::TagId;

/// The SGTIN-96 header byte.
pub const SGTIN96_HEADER: u8 = 0x30;

/// Partition table from the EPC Tag Data Standard §14.5.1.1:
/// `(company_prefix_bits, item_reference_bits)` for partitions 0–6.
const PARTITIONS: [(u32, u32); 7] = [
    (40, 4),
    (37, 7),
    (34, 10),
    (30, 14),
    (27, 17),
    (24, 20),
    (20, 24),
];

/// Bits in the serial field.
const SERIAL_BITS: u32 = 38;

/// A decoded SGTIN-96 identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sgtin96 {
    /// Packaging-level filter value (0–7).
    pub filter: u8,
    /// Partition index (0–6), fixing the field split below.
    pub partition: u8,
    /// GS1 company prefix (width set by `partition`).
    pub company_prefix: u64,
    /// Item reference / class (width set by `partition`).
    pub item_reference: u64,
    /// Per-item serial (38 bits).
    pub serial: u64,
}

impl Sgtin96 {
    /// Validates field ranges and builds an identity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SgtinOutOfRange`] naming the offending field
    /// when any value exceeds its partition-determined width.
    pub fn new(
        filter: u8,
        partition: u8,
        company_prefix: u64,
        item_reference: u64,
        serial: u64,
    ) -> Result<Self, SimError> {
        if filter > 7 {
            return Err(SimError::SgtinOutOfRange {
                field: "filter",
                value: u128::from(filter),
                max_bits: 3,
            });
        }
        let Some(&(cp_bits, ir_bits)) = PARTITIONS.get(partition as usize) else {
            return Err(SimError::SgtinOutOfRange {
                field: "partition",
                value: u128::from(partition),
                max_bits: 3,
            });
        };
        if company_prefix >= 1u64 << cp_bits {
            return Err(SimError::SgtinOutOfRange {
                field: "company_prefix",
                value: u128::from(company_prefix),
                max_bits: cp_bits,
            });
        }
        if item_reference >= 1u64 << ir_bits {
            return Err(SimError::SgtinOutOfRange {
                field: "item_reference",
                value: u128::from(item_reference),
                max_bits: ir_bits,
            });
        }
        if serial >= 1u64 << SERIAL_BITS {
            return Err(SimError::SgtinOutOfRange {
                field: "serial",
                value: u128::from(serial),
                max_bits: SERIAL_BITS,
            });
        }
        Ok(Sgtin96 {
            filter,
            partition,
            company_prefix,
            item_reference,
            serial,
        })
    }

    /// Encodes to the 96-bit EPC binary form.
    #[must_use]
    pub fn encode(&self) -> TagId {
        let (cp_bits, ir_bits) = PARTITIONS[self.partition as usize];
        let mut bits: u128 = u128::from(SGTIN96_HEADER); // 8
        bits = (bits << 3) | u128::from(self.filter); // 3
        bits = (bits << 3) | u128::from(self.partition); // 3
        bits = (bits << cp_bits) | u128::from(self.company_prefix);
        bits = (bits << ir_bits) | u128::from(self.item_reference);
        bits = (bits << SERIAL_BITS) | u128::from(self.serial);
        TagId::new(bits)
    }

    /// Decodes a 96-bit EPC, verifying the SGTIN-96 header.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSgtin`] for a wrong header or an invalid
    /// partition value.
    pub fn decode(id: TagId) -> Result<Self, SimError> {
        let bits = id.as_u128();
        let header = (bits >> 88) as u8;
        if header != SGTIN96_HEADER {
            return Err(SimError::NotSgtin { header });
        }
        let filter = ((bits >> 85) & 0x7) as u8;
        let partition = ((bits >> 82) & 0x7) as u8;
        let Some(&(cp_bits, ir_bits)) = PARTITIONS.get(partition as usize) else {
            return Err(SimError::NotSgtin { header });
        };
        let serial = (bits & ((1u128 << SERIAL_BITS) - 1)) as u64;
        let ir_shift = SERIAL_BITS;
        let item_reference = ((bits >> ir_shift) & ((1u128 << ir_bits) - 1)) as u64;
        let cp_shift = ir_shift + ir_bits;
        let company_prefix = ((bits >> cp_shift) & ((1u128 << cp_bits) - 1)) as u64;
        Ok(Sgtin96 {
            filter,
            partition,
            company_prefix,
            item_reference,
            serial,
        })
    }
}

impl fmt::Display for Sgtin96 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sgtin:{}.{}.{}.{}",
            self.filter, self.company_prefix, self.item_reference, self.serial
        )
    }
}

/// Generates `count` sequential-serial SGTIN-96 IDs for one item class —
/// the shape of a real pallet: same company, same product, serials
/// `serial_start..`.
///
/// # Errors
///
/// Propagates field-range validation.
pub fn sgtin_batch(
    company_prefix: u64,
    item_reference: u64,
    serial_start: u64,
    count: u64,
) -> Result<Vec<TagId>, SimError> {
    (0..count)
        .map(|k| {
            Sgtin96::new(1, 5, company_prefix, item_reference, serial_start + k).map(|s| s.encode())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sgtin96 {
        Sgtin96::new(1, 5, 0x12_3456, 0x0F_00BA, 42).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample();
        let id = s.encode();
        assert_eq!(Sgtin96::decode(id).unwrap(), s);
    }

    #[test]
    fn round_trip_across_all_partitions() {
        for p in 0..7u8 {
            let (cp_bits, ir_bits) = PARTITIONS[p as usize];
            let s = Sgtin96::new(
                7,
                p,
                (1u64 << cp_bits) - 1,
                (1u64 << ir_bits) - 1,
                (1u64 << SERIAL_BITS) - 1,
            )
            .unwrap();
            assert_eq!(Sgtin96::decode(s.encode()).unwrap(), s, "partition {p}");
        }
    }

    #[test]
    fn header_is_sgtin() {
        let id = sample().encode();
        assert_eq!((id.as_u128() >> 88) as u8, SGTIN96_HEADER);
    }

    #[test]
    fn field_ranges_are_validated() {
        assert!(Sgtin96::new(8, 0, 0, 0, 0).is_err()); // filter
        assert!(Sgtin96::new(0, 7, 0, 0, 0).is_err()); // partition
        assert!(Sgtin96::new(0, 6, 1 << 20, 0, 0).is_err()); // company
        assert!(Sgtin96::new(0, 6, 0, 1 << 24, 0).is_err()); // item ref
        assert!(Sgtin96::new(0, 0, 0, 0, 1 << 38).is_err()); // serial
    }

    #[test]
    fn decode_rejects_non_sgtin() {
        let err = Sgtin96::decode(TagId::new(0)).unwrap_err();
        assert!(matches!(err, SimError::NotSgtin { header: 0 }));
    }

    #[test]
    fn decode_rejects_invalid_partition() {
        // Header right, partition 7 (undefined).
        let bits: u128 = (u128::from(SGTIN96_HEADER) << 88) | (7u128 << 82);
        assert!(Sgtin96::decode(TagId::new(bits)).is_err());
    }

    #[test]
    fn batch_produces_distinct_sequential_ids() {
        let ids = sgtin_batch(0x12_3456, 7, 1_000, 500).unwrap();
        assert_eq!(ids.len(), 500);
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 500);
        let first = Sgtin96::decode(ids[0]).unwrap();
        let last = Sgtin96::decode(ids[499]).unwrap();
        assert_eq!(first.serial, 1_000);
        assert_eq!(last.serial, 1_499);
        assert_eq!(first.company_prefix, last.company_prefix);
    }

    #[test]
    fn batch_ids_hash_uniformly_despite_structure() {
        // Sequential serials share 90+ bits; the slot hash must still
        // spread them. (This is why mix64 avalanches matter.)
        use crate::hash::slot_for;
        use crate::ident::{FrameSize, Nonce};
        let ids = sgtin_batch(0x12_3456, 7, 0, 2_000).unwrap();
        let f = FrameSize::new(64).unwrap();
        let mut counts = vec![0u32; 64];
        for id in ids {
            counts[slot_for(id, Nonce::new(5), f) as usize] += 1;
        }
        let expected = 2_000.0 / 64.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        // 63 dof: mean 63, sd ~11; 160 is ~8 sigma.
        assert!(chi2 < 160.0, "structured ids hash badly: chi2 = {chi2}");
    }

    #[test]
    fn display_is_dotted() {
        assert_eq!(sample().to_string(), "sgtin:1.1193046.983226.42");
    }
}
