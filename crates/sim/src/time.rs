//! Simulated-time primitives.
//!
//! All simulation time is expressed in integer **microseconds** to keep
//! arithmetic exact and runs reproducible. [`SimTime`] is a point on the
//! simulated timeline; [`SimDuration`] is a span between two points.
//! These are deliberate newtypes ([C-NEWTYPE]) so that slot counts,
//! wall-clock time, and simulated time can never be confused.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in simulated time, measured in microseconds since the start
/// of the simulation.
///
/// ```rust
/// use tagwatch_sim::time::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(250);
/// assert_eq!(t1.as_micros(), 250);
/// assert_eq!(t1 - t0, SimDuration::from_micros(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from microseconds since the origin.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since the origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the later of two time points.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (duration
    /// would be negative). Use [`SimTime::saturating_since`] when the
    /// ordering is not statically known.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration");
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, measured in microseconds.
///
/// Supports addition, scalar multiplication (`dur * n` for repeating a
/// slot `n` times), and summation over iterators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// The span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Integer division of two durations: how many `rhs`-sized spans fit
    /// in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is [`SimDuration::ZERO`].
    #[must_use]
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] otherwise.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(1_000);
        let d = SimDuration::from_micros(234);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_micros(), 1_234);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 4);
    }

    #[test]
    fn duration_scalar_multiplication() {
        let slot = SimDuration::from_micros(300);
        assert_eq!((slot * 10).as_micros(), 3_000);
    }

    #[test]
    fn duration_sum_over_iterator() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn div_duration_counts_whole_slots() {
        let budget = SimDuration::from_micros(1_000);
        let slot = SimDuration::from_micros(300);
        assert_eq!(budget.div_duration(slot), 3);
    }

    #[test]
    fn max_picks_later_point() {
        let a = SimTime::from_micros(7);
        let b = SimTime::from_micros(3);
        assert_eq!(a.max(b), a);
        assert_eq!(b.max(a), a);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(SimTime::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    #[should_panic(expected = "division by zero duration")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_micros(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn seconds_conversion() {
        assert!((SimDuration::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(250_000).as_secs_f64() - 0.25).abs() < 1e-12);
    }
}
