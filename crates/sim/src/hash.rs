//! The deterministic slot-pick hash `h(·)`.
//!
//! The protocols hinge on one observation (paper §4.1): a low-cost tag
//! picks its reply slot **deterministically** from its ID and the
//! broadcast nonce, `sn = h(id ⊕ r) mod f` — so a server that knows all
//! IDs can predict the entire frame. UTRP additionally folds the tag's
//! monotone counter in: `sn = h(id ⊕ r ⊕ ct) mod f`.
//!
//! The paper leaves `h` abstract; any uniform hash preserves the
//! analysis. We implement a splitmix64-style avalanche finalizer
//! in-repo (rather than `std::collections::hash_map::DefaultHasher`,
//! whose algorithm is explicitly not stable across Rust releases) so
//! that simulated tags and the server agree bit-for-bit and experiment
//! results are reproducible on any platform, forever.

use crate::ident::{FrameSize, Nonce, TagId};
use crate::tag::Counter;

/// One round of the splitmix64 avalanche finalizer.
///
/// This is the `mix` function from Steele, Lea & Flood's SplitMix
/// generator: two xor-shift-multiply rounds and a final xor-shift. It is
/// bijective on `u64` and passes avalanche tests, which is all the slot
/// hash requires.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Maps a 64-bit hash uniformly onto `[0, f)`.
///
/// Plain `h % f` is what the paper writes and its bias is at most
/// `f / 2⁶⁴` — utterly negligible for frames of a few thousand slots —
/// but we route every reduction through this one function so the choice
/// is documented and swappable.
#[inline]
#[must_use]
pub fn reduce(hash: u64, f: FrameSize) -> u64 {
    hash % f.get()
}

/// The slot a tag picks in a plain (TRP-style) frame:
/// `sn = h(id ⊕ r) mod f`, zero-based.
///
/// ```rust
/// use tagwatch_sim::{slot_for, FrameSize, Nonce, TagId};
///
/// let f = FrameSize::new(100)?;
/// let sn = slot_for(TagId::new(7), Nonce::new(42), f);
/// assert!(sn < 100);
/// // Determinism: the server can recompute the very same slot.
/// assert_eq!(sn, slot_for(TagId::new(7), Nonce::new(42), f));
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
#[inline]
#[must_use]
pub fn slot_for(id: TagId, r: Nonce, f: FrameSize) -> u64 {
    reduce(mix64(id.fold64() ^ r.as_u64()), f)
}

/// The slot a tag picks in a counter-mixed (UTRP-style) frame:
/// `sn = h(id ⊕ r ⊕ ct) mod f`, zero-based.
///
/// The counter is diffused with one extra [`mix64`] round before the
/// XOR so that `ct` and `ct + 1` produce unrelated slots even though
/// they differ in a single low bit.
#[inline]
#[must_use]
pub fn slot_for_counted(id: TagId, r: Nonce, ct: Counter, f: FrameSize) -> u64 {
    reduce(mix64(id.fold64() ^ r.as_u64() ^ mix64(ct.get())), f)
}

/// A reusable slot hasher carrying a domain-separation seed.
///
/// All protocol code in this workspace uses the [`slot_for`] /
/// [`slot_for_counted`] free functions (seed 0, matching the paper's
/// single shared `h`). `SlotHasher` exists for experiments that need
/// several *independent* hash functions — e.g. the cardinality-estimation
/// baseline re-hashes the same population across trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotHasher {
    seed: u64,
}

impl SlotHasher {
    /// Creates a hasher with the given domain-separation seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SlotHasher { seed }
    }

    /// The hasher's seed.
    #[must_use]
    pub const fn seed(self) -> u64 {
        self.seed
    }

    /// 64-bit hash of `(id, r)` under this seed.
    #[inline]
    #[must_use]
    pub fn hash(self, id: TagId, r: Nonce) -> u64 {
        mix64(id.fold64() ^ r.as_u64() ^ mix64(self.seed ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// Slot choice in `[0, f)` for a plain frame under this seed.
    #[inline]
    #[must_use]
    pub fn slot(self, id: TagId, r: Nonce, f: FrameSize) -> u64 {
        reduce(self.hash(id, r), f)
    }

    /// Slot choice in `[0, f)` with the UTRP counter mixed in.
    #[inline]
    #[must_use]
    pub fn slot_counted(self, id: TagId, r: Nonce, ct: Counter, f: FrameSize) -> u64 {
        reduce(self.hash(id, r) ^ mix64(ct.get()), f)
    }
}

/// The short random burst a tag transmits to claim a slot (paper
/// Alg. 2 line 5: "return some random bits").
///
/// Ten bits, per the RN16-style short replies of Gen-2 inventories
/// truncated to the paper's "much shorter than an ID" requirement. The
/// bits are derived from the tag's ID and nonce so that reruns are
/// reproducible; the *monitor never interprets them* — only their
/// presence in a slot matters.
#[inline]
#[must_use]
pub fn short_reply_bits(id: TagId, r: Nonce) -> u16 {
    (mix64(id.fold64().rotate_left(17) ^ r.as_u64()) & 0x3ff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_avalanches() {
        assert_eq!(mix64(0x1234), mix64(0x1234));
        // Flipping one input bit flips roughly half the output bits.
        let a = mix64(0x5555_5555);
        let b = mix64(0x5555_5554);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }

    #[test]
    fn mix64_zero_fixed_point_and_injectivity_sample() {
        // splitmix64's finalizer maps 0 to 0 (every step preserves 0);
        // protocol code therefore always XORs a non-zero constant or
        // nonce before mixing. Also spot-check injectivity on a range —
        // the finalizer is bijective, so no two inputs may collide.
        assert_eq!(mix64(0), 0);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn slot_is_stable_for_same_inputs() {
        let f = FrameSize::new(977).unwrap();
        let id = TagId::new(0xfeed_face);
        let r = Nonce::new(31337);
        assert_eq!(slot_for(id, r, f), slot_for(id, r, f));
    }

    #[test]
    fn slot_changes_with_nonce() {
        // The defence against replay: a fresh r re-randomizes every slot.
        let f = FrameSize::new(1024).unwrap();
        let id = TagId::new(99);
        let mut distinct = std::collections::HashSet::new();
        for r in 0..64u64 {
            distinct.insert(slot_for(id, Nonce::new(r), f));
        }
        assert!(distinct.len() > 32, "nonce barely moves the slot");
    }

    #[test]
    fn slot_within_frame_bounds() {
        for f_raw in [1u64, 2, 3, 10, 127, 1 << 20] {
            let f = FrameSize::new(f_raw).unwrap();
            for i in 0..200u64 {
                let sn = slot_for(TagId::from(i), Nonce::new(7), f);
                assert!(sn < f_raw);
            }
        }
    }

    #[test]
    fn counter_changes_slot() {
        // UTRP's anti-rewind property: advancing ct re-randomizes slots.
        let f = FrameSize::new(512).unwrap();
        let id = TagId::new(4242);
        let r = Nonce::new(1);
        let s0 = slot_for_counted(id, r, Counter::new(0), f);
        let mut moved = 0;
        for ct in 1..=32u64 {
            if slot_for_counted(id, r, Counter::new(ct), f) != s0 {
                moved += 1;
            }
        }
        assert!(moved >= 28, "counter barely moves the slot: {moved}/32");
    }

    #[test]
    fn slot_distribution_is_roughly_uniform() {
        // Chi-square-style sanity check: 100k tags into 100 slots.
        let f = FrameSize::new(100).unwrap();
        let n = 100_000u64;
        let mut counts = vec![0u64; 100];
        for i in 0..n {
            let sn = slot_for(TagId::from(i), Nonce::new(0xabcd), f) as usize;
            counts[sn] += 1;
        }
        let expected = (n / 100) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 degrees of freedom: mean 99, std ~14; 200 is ~7 sigma.
        assert!(chi2 < 200.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn seeded_hashers_are_independent() {
        let f = FrameSize::new(64).unwrap();
        let h1 = SlotHasher::new(1);
        let h2 = SlotHasher::new(2);
        let same = (0..256u64)
            .filter(|&i| {
                h1.slot(TagId::from(i), Nonce::new(0), f)
                    == h2.slot(TagId::from(i), Nonce::new(0), f)
            })
            .count();
        // Expect ~256/64 = 4 collisions by chance; 30 would mean the
        // seeds barely matter.
        assert!(same < 30, "seeds not independent: {same} agreements");
    }

    #[test]
    fn default_seeded_hasher_matches_free_function_domain() {
        // SlotHasher::new(0) need not equal slot_for (different domain
        // separation), but it must at least be deterministic.
        let f = FrameSize::new(101).unwrap();
        let h = SlotHasher::default();
        assert_eq!(
            h.slot(TagId::new(5), Nonce::new(6), f),
            h.slot(TagId::new(5), Nonce::new(6), f)
        );
        assert_eq!(h.seed(), 0);
    }

    #[test]
    fn short_reply_fits_ten_bits() {
        for i in 0..1000u64 {
            let bits = short_reply_bits(TagId::from(i), Nonce::new(3));
            assert!(bits < 1024);
        }
    }

    #[test]
    fn single_slot_frame_always_slot_zero() {
        assert_eq!(slot_for(TagId::new(123), Nonce::new(9), FrameSize::ONE), 0);
    }
}
