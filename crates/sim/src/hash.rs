//! The deterministic slot-pick hash `h(·)`.
//!
//! The protocols hinge on one observation (paper §4.1): a low-cost tag
//! picks its reply slot **deterministically** from its ID and the
//! broadcast nonce, `sn = h(id ⊕ r) mod f` — so a server that knows all
//! IDs can predict the entire frame. UTRP additionally folds the tag's
//! monotone counter in: `sn = h(id ⊕ r ⊕ ct) mod f`.
//!
//! The paper leaves `h` abstract; any uniform hash preserves the
//! analysis. We implement a splitmix64-style avalanche finalizer
//! in-repo (rather than `std::collections::hash_map::DefaultHasher`,
//! whose algorithm is explicitly not stable across Rust releases) so
//! that simulated tags and the server agree bit-for-bit and experiment
//! results are reproducible on any platform, forever.

use crate::ident::{FrameSize, Nonce, TagId};
use crate::tag::Counter;

/// One round of the splitmix64 avalanche finalizer.
///
/// This is the `mix` function from Steele, Lea & Flood's SplitMix
/// generator: two xor-shift-multiply rounds and a final xor-shift. It is
/// bijective on `u64` and passes avalanche tests, which is all the slot
/// hash requires.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Maps a 64-bit hash uniformly onto `[0, f)`.
///
/// Plain `h % f` is what the paper writes and its bias is at most
/// `f / 2⁶⁴` — utterly negligible for frames of a few thousand slots —
/// but we route every reduction through this one function so the choice
/// is documented and swappable.
#[inline]
#[must_use]
pub fn reduce(hash: u64, f: FrameSize) -> u64 {
    hash % f.get()
}

/// The slot a tag picks in a plain (TRP-style) frame:
/// `sn = h(id ⊕ r) mod f`, zero-based.
///
/// ```rust
/// use tagwatch_sim::{slot_for, FrameSize, Nonce, TagId};
///
/// let f = FrameSize::new(100)?;
/// let sn = slot_for(TagId::new(7), Nonce::new(42), f);
/// assert!(sn < 100);
/// // Determinism: the server can recompute the very same slot.
/// assert_eq!(sn, slot_for(TagId::new(7), Nonce::new(42), f));
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
#[inline]
#[must_use]
pub fn slot_for(id: TagId, r: Nonce, f: FrameSize) -> u64 {
    reduce(mix64(id.fold64() ^ r.as_u64()), f)
}

/// The slot a tag picks in a counter-mixed (UTRP-style) frame:
/// `sn = h(id ⊕ r ⊕ ct) mod f`, zero-based.
///
/// The counter is diffused with one extra [`mix64`] round before the
/// XOR so that `ct` and `ct + 1` produce unrelated slots even though
/// they differ in a single low bit.
#[inline]
#[must_use]
pub fn slot_for_counted(id: TagId, r: Nonce, ct: Counter, f: FrameSize) -> u64 {
    reduce(mix64(id.fold64() ^ r.as_u64() ^ mix64(ct.get())), f)
}

/// A precomputed divisor that evaluates `x % f` without a hardware
/// divide, bit-identical to the `%` operator.
///
/// The round engines evaluate [`reduce`] once per active tag per
/// announcement — millions of times per large round — and a 64-bit
/// integer divide by a runtime divisor is the single slowest ALU op on
/// that path (tens of cycles, not pipelined). `FastMod` hoists the
/// divisor work out of the loop using Lemire's exact remainder method
/// (Lemire, Kaser & Kurz, *"Faster remainders when the divisor is a
/// constant"*, 2019): precompute `M = ⌈2¹²⁸ / f⌉` once per frame, then
///
/// ```text
/// x mod f = (((M · x) mod 2¹²⁸) · f) >> 128
/// ```
///
/// which is three 64×64→128 multiplies per evaluation. The identity is
/// *exact* for every `x: u64` and every divisor `f ≥ 1` — this is not an
/// approximate multiply-shift reduction — so bitstrings, soak digests,
/// and every recorded experiment stay byte-identical to the plain `%`
/// path. The `f = 1` edge case falls out naturally: `M` wraps to 0, the
/// product is 0, and the remainder is 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMod {
    divisor: u64,
    magic: u128,
}

impl FastMod {
    /// Precomputes the magic constant for reductions modulo `f`.
    #[must_use]
    pub const fn new(f: FrameSize) -> Self {
        Self::from_divisor(f.get())
    }

    /// Precomputes the magic constant for an arbitrary non-zero divisor.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0` (a frame always has at least one slot).
    #[must_use]
    pub const fn from_divisor(divisor: u64) -> Self {
        assert!(divisor != 0, "FastMod divisor must be non-zero");
        // ⌈2¹²⁸ / d⌉ = ⌊(2¹²⁸ − 1) / d⌋ + 1 for d > 1; for d = 1 the
        // `+ 1` wraps to 0, which the multiply then annihilates — the
        // correct remainder (always 0) with no branch.
        let magic = (u128::MAX / divisor as u128).wrapping_add(1);
        FastMod { divisor, magic }
    }

    /// The divisor this reducer was built for.
    #[must_use]
    pub const fn divisor(self) -> u64 {
        self.divisor
    }

    /// Computes `x % divisor`, bit-identical to the `%` operator.
    #[inline]
    #[must_use]
    pub const fn rem(self, x: u64) -> u64 {
        self.rem_of_frac(self.frac(x))
    }

    /// The Lemire fraction `(M · x) mod 2¹²⁸` — the intermediate of
    /// [`FastMod::rem`], exposed so hot loops can split the reduction:
    /// compute the fraction (two multiplies), test it against
    /// [`FastMod::candidate_threshold`], and only finish with
    /// [`FastMod::rem_of_frac`] (two more multiplies) when the value can
    /// still matter.
    #[inline]
    #[must_use]
    pub const fn frac(self, x: u64) -> u128 {
        self.magic.wrapping_mul(x as u128)
    }

    /// Completes a reduction started by [`FastMod::frac`]:
    /// `rem_of_frac(frac(x)) == x % divisor` for every `x`.
    #[inline]
    #[must_use]
    pub const fn rem_of_frac(self, frac: u128) -> u64 {
        // ⌊(frac · d) / 2¹²⁸⌋ with d: u64, via two 64×64→128 limbs:
        // frac = hi·2⁶⁴ + lo ⇒ (frac·d) >> 128 = (hi·d + ((lo·d) >> 64)) >> 64.
        let d = self.divisor as u128;
        let lo_prod = (frac as u64 as u128 * d) >> 64;
        let hi_prod = (frac >> 64) * d;
        ((hi_prod + lo_prod) >> 64) as u64
    }

    /// The largest Lemire fraction that can still reduce to a remainder
    /// `≤ bound`: if `frac(x) > candidate_threshold(bound)` then
    /// `x % divisor > bound`, **guaranteed**. The converse does not hold
    /// — a fraction at or below the threshold may still reduce above
    /// `bound` — so callers must treat sub-threshold values as
    /// *candidates* and verify them with [`FastMod::rem_of_frac`]. Used
    /// as a conservative pre-filter, the split is therefore bit-identical
    /// to calling [`FastMod::rem`] on every value.
    ///
    /// Soundness: `M ≥ 2¹²⁸ / d`, so `frac ≥ (bound+1) · M` implies
    /// `frac · d ≥ (bound+1) · 2¹²⁸`, i.e. `rem = ⌊frac · d / 2¹²⁸⌋ ≥
    /// bound + 1`. The threshold is `(bound+1) · M − 1`, so `frac >
    /// threshold` is exactly that condition. When every remainder is
    /// trivially `≤ bound` (`bound ≥ d − 1`, including `d = 1` where `M`
    /// wrapped to 0) the threshold is `u128::MAX`, which no fraction
    /// exceeds — everything stays a candidate.
    #[inline]
    #[must_use]
    pub const fn candidate_threshold(self, bound: u64) -> u128 {
        if self.magic == 0 || bound >= self.divisor - 1 {
            return u128::MAX;
        }
        // bound + 1 ≤ d − 1 and M·(d−1) < 2¹²⁸ for every u64 divisor
        // (since (d−1)² < 2¹²⁸), so the product cannot overflow; the
        // checked form guards the argument anyway — an overflow would
        // silently truncate the threshold and drop true candidates.
        match self.magic.checked_mul(bound as u128 + 1) {
            Some(t) => t - 1,
            None => u128::MAX,
        }
    }
}

/// A reusable slot hasher carrying a domain-separation seed.
///
/// All protocol code in this workspace uses the [`slot_for`] /
/// [`slot_for_counted`] free functions (seed 0, matching the paper's
/// single shared `h`). `SlotHasher` exists for experiments that need
/// several *independent* hash functions — e.g. the cardinality-estimation
/// baseline re-hashes the same population across trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotHasher {
    seed: u64,
}

impl SlotHasher {
    /// Creates a hasher with the given domain-separation seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SlotHasher { seed }
    }

    /// The hasher's seed.
    #[must_use]
    pub const fn seed(self) -> u64 {
        self.seed
    }

    /// 64-bit hash of `(id, r)` under this seed.
    #[inline]
    #[must_use]
    pub fn hash(self, id: TagId, r: Nonce) -> u64 {
        mix64(id.fold64() ^ r.as_u64() ^ mix64(self.seed ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// Slot choice in `[0, f)` for a plain frame under this seed.
    #[inline]
    #[must_use]
    pub fn slot(self, id: TagId, r: Nonce, f: FrameSize) -> u64 {
        reduce(self.hash(id, r), f)
    }

    /// Slot choice in `[0, f)` with the UTRP counter mixed in.
    #[inline]
    #[must_use]
    pub fn slot_counted(self, id: TagId, r: Nonce, ct: Counter, f: FrameSize) -> u64 {
        reduce(self.hash(id, r) ^ mix64(ct.get()), f)
    }
}

/// The short random burst a tag transmits to claim a slot (paper
/// Alg. 2 line 5: "return some random bits").
///
/// Ten bits, per the RN16-style short replies of Gen-2 inventories
/// truncated to the paper's "much shorter than an ID" requirement. The
/// bits are derived from the tag's ID and nonce so that reruns are
/// reproducible; the *monitor never interprets them* — only their
/// presence in a slot matters.
#[inline]
#[must_use]
pub fn short_reply_bits(id: TagId, r: Nonce) -> u16 {
    (mix64(id.fold64().rotate_left(17) ^ r.as_u64()) & 0x3ff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_avalanches() {
        assert_eq!(mix64(0x1234), mix64(0x1234));
        // Flipping one input bit flips roughly half the output bits.
        let a = mix64(0x5555_5555);
        let b = mix64(0x5555_5554);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }

    #[test]
    fn mix64_zero_fixed_point_and_injectivity_sample() {
        // splitmix64's finalizer maps 0 to 0 (every step preserves 0);
        // protocol code therefore always XORs a non-zero constant or
        // nonce before mixing. Also spot-check injectivity on a range —
        // the finalizer is bijective, so no two inputs may collide.
        assert_eq!(mix64(0), 0);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn slot_is_stable_for_same_inputs() {
        let f = FrameSize::new(977).unwrap();
        let id = TagId::new(0xfeed_face);
        let r = Nonce::new(31337);
        assert_eq!(slot_for(id, r, f), slot_for(id, r, f));
    }

    #[test]
    fn slot_changes_with_nonce() {
        // The defence against replay: a fresh r re-randomizes every slot.
        let f = FrameSize::new(1024).unwrap();
        let id = TagId::new(99);
        let mut distinct = std::collections::HashSet::new();
        for r in 0..64u64 {
            distinct.insert(slot_for(id, Nonce::new(r), f));
        }
        assert!(distinct.len() > 32, "nonce barely moves the slot");
    }

    #[test]
    fn slot_within_frame_bounds() {
        for f_raw in [1u64, 2, 3, 10, 127, 1 << 20] {
            let f = FrameSize::new(f_raw).unwrap();
            for i in 0..200u64 {
                let sn = slot_for(TagId::from(i), Nonce::new(7), f);
                assert!(sn < f_raw);
            }
        }
    }

    #[test]
    fn counter_changes_slot() {
        // UTRP's anti-rewind property: advancing ct re-randomizes slots.
        let f = FrameSize::new(512).unwrap();
        let id = TagId::new(4242);
        let r = Nonce::new(1);
        let s0 = slot_for_counted(id, r, Counter::new(0), f);
        let mut moved = 0;
        for ct in 1..=32u64 {
            if slot_for_counted(id, r, Counter::new(ct), f) != s0 {
                moved += 1;
            }
        }
        assert!(moved >= 28, "counter barely moves the slot: {moved}/32");
    }

    #[test]
    fn slot_distribution_is_roughly_uniform() {
        // Chi-square-style sanity check: 100k tags into 100 slots.
        let f = FrameSize::new(100).unwrap();
        let n = 100_000u64;
        let mut counts = vec![0u64; 100];
        for i in 0..n {
            let sn = slot_for(TagId::from(i), Nonce::new(0xabcd), f) as usize;
            counts[sn] += 1;
        }
        let expected = (n / 100) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 degrees of freedom: mean 99, std ~14; 200 is ~7 sigma.
        assert!(chi2 < 200.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn seeded_hashers_are_independent() {
        let f = FrameSize::new(64).unwrap();
        let h1 = SlotHasher::new(1);
        let h2 = SlotHasher::new(2);
        let same = (0..256u64)
            .filter(|&i| {
                h1.slot(TagId::from(i), Nonce::new(0), f)
                    == h2.slot(TagId::from(i), Nonce::new(0), f)
            })
            .count();
        // Expect ~256/64 = 4 collisions by chance; 30 would mean the
        // seeds barely matter.
        assert!(same < 30, "seeds not independent: {same} agreements");
    }

    #[test]
    fn default_seeded_hasher_matches_free_function_domain() {
        // SlotHasher::new(0) need not equal slot_for (different domain
        // separation), but it must at least be deterministic.
        let f = FrameSize::new(101).unwrap();
        let h = SlotHasher::default();
        assert_eq!(
            h.slot(TagId::new(5), Nonce::new(6), f),
            h.slot(TagId::new(5), Nonce::new(6), f)
        );
        assert_eq!(h.seed(), 0);
    }

    #[test]
    fn short_reply_fits_ten_bits() {
        for i in 0..1000u64 {
            let bits = short_reply_bits(TagId::from(i), Nonce::new(3));
            assert!(bits < 1024);
        }
    }

    #[test]
    fn single_slot_frame_always_slot_zero() {
        assert_eq!(slot_for(TagId::new(123), Nonce::new(9), FrameSize::ONE), 0);
    }

    #[test]
    fn fastmod_matches_operator_on_edge_divisors() {
        let divisors = [
            1u64,
            2,
            3,
            4,
            5,
            7,
            8,
            16,
            255,
            256,
            257,
            977,
            1 << 20,
            (1 << 20) + 1,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let xs = [
            0u64,
            1,
            2,
            3,
            255,
            256,
            977,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &d in &divisors {
            let fm = FastMod::from_divisor(d);
            assert_eq!(fm.divisor(), d);
            for &x in &xs {
                assert_eq!(fm.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn fastmod_matches_operator_on_random_pairs() {
        // Deterministic pseudo-random sweep: every (x, d) pair drawn from
        // the avalanche hash, including divisors near powers of two where
        // approximate reductions break.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for i in 0..200_000u64 {
            state = mix64(state ^ i);
            let x = state;
            state = mix64(state ^ 0x9e37_79b9_7f4a_7c15);
            let mut d = state;
            if i % 3 == 0 {
                // Cluster around powers of two ±1.
                let shift = (state % 63) as u32 + 1;
                d = (1u64 << shift).wrapping_add((state >> 32) % 3).max(1);
            }
            if d == 0 {
                d = 1;
            }
            assert_eq!(FastMod::from_divisor(d).rem(x), x % d, "x={x} d={d}");
        }
    }

    #[test]
    fn frac_and_rem_of_frac_compose_to_rem() {
        let mut state = 0x1bd1_1bda_a9fc_1a22u64;
        for _ in 0..20_000 {
            state = mix64(state ^ 0x9e37_79b9_7f4a_7c15);
            let x = state;
            state = mix64(state);
            let d = state.max(1);
            let fm = FastMod::from_divisor(d);
            assert_eq!(fm.rem_of_frac(fm.frac(x)), x % d, "x={x} d={d}");
        }
    }

    #[test]
    fn candidate_threshold_never_skips_a_true_candidate() {
        // The load-bearing guarantee: frac > threshold(bound) must imply
        // rem > bound, for every (x, d, bound). Equivalently no value
        // with rem <= bound may exceed the threshold. Sweep small
        // divisors exhaustively-ish and large ones pseudo-randomly.
        let mut state = 0x8cb9_2ba7_2f3d_8dd7u64;
        for _ in 0..50_000 {
            state = mix64(state ^ 1);
            let x = state;
            state = mix64(state ^ 2);
            let d = (state % 3000).max(1);
            state = mix64(state ^ 3);
            let bound = state % d.max(2);
            let fm = FastMod::from_divisor(d);
            if fm.frac(x) > fm.candidate_threshold(bound) {
                assert!(x % d > bound, "skipped x={x} d={d} bound={bound}");
            }
        }
        // Huge divisors (overflow-adjacent thresholds).
        for d in [u64::MAX, u64::MAX - 1, 1u64 << 63, (1 << 63) + 1] {
            let fm = FastMod::from_divisor(d);
            for i in 0..2_000u64 {
                let x = mix64(i ^ d);
                let bound = mix64(i) % d;
                if fm.frac(x) > fm.candidate_threshold(bound) {
                    assert!(x % d > bound, "skipped x={x} d={d} bound={bound}");
                }
            }
        }
    }

    #[test]
    fn candidate_threshold_degenerate_cases_keep_everything_candidate() {
        // d = 1: every remainder is 0 <= bound, so nothing may be
        // skipped; magic wrapped to 0 makes the threshold MAX.
        assert_eq!(FastMod::from_divisor(1).candidate_threshold(0), u128::MAX);
        // bound >= d - 1: remainders are always <= bound.
        assert_eq!(FastMod::from_divisor(64).candidate_threshold(63), u128::MAX);
        assert_eq!(FastMod::from_divisor(64).candidate_threshold(99), u128::MAX);
        // The filter still prunes for a meaningful bound.
        let fm = FastMod::from_divisor(1024);
        assert!(fm.candidate_threshold(0) < u128::MAX / 512);
    }

    #[test]
    fn fastmod_agrees_with_reduce_for_frame_sizes() {
        for f_raw in [1u64, 2, 3, 10, 127, 977, 1 << 20] {
            let f = FrameSize::new(f_raw).unwrap();
            let fm = FastMod::new(f);
            for i in 0..500u64 {
                let h = mix64(i ^ 0xdead_beef);
                assert_eq!(fm.rem(h), reduce(h, f));
            }
        }
    }

    #[test]
    fn seeded_slot_counted_mixes_the_counter() {
        let h = SlotHasher::new(42);
        let f = FrameSize::new(977).unwrap();
        let id = TagId::new(0xfeed_face);
        let r = Nonce::new(31337);
        // Counter::ZERO mixes mix64(0) == 0, so the counted slot
        // degenerates to the plain one — counter-oblivious TRP code and
        // counter-bearing UTRP code agree at the zero point.
        assert_eq!(h.slot_counted(id, r, Counter::ZERO, f), h.slot(id, r, f));
        // A nonzero counter re-randomizes the choice (the whole point
        // of Alg. 7: rescans land elsewhere), staying inside the frame.
        let mut moved = false;
        for ct in 1..=64u64 {
            let s = h.slot_counted(id, r, Counter::new(ct), f);
            assert!(s < f.get());
            moved |= s != h.slot(id, r, f);
        }
        assert!(moved, "64 consecutive counters never moved the slot");
    }
}
