//! Identity and protocol-parameter newtypes shared by all crates.
//!
//! * [`TagId`] — a 96-bit EPC-style tag identifier.
//! * [`Nonce`] — the per-frame random number `r` broadcast by the reader.
//! * [`FrameSize`] — a validated framed-slotted-ALOHA frame size `f`.

use std::fmt;
use std::num::NonZeroU64;
use std::str::FromStr;

use crate::error::SimError;

/// A 96-bit EPC-style tag identifier.
///
/// EPC Class-1 Gen-2 tags carry a 96-bit Electronic Product Code; we
/// store it in the low 96 bits of a `u128`. The monitoring protocols
/// never transmit this ID over the air — that is the point of the paper —
/// but the *server* hashes it to predict slot choices.
///
/// ```rust
/// use tagwatch_sim::TagId;
///
/// let id = TagId::new(0xABCD_0123);
/// assert_eq!(id.as_u128(), 0xABCD_0123);
/// assert_eq!(id.to_string(), "epc:000000000000000abcd0123");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TagId(u128);

impl TagId {
    /// Number of significant bits in an EPC-96 identifier.
    pub const BITS: u32 = 96;

    /// Mask of the valid 96 ID bits.
    pub const MASK: u128 = (1u128 << 96) - 1;

    /// Creates a tag ID from a raw value.
    ///
    /// Bits above the 96th are silently masked off so that every
    /// constructed `TagId` is a valid EPC-96 code.
    #[must_use]
    pub const fn new(raw: u128) -> Self {
        TagId(raw & Self::MASK)
    }

    /// The identifier as an unsigned integer (96 significant bits).
    #[must_use]
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Folds the 96-bit ID into 64 bits for hashing.
    ///
    /// The fold XORs the high and low halves, which preserves uniformity
    /// of uniformly random IDs and keeps sequential IDs distinct.
    #[must_use]
    pub const fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epc:{:023x}", self.0)
    }
}

impl From<u64> for TagId {
    fn from(raw: u64) -> Self {
        TagId::new(raw as u128)
    }
}

impl FromStr for TagId {
    type Err = std::num::ParseIntError;

    /// Parses either the canonical `epc:<hex>` form produced by
    /// [`Display`](fmt::Display) or a bare hexadecimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex = s.strip_prefix("epc:").unwrap_or(s);
        u128::from_str_radix(hex, 16).map(TagId::new)
    }
}

/// The per-frame random number `r` chosen by the server and broadcast by
/// the reader along with the frame size.
///
/// Tags mix the nonce into their slot hash: `sn = h(id ⊕ r) mod f`.
/// In UTRP the server pre-commits a whole *sequence* of nonces
/// `(r₁, …, r_f)`, one for each potential re-seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nonce(u64);

impl Nonce {
    /// Creates a nonce from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Nonce(raw)
    }

    /// The raw nonce value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r:{:016x}", self.0)
    }
}

impl From<u64> for Nonce {
    fn from(raw: u64) -> Self {
        Nonce(raw)
    }
}

/// A validated framed-slotted-ALOHA frame size `f` (number of slots).
///
/// Always at least 1 and at most [`FrameSize::MAX`]; the protocol math
/// indexes slots with `u64` and allocates `f`-slot vectors, so the cap
/// keeps a typo from allocating terabytes.
///
/// ```rust
/// use tagwatch_sim::FrameSize;
///
/// let f = FrameSize::new(128)?;
/// assert_eq!(f.get(), 128);
/// assert!(FrameSize::new(0).is_err());
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameSize(NonZeroU64);

impl FrameSize {
    /// Largest supported frame: 2²⁴ slots (~16.7 million), far above any
    /// frame the sizing math produces for realistic populations.
    pub const MAX: u64 = 1 << 24;

    /// The single-slot frame.
    pub const ONE: FrameSize = FrameSize(match NonZeroU64::new(1) {
        Some(v) => v,
        None => unreachable!(),
    });

    /// Creates a validated frame size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyFrame`] if `slots == 0`, or
    /// [`SimError::FrameTooLarge`] if `slots > FrameSize::MAX`.
    pub fn new(slots: u64) -> Result<Self, SimError> {
        if slots > Self::MAX {
            return Err(SimError::FrameTooLarge { requested: slots });
        }
        NonZeroU64::new(slots)
            .map(FrameSize)
            .ok_or(SimError::EmptyFrame)
    }

    /// The number of slots in the frame.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0.get()
    }

    /// The number of slots as a `usize` for indexing.
    ///
    /// Infallible because [`FrameSize::MAX`] fits in `usize` on all
    /// supported platforms (64-bit and 32-bit).
    #[must_use]
    pub fn as_usize(self) -> usize {
        // Lossless: construction caps the value at MAX = 2^24, which
        // fits usize on every supported (32/64-bit) platform.
        self.0.get() as usize
    }

    /// Shrinks the frame by `used` slots (the UTRP re-seed rule: the new
    /// frame is the number of slots remaining in the old one).
    ///
    /// Returns `None` when no slots would remain.
    #[must_use]
    pub fn shrink_by(self, used: u64) -> Option<FrameSize> {
        let remaining = self.get().checked_sub(used)?;
        NonZeroU64::new(remaining).map(FrameSize)
    }
}

impl fmt::Display for FrameSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots", self.0)
    }
}

impl TryFrom<u64> for FrameSize {
    type Error = SimError;

    fn try_from(slots: u64) -> Result<Self, Self::Error> {
        FrameSize::new(slots)
    }
}

impl From<FrameSize> for u64 {
    fn from(f: FrameSize) -> u64 {
        f.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_id_masks_to_96_bits() {
        let id = TagId::new(u128::MAX);
        assert_eq!(id.as_u128(), TagId::MASK);
        assert_eq!(id.as_u128() >> 96, 0);
    }

    #[test]
    fn tag_id_display_parse_round_trip() {
        for raw in [0u128, 1, 0xdead_beef, TagId::MASK] {
            let id = TagId::new(raw);
            let parsed: TagId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn tag_id_parses_bare_hex() {
        let id: TagId = "ff".parse().unwrap();
        assert_eq!(id.as_u128(), 0xff);
    }

    #[test]
    fn tag_id_rejects_garbage() {
        assert!("not-hex".parse::<TagId>().is_err());
    }

    #[test]
    fn fold64_keeps_sequential_ids_distinct() {
        let a = TagId::new(1).fold64();
        let b = TagId::new(2).fold64();
        assert_ne!(a, b);
    }

    #[test]
    fn fold64_xors_halves() {
        let id = TagId::new((3u128 << 64) | 5u128);
        assert_eq!(id.fold64(), 3 ^ 5);
    }

    #[test]
    fn frame_size_validates_bounds() {
        assert_eq!(FrameSize::new(0).unwrap_err(), SimError::EmptyFrame);
        assert!(FrameSize::new(1).is_ok());
        assert!(FrameSize::new(FrameSize::MAX).is_ok());
        assert_eq!(
            FrameSize::new(FrameSize::MAX + 1).unwrap_err(),
            SimError::FrameTooLarge {
                requested: FrameSize::MAX + 1
            }
        );
    }

    #[test]
    fn frame_size_shrink_follows_reseed_rule() {
        // Paper example (§5.2): f = 10, first slot answered, new f = 9.
        let f = FrameSize::new(10).unwrap();
        assert_eq!(f.shrink_by(1), Some(FrameSize::new(9).unwrap()));
        assert_eq!(f.shrink_by(10), None);
        assert_eq!(f.shrink_by(11), None);
    }

    #[test]
    fn frame_size_conversions() {
        let f = FrameSize::try_from(64u64).unwrap();
        assert_eq!(u64::from(f), 64);
        assert_eq!(f.as_usize(), 64);
        assert_eq!(f.to_string(), "64 slots");
    }

    #[test]
    fn nonce_round_trip() {
        let r = Nonce::new(0x0123_4567_89ab_cdef);
        assert_eq!(r.as_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(Nonce::from(5u64), Nonce::new(5));
        assert_eq!(r.to_string(), "r:0123456789abcdef");
    }

    #[test]
    fn frame_size_one_constant() {
        assert_eq!(FrameSize::ONE.get(), 1);
    }
}
