//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulation substrate.
///
/// All public fallible operations in this crate return
/// `Result<_, SimError>`. The type is `Send + Sync + 'static` so it can
/// flow through threaded Monte-Carlo harnesses unchanged.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A frame size of zero was requested; a frame must have at least
    /// one slot.
    EmptyFrame,
    /// A frame size exceeded the supported maximum
    /// ([`crate::ident::FrameSize::MAX`]).
    FrameTooLarge {
        /// The rejected frame size.
        requested: u64,
    },
    /// A slot index was outside the current frame.
    SlotOutOfRange {
        /// The rejected slot index.
        slot: u64,
        /// The frame size it was checked against.
        frame: u64,
    },
    /// A tag population was required to be non-empty.
    EmptyPopulation,
    /// Asked to remove more tags than the population holds.
    NotEnoughTags {
        /// Number of tags requested for removal.
        requested: usize,
        /// Number of tags actually present.
        available: usize,
    },
    /// A duplicate tag ID was inserted into a population that requires
    /// unique IDs.
    DuplicateTagId {
        /// The offending ID, in canonical hex form.
        id: String,
    },
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An SGTIN-96 field exceeded its encodable range.
    SgtinOutOfRange {
        /// Name of the field.
        field: &'static str,
        /// The rejected value.
        value: u128,
        /// Width available for the field, in bits.
        max_bits: u32,
    },
    /// A tag ID was decoded as SGTIN-96 but does not carry the SGTIN-96
    /// header (or uses an undefined partition).
    NotSgtin {
        /// The header byte found.
        header: u8,
    },
    /// The event queue was asked to schedule an event in the past.
    ScheduleInPast {
        /// Current simulation time in microseconds.
        now_micros: u64,
        /// Requested (earlier) activation time in microseconds.
        at_micros: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyFrame => write!(f, "frame size must be at least one slot"),
            SimError::FrameTooLarge { requested } => {
                write!(f, "frame size {requested} exceeds the supported maximum")
            }
            SimError::SlotOutOfRange { slot, frame } => {
                write!(f, "slot index {slot} outside frame of {frame} slots")
            }
            SimError::EmptyPopulation => write!(f, "tag population is empty"),
            SimError::NotEnoughTags {
                requested,
                available,
            } => write!(
                f,
                "cannot remove {requested} tags from a population of {available}"
            ),
            SimError::DuplicateTagId { id } => {
                write!(f, "duplicate tag id {id} in population")
            }
            SimError::InvalidProbability { name, value } => {
                write!(f, "probability parameter `{name}` = {value} not in [0, 1]")
            }
            SimError::SgtinOutOfRange {
                field,
                value,
                max_bits,
            } => write!(
                f,
                "sgtin-96 field `{field}` = {value} does not fit in {max_bits} bits"
            ),
            SimError::NotSgtin { header } => write!(
                f,
                "tag id header {header:#04x} is not sgtin-96 (expected 0x30)"
            ),
            SimError::ScheduleInPast {
                now_micros,
                at_micros,
            } => write!(
                f,
                "cannot schedule event at t={at_micros}us before current time t={now_micros}us"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let errors = [
            SimError::EmptyFrame,
            SimError::FrameTooLarge { requested: 1 << 40 },
            SimError::SlotOutOfRange { slot: 9, frame: 4 },
            SimError::EmptyPopulation,
            SimError::NotEnoughTags {
                requested: 5,
                available: 3,
            },
            SimError::DuplicateTagId {
                id: "0xdeadbeef".to_owned(),
            },
            SimError::InvalidProbability {
                name: "loss",
                value: 1.5,
            },
            SimError::ScheduleInPast {
                now_micros: 10,
                at_micros: 3,
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'), "trailing punctuation in: {text}");
            let first = text.chars().next().unwrap();
            assert!(first.is_lowercase(), "should start lowercase: {text}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(SimError::EmptyFrame);
        assert!(e.source().is_none());
    }
}
