//! Markov-modulated channel evolution for long-horizon soak runs.
//!
//! A single [`ChannelConfig`] models one
//! *stationary* radio environment. Real deployments drift: a loading
//! dock is quiet at night, noisy when forklifts run, and occasionally
//! terrible during a thunderstorm. [`MarkovChannel`] models that drift
//! as a discrete-time Markov chain over a small set of **named levels**,
//! each carrying its own channel configuration; one [`step`] per
//! monitoring tick samples the next level from the current row of the
//! transition matrix.
//!
//! The [`presets`](MarkovChannel::presets) chain intentionally keeps
//! `downlink_loss_prob` at zero in every level: downlink announcement
//! loss is the source of counter desynchronization, and a soak driver
//! that wants to *verify* quarantine convergence must know exactly which
//! tags were desynchronized. Scripted [`FaultPlan`](crate::fault)
//! bursts provide that; the Markov levels only modulate **uplink**
//! noise (reply loss, phantom energy, capture), whose worst case is a
//! false alarm — never a silent false "intact".
//!
//! [`step`]: MarkovChannel::step

use rand::Rng;

use crate::error::SimError;
use crate::radio::{Channel, ChannelConfig};

/// One named channel state of a [`MarkovChannel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLevel {
    /// Human-readable level name (appears in soak event logs).
    pub name: String,
    /// The radio environment while the chain sits in this level.
    pub config: ChannelConfig,
}

impl ChannelLevel {
    /// Creates a level.
    #[must_use]
    pub fn new(name: impl Into<String>, config: ChannelConfig) -> Self {
        ChannelLevel {
            name: name.into(),
            config,
        }
    }
}

/// A discrete-time Markov chain over channel quality levels.
///
/// Construction validates the whole model once (row-stochastic
/// transition matrix, valid probabilities in every level), so stepping
/// and sampling never fail afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChannel {
    levels: Vec<ChannelLevel>,
    /// Row-major transition probabilities: `transitions[i][j]` is the
    /// probability of moving from level `i` to level `j` in one step.
    transitions: Vec<Vec<f64>>,
    state: usize,
}

impl MarkovChannel {
    /// Builds a chain from levels, a transition matrix, and an initial
    /// state index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] if any level's channel
    /// knobs are invalid, the matrix is not square over the levels, a
    /// row does not sum to 1 (within `1e-9`), or `initial` is out of
    /// range.
    pub fn new(
        levels: Vec<ChannelLevel>,
        transitions: Vec<Vec<f64>>,
        initial: usize,
    ) -> Result<Self, SimError> {
        let n = levels.len();
        if n == 0 || initial >= n || transitions.len() != n {
            return Err(SimError::InvalidProbability {
                name: "markov_shape",
                value: n as f64,
            });
        }
        for level in &levels {
            level.config.validate()?;
        }
        for row in &transitions {
            if row.len() != n {
                return Err(SimError::InvalidProbability {
                    name: "markov_row_len",
                    value: row.len() as f64,
                });
            }
            let mut sum = 0.0;
            for &p in row {
                if !(0.0..=1.0).contains(&p) || p.is_nan() {
                    return Err(SimError::InvalidProbability {
                        name: "markov_transition",
                        value: p,
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(SimError::InvalidProbability {
                    name: "markov_row_sum",
                    value: sum,
                });
            }
        }
        Ok(MarkovChannel {
            levels,
            transitions,
            state: initial,
        })
    }

    /// The calm / degraded / storm preset used by the soak driver.
    ///
    /// * **calm** — the ideal channel (all knobs zero); the chain's
    ///   stationary majority. Monitoring in calm must be silent.
    /// * **degraded** — mild uplink reply loss with occasional phantom
    ///   energy: the tolerance-`m` regime, where false alarms are rare
    ///   but possible.
    /// * **storm** — heavy uplink loss and phantom bursts: rounds alarm
    ///   frequently, exercising the escalation and audit ladders.
    ///
    /// All levels keep `downlink_loss_prob = 0` so the only counter
    /// desynchronization in a soak run is scripted (see module docs).
    #[must_use]
    pub fn presets() -> Self {
        let calm = ChannelLevel::new("calm", ChannelConfig::default());
        let degraded = ChannelLevel::new(
            "degraded",
            ChannelConfig {
                reply_loss_prob: 0.01,
                phantom_reply_prob: 0.002,
                capture_prob: 0.1,
                downlink_loss_prob: 0.0,
            },
        );
        let storm = ChannelLevel::new(
            "storm",
            ChannelConfig {
                reply_loss_prob: 0.08,
                phantom_reply_prob: 0.02,
                capture_prob: 0.25,
                downlink_loss_prob: 0.0,
            },
        );
        MarkovChannel::new(
            vec![calm, degraded, storm],
            vec![
                vec![0.90, 0.09, 0.01],
                vec![0.30, 0.60, 0.10],
                vec![0.10, 0.40, 0.50],
            ],
            0,
        )
        // lint:allow(s2-panic): the preset matrix is a compile-time constant whose rows sum to 1; validity is pinned by unit tests
        .expect("preset matrix is valid")
    }

    /// The current level index.
    #[must_use]
    pub fn state(&self) -> usize {
        self.state
    }

    /// The current level.
    #[must_use]
    pub fn level(&self) -> &ChannelLevel {
        &self.levels[self.state]
    }

    /// All levels, in matrix order.
    #[must_use]
    pub fn levels(&self) -> &[ChannelLevel] {
        &self.levels
    }

    /// A [`Channel`] for the current level.
    #[must_use]
    pub fn channel(&self) -> Channel {
        // lint:allow(s2-panic): every level config was validated by MarkovChannel::new before being stored, and levels are immutable afterwards
        Channel::with_config(self.level().config).expect("validated at construction")
    }

    /// Restores the chain to a previously observed level index, for
    /// warm restart from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] (name `markov_state`)
    /// if `state` is not a valid level index, as read from a corrupted
    /// checkpoint.
    pub fn restore_state(&mut self, state: usize) -> Result<(), SimError> {
        if state >= self.levels.len() {
            return Err(SimError::InvalidProbability {
                name: "markov_state",
                value: state as f64,
            });
        }
        self.state = state;
        Ok(())
    }

    /// Advances the chain one step and returns the new level.
    ///
    /// Always consumes exactly one `f64` draw from `rng`, regardless of
    /// which transition fires, so seeded runs stay reproducible even
    /// when the model changes shape.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &ChannelLevel {
        let draw: f64 = rng.gen();
        let row = &self.transitions[self.state];
        let mut acc = 0.0;
        let mut next = row.len() - 1;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if draw < acc {
                next = j;
                break;
            }
        }
        self.state = next;
        self.level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_validate_and_start_calm() {
        let chain = MarkovChannel::presets();
        assert_eq!(chain.level().name, "calm");
        assert!(chain.channel().is_ideal());
        assert_eq!(chain.levels().len(), 3);
        // The design contract: no level injects downlink loss.
        for level in chain.levels() {
            assert_eq!(level.config.downlink_loss_prob, 0.0, "{}", level.name);
        }
    }

    #[test]
    fn rejects_malformed_models() {
        let level = ChannelLevel::new("only", ChannelConfig::default());
        // Row does not sum to 1.
        assert!(MarkovChannel::new(vec![level.clone()], vec![vec![0.5]], 0).is_err());
        // Non-square matrix.
        assert!(MarkovChannel::new(vec![level.clone()], vec![vec![0.5, 0.5]], 0).is_err());
        // Out-of-range initial state.
        assert!(MarkovChannel::new(vec![level.clone()], vec![vec![1.0]], 1).is_err());
        // Empty chain.
        assert!(MarkovChannel::new(vec![], vec![], 0).is_err());
        // Bad probability inside a level.
        let bad = ChannelLevel::new(
            "bad",
            ChannelConfig {
                reply_loss_prob: 1.5,
                ..ChannelConfig::default()
            },
        );
        assert!(MarkovChannel::new(vec![bad], vec![vec![1.0]], 0).is_err());
    }

    #[test]
    fn restore_state_resumes_and_rejects_out_of_range() {
        let mut chain = MarkovChannel::presets();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..37 {
            chain.step(&mut rng);
        }
        let saved = chain.state();
        let mut restored = MarkovChannel::presets();
        restored.restore_state(saved).unwrap();
        assert_eq!(restored.state(), saved);
        assert_eq!(restored.level().name, chain.level().name);
        assert!(restored.restore_state(3).is_err());
    }

    #[test]
    fn stepping_is_deterministic_per_seed() {
        let mut a = MarkovChannel::presets();
        let mut b = MarkovChannel::presets();
        let mut ra = StdRng::seed_from_u64(7);
        let mut rb = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            assert_eq!(a.step(&mut ra).name, b.step(&mut rb).name);
        }
    }

    #[test]
    fn chain_visits_every_level_and_favors_calm() {
        let mut chain = MarkovChannel::presets();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 3];
        for _ in 0..5_000 {
            chain.step(&mut rng);
            counts[chain.state()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "unvisited level: {counts:?}");
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2],
            "stationary ordering violated: {counts:?}"
        );
    }

    #[test]
    fn step_consumes_exactly_one_draw() {
        use rand::Rng as _;
        let mut chain = MarkovChannel::presets();
        let mut rng = StdRng::seed_from_u64(11);
        let mut shadow = StdRng::seed_from_u64(11);
        chain.step(&mut rng);
        let _: f64 = shadow.gen();
        assert_eq!(rng.gen::<u64>(), shadow.gen::<u64>());
    }

    #[test]
    fn absorbing_state_stays_put() {
        let levels = vec![
            ChannelLevel::new("a", ChannelConfig::default()),
            ChannelLevel::new("b", ChannelConfig::default()),
        ];
        let mut chain =
            MarkovChannel::new(levels, vec![vec![0.0, 1.0], vec![0.0, 1.0]], 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        chain.step(&mut rng);
        for _ in 0..10 {
            assert_eq!(chain.step(&mut rng).name, "b");
        }
    }
}
