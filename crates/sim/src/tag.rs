//! The passive-tag device model.
//!
//! A [`Tag`] is a small state machine driven entirely by reader
//! broadcasts, mirroring Algorithms 2 and 7 of the paper:
//!
//! 1. On receiving a frame announcement `(f, r)` the tag computes its
//!    reply slot. In *counted* mode (UTRP, Alg. 7) it first increments
//!    its monotone hardware counter `ct` and mixes it into the hash, so
//!    a reader that replays or rewinds a frame gets a different — and
//!    therefore server-detectably wrong — bitstring.
//! 2. On hearing its own slot number broadcast, a ready tag answers:
//!    a short random burst in presence mode, or its full ID in
//!    collection mode (the collect-all baseline).
//! 3. A tag that successfully delivered its ID is *silenced* for the
//!    rest of the inventory (paper §3, "tags that successfully transmit
//!    their data are instructed to keep silent").
//!
//! Failure injection: a *detuned* tag is physically present but never
//! replies (a scratched or blocked tag, exactly the false-alarm source
//! the tolerance `m` exists for).

use std::fmt;

use crate::hash::{short_reply_bits, slot_for, slot_for_counted};
use crate::ident::{FrameSize, Nonce, TagId};

/// The monotone per-tag counter `ct` required by UTRP (paper §5.2).
///
/// The counter increments every time the tag receives a new `(f, r)`
/// announcement and can never be reset or decremented — the hardware
/// assumption the paper adopts from the yoking-proof literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero (factory state).
    pub const ZERO: Counter = Counter(0);

    /// Creates a counter at an arbitrary value (e.g. when the server
    /// restores its mirror of a tag's counter from storage).
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Counter(value)
    }

    /// The current counter value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the incremented counter. The hardware counter wraps at
    /// `u64::MAX`, which at one increment per slot would take half a
    /// million years of continuous interrogation to reach.
    #[must_use]
    pub const fn incremented(self) -> Counter {
        Counter(self.0.wrapping_add(1))
    }

    /// Increments the counter in place.
    pub fn increment(&mut self) {
        *self = self.incremented();
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ct:{}", self.0)
    }
}

impl From<u64> for Counter {
    fn from(value: u64) -> Self {
        Counter(value)
    }
}

/// Whether a tag participates in the current inventory round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TagState {
    /// Powered and listening; will answer in its slot.
    #[default]
    Ready,
    /// Acknowledged by the reader after delivering its ID; keeps silent
    /// until the next inventory begins.
    Silenced,
}

/// How tags hash a frame announcement into a slot choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotMode {
    /// TRP / collect-all: `sn = h(id ⊕ r) mod f`.
    Plain,
    /// UTRP: `sn = h(id ⊕ r ⊕ ct) mod f`, counter incremented first.
    Counted,
}

/// What a tag transmits when its slot comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagReply {
    /// A short random burst claiming the slot (presence protocols).
    Presence {
        /// The 10 random bits transmitted (never interpreted).
        bits: u16,
    },
    /// The tag's full 96-bit ID (collection protocols).
    Id(TagId),
}

/// A simulated passive RFID tag.
///
/// ```rust
/// use tagwatch_sim::tag::{SlotMode, Tag};
/// use tagwatch_sim::{FrameSize, Nonce, TagId};
///
/// let mut tag = Tag::new(TagId::new(7));
/// let f = FrameSize::new(16)?;
///
/// // Frame announcement: the tag picks a slot.
/// let slot = tag.on_frame(f, Nonce::new(1), SlotMode::Plain);
/// // It answers exactly when that slot is broadcast.
/// assert!(tag.on_slot(slot, false).is_some());
/// assert!(tag.on_slot((slot + 1) % f.get(), false).is_none());
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tag {
    id: TagId,
    counter: Counter,
    state: TagState,
    detuned: bool,
    pending_slot: Option<u64>,
}

impl Tag {
    /// Creates a ready tag with a zeroed counter.
    #[must_use]
    pub fn new(id: TagId) -> Self {
        Tag {
            id,
            counter: Counter::ZERO,
            state: TagState::Ready,
            detuned: false,
            pending_slot: None,
        }
    }

    /// Creates a tag whose counter starts at `ct` (used by tests and by
    /// the server's mirror of tag state).
    #[must_use]
    pub fn with_counter(id: TagId, ct: Counter) -> Self {
        Tag {
            counter: ct,
            ..Tag::new(id)
        }
    }

    /// The tag's identifier.
    #[must_use]
    pub fn id(&self) -> TagId {
        self.id
    }

    /// The tag's current counter value.
    #[must_use]
    pub fn counter(&self) -> Counter {
        self.counter
    }

    /// The tag's inventory state.
    #[must_use]
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Whether this tag is detuned (present but mute).
    #[must_use]
    pub fn is_detuned(&self) -> bool {
        self.detuned
    }

    /// Marks the tag detuned (failure injection) or restores it.
    pub fn set_detuned(&mut self, detuned: bool) {
        self.detuned = detuned;
    }

    /// Handles a frame announcement `(f, r)`, returning the slot the tag
    /// will answer in.
    ///
    /// In [`SlotMode::Counted`] the hardware counter is incremented
    /// *before* hashing, as in Alg. 7 line 1 — the increment happens on
    /// every announcement the tag hears, even if it later turns out to
    /// be silenced, which is exactly what makes replays detectable.
    pub fn on_frame(&mut self, f: FrameSize, r: Nonce, mode: SlotMode) -> u64 {
        let slot = match mode {
            SlotMode::Plain => slot_for(self.id, r, f),
            SlotMode::Counted => {
                self.counter.increment();
                slot_for_counted(self.id, r, self.counter, f)
            }
        };
        self.pending_slot = Some(slot);
        slot
    }

    /// Handles the reader broadcasting slot number `sn`.
    ///
    /// Returns the tag's transmission if `sn` is its pending slot and it
    /// is ready and tuned; `None` otherwise. `collect_id` selects
    /// between presence bursts and full-ID replies.
    pub fn on_slot(&mut self, sn: u64, collect_id: bool) -> Option<TagReply> {
        if self.state == TagState::Silenced || self.detuned {
            return None;
        }
        if self.pending_slot != Some(sn) {
            return None;
        }
        if collect_id {
            Some(TagReply::Id(self.id))
        } else {
            // Derive the burst from the slot so reruns are reproducible.
            Some(TagReply::Presence {
                bits: short_reply_bits(self.id, Nonce::new(sn)),
            })
        }
    }

    /// Advances the counter by `announcements` increments at once.
    ///
    /// Used by bulk protocol simulations that compute a whole UTRP round
    /// without driving the per-slot state machine: the round determines
    /// how many `(f, r)` announcements every in-range tag heard, and the
    /// caller applies them here. Equivalent to hearing that many frames
    /// through [`Tag::on_frame`] in [`SlotMode::Counted`].
    pub fn advance_counter(&mut self, announcements: u64) {
        self.counter = Counter::new(self.counter.get().wrapping_add(announcements));
    }

    /// Silences the tag for the remainder of the inventory (successful
    /// ID delivery in collect-all).
    pub fn silence(&mut self) {
        self.state = TagState::Silenced;
        self.pending_slot = None;
    }

    /// Re-arms the tag for a fresh inventory round.
    pub fn reset_inventory(&mut self) {
        self.state = TagState::Ready;
        self.pending_slot = None;
    }

    /// The slot this tag is waiting on, if a frame is active.
    #[must_use]
    pub fn pending_slot(&self) -> Option<u64> {
        self.pending_slot
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag({}, {}, {:?})", self.id, self.counter, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u64) -> FrameSize {
        FrameSize::new(n).unwrap()
    }

    #[test]
    fn counter_increments_monotonically() {
        let mut ct = Counter::ZERO;
        for expect in 1..=5u64 {
            ct.increment();
            assert_eq!(ct.get(), expect);
        }
        assert_eq!(Counter::new(7).incremented(), Counter::new(8));
    }

    #[test]
    fn counter_wraps_at_max() {
        assert_eq!(Counter::new(u64::MAX).incremented(), Counter::ZERO);
    }

    #[test]
    fn plain_frame_does_not_touch_counter() {
        let mut tag = Tag::new(TagId::new(3));
        tag.on_frame(frame(8), Nonce::new(1), SlotMode::Plain);
        assert_eq!(tag.counter(), Counter::ZERO);
    }

    #[test]
    fn counted_frame_increments_counter_every_announcement() {
        // Alg. 7 line 1: increment on *every* (f, r) received — this is
        // what defeats re-scanning.
        let mut tag = Tag::new(TagId::new(3));
        for i in 1..=4u64 {
            tag.on_frame(frame(8), Nonce::new(i), SlotMode::Counted);
            assert_eq!(tag.counter().get(), i);
        }
    }

    #[test]
    fn replaying_same_announcement_moves_the_slot() {
        let mut tag = Tag::new(TagId::new(55));
        let s1 = tag.on_frame(frame(1 << 20), Nonce::new(9), SlotMode::Counted);
        let s2 = tag.on_frame(frame(1 << 20), Nonce::new(9), SlotMode::Counted);
        // With a 2^20-slot frame a coincidental equality has probability
        // 2^-20; deterministic inputs make this test stable.
        assert_ne!(s1, s2, "counter failed to re-randomize the slot");
    }

    #[test]
    fn tag_answers_only_its_own_slot() {
        let mut tag = Tag::new(TagId::new(11));
        let f = frame(32);
        let slot = tag.on_frame(f, Nonce::new(2), SlotMode::Plain);
        for sn in 0..32u64 {
            let reply = tag.on_slot(sn, false);
            assert_eq!(reply.is_some(), sn == slot);
        }
    }

    #[test]
    fn presence_reply_carries_short_burst_not_id() {
        let mut tag = Tag::new(TagId::new(0xdead_beef));
        let f = frame(4);
        let slot = tag.on_frame(f, Nonce::new(5), SlotMode::Plain);
        match tag.on_slot(slot, false) {
            Some(TagReply::Presence { bits }) => assert!(bits < 1024),
            other => panic!("expected presence burst, got {other:?}"),
        }
    }

    #[test]
    fn collection_reply_carries_full_id() {
        let id = TagId::new(0xcafe);
        let mut tag = Tag::new(id);
        let f = frame(4);
        let slot = tag.on_frame(f, Nonce::new(5), SlotMode::Plain);
        assert_eq!(tag.on_slot(slot, true), Some(TagReply::Id(id)));
    }

    #[test]
    fn silenced_tag_stays_quiet_until_reset() {
        let mut tag = Tag::new(TagId::new(1));
        let f = frame(4);
        let slot = tag.on_frame(f, Nonce::new(1), SlotMode::Plain);
        tag.silence();
        assert_eq!(tag.on_slot(slot, true), None);
        assert_eq!(tag.state(), TagState::Silenced);

        tag.reset_inventory();
        let slot = tag.on_frame(f, Nonce::new(1), SlotMode::Plain);
        assert!(tag.on_slot(slot, true).is_some());
    }

    #[test]
    fn detuned_tag_is_present_but_mute() {
        let mut tag = Tag::new(TagId::new(1));
        tag.set_detuned(true);
        let f = frame(4);
        let slot = tag.on_frame(f, Nonce::new(1), SlotMode::Plain);
        assert_eq!(tag.on_slot(slot, false), None);
        assert!(tag.is_detuned());

        tag.set_detuned(false);
        assert!(tag.on_slot(slot, false).is_some());
    }

    #[test]
    fn detuned_tag_still_counts_announcements() {
        // Physical blocking attenuates the reply path more than the
        // (much stronger) reader broadcast; we model the tag as still
        // hearing announcements, so its counter stays in sync.
        let mut tag = Tag::new(TagId::new(1));
        tag.set_detuned(true);
        tag.on_frame(frame(4), Nonce::new(1), SlotMode::Counted);
        assert_eq!(tag.counter().get(), 1);
    }

    #[test]
    fn with_counter_restores_mirror_state() {
        let tag = Tag::with_counter(TagId::new(9), Counter::new(41));
        assert_eq!(tag.counter().get(), 41);
        assert_eq!(tag.state(), TagState::Ready);
    }

    #[test]
    fn display_mentions_id_and_counter() {
        let tag = Tag::new(TagId::new(5));
        let text = tag.to_string();
        assert!(text.contains("ct:0"));
        assert!(text.contains("epc:"));
    }

    #[test]
    fn tag_matches_server_side_prediction() {
        // The foundational protocol property: tag and server compute the
        // identical slot from shared knowledge.
        use crate::hash::{slot_for, slot_for_counted};
        let id = TagId::new(0x1234_5678_9abc);
        let f = frame(709);
        let r = Nonce::new(0x5eed);

        let mut tag = Tag::new(id);
        assert_eq!(tag.on_frame(f, r, SlotMode::Plain), slot_for(id, r, f));
        assert_eq!(
            tag.on_frame(f, r, SlotMode::Counted),
            slot_for_counted(id, r, Counter::new(1), f)
        );
    }
}
