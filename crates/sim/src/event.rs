//! A deterministic discrete-event scheduler.
//!
//! [`EventQueue`] is the kernel every timed simulation in this workspace
//! runs on: events are scheduled at absolute [`SimTime`]s and popped in
//! time order, with *insertion order* breaking ties so that runs are
//! bit-for-bit reproducible (a plain `BinaryHeap` over `(time, event)`
//! would pop equal-time events in an unspecified order).
//!
//! The queue owns the simulation clock: popping an event advances
//! [`EventQueue::now`] to that event's activation time, and scheduling
//! into the past is an error rather than a silent reordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::error::SimError;
use crate::time::{SimDuration, SimTime};

/// An event with its activation time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The event's activation time.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The scheduling sequence number (insertion order).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Shared access to the event payload.
    #[must_use]
    pub fn event(&self) -> &E {
        &self.event
    }

    /// Consumes the entry, returning the payload.
    #[must_use]
    pub fn into_event(self) -> E {
        self.event
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue with an embedded simulation clock.
///
/// ```rust
/// use tagwatch_sim::event::EventQueue;
/// use tagwatch_sim::time::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_micros(20), "second")?;
/// q.schedule_after(SimDuration::from_micros(10), "first")?;
///
/// assert_eq!(q.pop().unwrap().into_event(), "first");
/// assert_eq!(q.now(), SimTime::from_micros(10));
/// assert_eq!(q.pop().unwrap().into_event(), "second");
/// assert!(q.pop().is_none());
/// # Ok::<(), tagwatch_sim::SimError>(())
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulation time (the activation time of the most
    /// recently popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleInPast`] if `at` precedes the current
    /// clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::ScheduleInPast {
                now_micros: self.now.as_micros(),
                at_micros: at.as_micros(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
        Ok(())
    }

    /// Schedules `event` at `now + delay`.
    ///
    /// # Errors
    ///
    /// Never fails today (the activation time cannot precede `now`);
    /// returns `Result` for signature symmetry with
    /// [`EventQueue::schedule_at`].
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> Result<(), SimError> {
        self.schedule_at(self.now + delay, event)
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// activation time. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some(entry)
    }

    /// The activation time of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Scheduled::time)
    }

    /// Pops and collects every event with activation time `<= until`,
    /// advancing the clock along the way (and finally to `until` if that
    /// is later than the last popped event).
    pub fn drain_until(&mut self, until: SimTime) -> Vec<Scheduled<E>> {
        let mut out = Vec::new();
        while matches!(self.peek_time(), Some(t) if t <= until) {
            match self.pop() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        self.now = self.now.max(until);
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), "c").unwrap();
        q.schedule_at(SimTime::from_micros(10), "a").unwrap();
        q.schedule_at(SimTime::from_micros(20), "b").unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(Scheduled::into_event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for label in ["first", "second", "third"] {
            q.schedule_at(t, label).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(Scheduled::into_event)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(42), ()).unwrap();
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    #[test]
    fn rejects_scheduling_in_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), ()).unwrap();
        q.pop().unwrap();
        let err = q.schedule_at(SimTime::from_micros(5), ()).unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduleInPast {
                now_micros: 10,
                at_micros: 5
            }
        );
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(100), "anchor").unwrap();
        q.pop().unwrap();
        q.schedule_after(SimDuration::from_micros(50), "later")
            .unwrap();
        let e = q.pop().unwrap();
        assert_eq!(e.time(), SimTime::from_micros(150));
    }

    #[test]
    fn drain_until_collects_prefix_and_advances_clock() {
        let mut q = EventQueue::new();
        for t in [10u64, 20, 30, 40] {
            q.schedule_at(SimTime::from_micros(t), t).unwrap();
        }
        let drained = q.drain_until(SimTime::from_micros(25));
        let times: Vec<_> = drained.iter().map(|e| e.time().as_micros()).collect();
        assert_eq!(times, [10, 20]);
        assert_eq!(q.now(), SimTime::from_micros(25));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(7), ()).unwrap();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_after(SimDuration::ZERO, ()).unwrap();
        assert_eq!(q.len(), 1);
        q.pop().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn debug_shows_clock_and_pending() {
        let q: EventQueue<u8> = EventQueue::new();
        let text = format!("{q:?}");
        assert!(text.contains("now"));
        assert!(text.contains("pending"));
    }

    #[test]
    fn scheduled_accessors() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(3), "payload").unwrap();
        let e = q.pop().unwrap();
        assert_eq!(*e.event(), "payload");
        assert_eq!(e.seq(), 0);
        assert_eq!(e.time(), SimTime::from_micros(3));
    }
}
