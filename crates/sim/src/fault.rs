//! Deterministic, scripted fault injection.
//!
//! [`crate::radio::ChannelConfig`] models *probabilistic* physical-layer
//! failures; this module models **scripted** ones: a [`FaultPlan`] names
//! exact slot and announcement indices at which specific failures fire,
//! so a test can construct one precise failure history and assert the
//! monitor's exact response to it (detection, false alarm, or recovery)
//! instead of sampling distributions.
//!
//! The fault vocabulary covers the failure modes a UTRP deployment
//! actually faces:
//!
//! * **reply loss** ([`FaultPlan::lose_replies_at`]) — every uplink
//!   transmission in one global slot is lost; the tags transmitted (and
//!   will stay silent for the rest of the round) but the reader hears
//!   nothing, so it neither sets the bit nor re-seeds.
//! * **announcement loss** ([`FaultPlan::lose_announcement`]) — listed
//!   tags miss one downlink `(f', r)` announcement: their counters do
//!   not advance for it and they keep the reply slot they computed from
//!   the last announcement they heard. This is the canonical source of
//!   *counter desynchronization*.
//! * **reader crash** ([`FaultPlan::crash_after_slot`]) — the reader
//!   dies after processing a slot: no further announcements or
//!   listening. Tags freeze at the counters they had; the assembled
//!   bitstring reads empty past the crash point.
//! * **truncation** ([`FaultPlan::truncate_response`]) — the response
//!   bitstring is cut short in transit to the server (a shape error the
//!   server must reject, never silently accept).
//! * **clock skew** ([`FaultPlan::skew_clock`]) — the measured round
//!   time is scaled by a factor, modelling a drifting reader timer
//!   against the server's deadline.
//!
//! A [`FaultInjector`] is the cheap per-round cursor over a plan: it
//! tracks the current announcement index so executors can ask "does tag
//! X hear this?" without threading indices around.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::SimError;
use crate::ident::TagId;

/// A scripted schedule of faults for one protocol round.
///
/// Plans are built with the fluent `lose_*`/`crash_*`/`truncate_*`
/// methods and queried by the round executors in `tagwatch-core`. An
/// empty (default) plan injects nothing; executors are required to be
/// byte-identical to their fault-free forms under it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    lost_reply_slots: BTreeSet<u64>,
    lost_announcements: BTreeMap<u64, BTreeSet<TagId>>,
    crash_after_slot: Option<u64>,
    truncate_to: Option<u64>,
    clock_skew: Option<f64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Loses every uplink reply transmitted in global slot `slot`.
    #[must_use]
    pub fn lose_replies_at(mut self, slot: u64) -> Self {
        self.lost_reply_slots.insert(slot);
        self
    }

    /// Makes `tags` miss downlink announcement number `announcement`
    /// (0-based: the initial `(f, r)` broadcast is announcement 0, the
    /// first re-seed is 1, …).
    #[must_use]
    pub fn lose_announcement<I: IntoIterator<Item = TagId>>(
        mut self,
        announcement: u64,
        tags: I,
    ) -> Self {
        self.lost_announcements
            .entry(announcement)
            .or_default()
            .extend(tags);
        self
    }

    /// Crashes the reader after it has processed global slot `slot`.
    #[must_use]
    pub fn crash_after_slot(mut self, slot: u64) -> Self {
        self.crash_after_slot = Some(slot);
        self
    }

    /// Truncates the response bitstring to `len` bits before it reaches
    /// the server.
    #[must_use]
    pub fn truncate_response(mut self, len: u64) -> Self {
        self.truncate_to = Some(len);
        self
    }

    /// Scales the reported round time by `factor` (1.0 = no skew;
    /// above 1.0 the reader's clock runs slow, so its round *appears*
    /// longer to the server).
    #[must_use]
    pub fn skew_clock(mut self, factor: f64) -> Self {
        self.clock_skew = Some(factor);
        self
    }

    /// Validates the plan's numeric knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] (reused for any invalid
    /// scalar) if the clock-skew factor is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(skew) = self.clock_skew {
            if !skew.is_finite() || skew <= 0.0 {
                return Err(SimError::InvalidProbability {
                    name: "clock_skew",
                    value: skew,
                });
            }
        }
        Ok(())
    }

    /// Whether every reply in global slot `slot` is scripted to be
    /// lost.
    #[must_use]
    pub fn reply_lost_at(&self, slot: u64) -> bool {
        self.lost_reply_slots.contains(&slot)
    }

    /// Whether `tag` misses announcement number `announcement`.
    #[must_use]
    pub fn misses_announcement(&self, announcement: u64, tag: TagId) -> bool {
        self.lost_announcements
            .get(&announcement)
            .is_some_and(|tags| tags.contains(&tag))
    }

    /// The slot after which the reader crashes, if scripted.
    #[must_use]
    pub fn crash_slot(&self) -> Option<u64> {
        self.crash_after_slot
    }

    /// The scripted response-truncation length, if any.
    #[must_use]
    pub fn truncation(&self) -> Option<u64> {
        self.truncate_to
    }

    /// The scripted clock-skew factor (1.0 when unscripted).
    #[must_use]
    pub fn clock_skew_factor(&self) -> f64 {
        self.clock_skew.unwrap_or(1.0)
    }

    /// Applies the scripted clock skew to a measured duration.
    #[must_use]
    pub fn skewed(&self, elapsed: crate::time::SimDuration) -> crate::time::SimDuration {
        match self.clock_skew {
            None => elapsed,
            Some(factor) => {
                let micros = elapsed.as_micros() as f64 * factor;
                crate::time::SimDuration::from_micros(micros.round().max(0.0) as u64)
            }
        }
    }
}

/// One scripted fault against a durable byte stream (a write-ahead
/// log on its way to stable storage).
///
/// These model what a power cut or sector corruption does to the last
/// write: the recovery machinery in `tagwatch-store` must *detect*
/// every one of them and truncate to the longest intact prefix — a
/// damaged tail may cost re-execution, never a silent false "intact".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The final `drop_bytes` bytes of the stream never reached disk
    /// (a torn write: the process died mid-`write`).
    TornWrite {
        /// How many trailing bytes are lost.
        drop_bytes: u64,
    },
    /// One bit flips in place (media corruption). `offset_from_end`
    /// addresses the byte (`0` = last byte) and `bit` the bit within
    /// it (`0` = least significant).
    BitFlip {
        /// Byte position measured backwards from the end of the stream.
        offset_from_end: u64,
        /// Bit index within the byte, `0..8`.
        bit: u8,
    },
    /// The stream is cleanly cut short by `drop_bytes` bytes (a
    /// truncated copy or an interrupted transfer).
    TruncateTail {
        /// How many trailing bytes are removed.
        drop_bytes: u64,
    },
}

impl StorageFault {
    /// Applies the fault to `bytes` in place.
    ///
    /// Out-of-range faults degrade gracefully: dropping more bytes
    /// than exist empties the stream, and a bit flip past the start
    /// flips the first byte.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            StorageFault::TornWrite { drop_bytes } | StorageFault::TruncateTail { drop_bytes } => {
                let keep = bytes.len().saturating_sub(drop_bytes as usize);
                bytes.truncate(keep);
            }
            StorageFault::BitFlip {
                offset_from_end,
                bit,
            } => {
                if bytes.is_empty() {
                    return;
                }
                let idx = bytes
                    .len()
                    .saturating_sub(1)
                    .saturating_sub(offset_from_end as usize);
                bytes[idx] ^= 1 << (bit % 8);
            }
        }
    }

    /// Validates the fault's numeric knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] (name `storage_bit`) if
    /// a bit-flip addresses a bit index outside `0..8`.
    pub fn validate(&self) -> Result<(), SimError> {
        if let StorageFault::BitFlip { bit, .. } = *self {
            if bit >= 8 {
                return Err(SimError::InvalidProbability {
                    name: "storage_bit",
                    value: f64::from(bit),
                });
            }
        }
        Ok(())
    }
}

/// A scripted storage-failure schedule for one durable soak run: the
/// process is killed just before executing tick `crash_at_tick`, and
/// the bytes persisted so far optionally suffer a [`StorageFault`].
///
/// An empty (default) plan never crashes and damages nothing; durable
/// runs under it must be byte-identical to their in-memory twins.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageFaultPlan {
    crash_at_tick: Option<u64>,
    damage: Option<StorageFault>,
}

impl StorageFaultPlan {
    /// An empty plan (no crash, no damage).
    #[must_use]
    pub fn new() -> Self {
        StorageFaultPlan::default()
    }

    /// Whether this plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == StorageFaultPlan::default()
    }

    /// Kills the process just before tick `tick` executes.
    #[must_use]
    pub fn crash_at_tick(mut self, tick: u64) -> Self {
        self.crash_at_tick = Some(tick);
        self
    }

    /// Damages the persisted bytes with `fault` when the crash fires.
    #[must_use]
    pub fn with_damage(mut self, fault: StorageFault) -> Self {
        self.damage = Some(fault);
        self
    }

    /// The scripted crash tick, if any.
    #[must_use]
    pub fn crash_tick(&self) -> Option<u64> {
        self.crash_at_tick
    }

    /// The scripted storage damage, if any.
    #[must_use]
    pub fn damage(&self) -> Option<StorageFault> {
        self.damage
    }

    /// Applies the scripted damage (if any) to `bytes` in place.
    pub fn apply_damage(&self, bytes: &mut Vec<u8>) {
        if let Some(fault) = self.damage {
            fault.apply(bytes);
        }
    }

    /// Validates the plan's knobs.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageFault::validate`].
    pub fn validate(&self) -> Result<(), SimError> {
        match self.damage {
            Some(fault) => fault.validate(),
            None => Ok(()),
        }
    }
}

/// A per-round cursor over a [`FaultPlan`]: tracks the current
/// announcement index so executors can query faults positionally.
#[derive(Debug, Clone)]
pub struct FaultInjector<'a> {
    plan: &'a FaultPlan,
    announcement: u64,
}

impl<'a> FaultInjector<'a> {
    /// Starts a cursor at announcement 0 (none broadcast yet).
    #[must_use]
    pub fn new(plan: &'a FaultPlan) -> Self {
        FaultInjector {
            plan,
            announcement: 0,
        }
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> &'a FaultPlan {
        self.plan
    }

    /// Records that the reader is broadcasting the next announcement and
    /// returns its index (0-based).
    pub fn next_announcement(&mut self) -> u64 {
        let idx = self.announcement;
        self.announcement += 1;
        idx
    }

    /// Announcements broadcast so far.
    #[must_use]
    pub fn announcements(&self) -> u64 {
        self.announcement
    }

    /// Whether `tag` hears announcement `announcement` (the index
    /// returned by [`FaultInjector::next_announcement`]).
    #[must_use]
    pub fn hears(&self, announcement: u64, tag: TagId) -> bool {
        !self.plan.misses_announcement(announcement, tag)
    }

    /// Whether the scripted reader crash has fired by the end of global
    /// slot `slot`.
    #[must_use]
    pub fn crashed_after(&self, slot: u64) -> bool {
        self.plan.crash_slot().is_some_and(|s| slot >= s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.validate().unwrap();
        assert!(!plan.reply_lost_at(0));
        assert!(!plan.misses_announcement(0, TagId::new(1)));
        assert_eq!(plan.crash_slot(), None);
        assert_eq!(plan.truncation(), None);
        assert_eq!(plan.clock_skew_factor(), 1.0);
    }

    #[test]
    fn builders_record_faults() {
        let plan = FaultPlan::new()
            .lose_replies_at(3)
            .lose_replies_at(7)
            .lose_announcement(1, [TagId::new(5)])
            .lose_announcement(1, [TagId::new(6)])
            .crash_after_slot(40)
            .truncate_response(16)
            .skew_clock(1.25);
        assert!(!plan.is_empty());
        assert!(plan.reply_lost_at(3) && plan.reply_lost_at(7));
        assert!(!plan.reply_lost_at(4));
        assert!(plan.misses_announcement(1, TagId::new(5)));
        assert!(plan.misses_announcement(1, TagId::new(6)));
        assert!(!plan.misses_announcement(0, TagId::new(5)));
        assert_eq!(plan.crash_slot(), Some(40));
        assert_eq!(plan.truncation(), Some(16));
        assert_eq!(plan.clock_skew_factor(), 1.25);
    }

    #[test]
    fn validate_rejects_bad_skew() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = FaultPlan::new().skew_clock(bad);
            assert!(plan.validate().is_err(), "accepted skew {bad}");
        }
        FaultPlan::new().skew_clock(0.5).validate().unwrap();
    }

    #[test]
    fn skew_scales_durations() {
        let plan = FaultPlan::new().skew_clock(2.0);
        assert_eq!(
            plan.skewed(SimDuration::from_micros(100)),
            SimDuration::from_micros(200)
        );
        let identity = FaultPlan::new();
        assert_eq!(
            identity.skewed(SimDuration::from_micros(100)),
            SimDuration::from_micros(100)
        );
    }

    #[test]
    fn injector_tracks_announcements() {
        let plan = FaultPlan::new().lose_announcement(1, [TagId::new(9)]);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.announcements(), 0);
        let a0 = inj.next_announcement();
        let a1 = inj.next_announcement();
        assert_eq!((a0, a1), (0, 1));
        assert_eq!(inj.announcements(), 2);
        assert!(inj.hears(a0, TagId::new(9)));
        assert!(!inj.hears(a1, TagId::new(9)));
        assert!(inj.hears(a1, TagId::new(8)));
    }

    #[test]
    fn storage_torn_write_and_truncate_drop_tail_bytes() {
        for fault in [
            StorageFault::TornWrite { drop_bytes: 3 },
            StorageFault::TruncateTail { drop_bytes: 3 },
        ] {
            let mut bytes = vec![1u8, 2, 3, 4, 5];
            fault.apply(&mut bytes);
            assert_eq!(bytes, [1, 2]);
        }
        // Over-dropping empties the stream instead of panicking.
        let mut bytes = vec![1u8, 2];
        StorageFault::TornWrite { drop_bytes: 99 }.apply(&mut bytes);
        assert!(bytes.is_empty());
    }

    #[test]
    fn storage_bit_flip_targets_from_the_end() {
        let mut bytes = vec![0u8, 0, 0, 0b0000_0100];
        StorageFault::BitFlip {
            offset_from_end: 0,
            bit: 2,
        }
        .apply(&mut bytes);
        assert_eq!(bytes, [0, 0, 0, 0]);
        StorageFault::BitFlip {
            offset_from_end: 3,
            bit: 7,
        }
        .apply(&mut bytes);
        assert_eq!(bytes, [0b1000_0000, 0, 0, 0]);
        // Past-the-start flips clamp to the first byte; empty streams
        // are left alone.
        StorageFault::BitFlip {
            offset_from_end: 99,
            bit: 0,
        }
        .apply(&mut bytes);
        assert_eq!(bytes[0], 0b1000_0001);
        let mut empty: Vec<u8> = Vec::new();
        StorageFault::BitFlip {
            offset_from_end: 0,
            bit: 0,
        }
        .apply(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn storage_plan_builders_and_validation() {
        let plan = StorageFaultPlan::new()
            .crash_at_tick(42)
            .with_damage(StorageFault::TornWrite { drop_bytes: 5 });
        assert!(!plan.is_empty());
        assert_eq!(plan.crash_tick(), Some(42));
        assert_eq!(
            plan.damage(),
            Some(StorageFault::TornWrite { drop_bytes: 5 })
        );
        plan.validate().unwrap();
        let mut bytes = vec![0u8; 8];
        plan.apply_damage(&mut bytes);
        assert_eq!(bytes.len(), 3);

        assert!(StorageFaultPlan::new().is_empty());
        let bad = StorageFaultPlan::new().with_damage(StorageFault::BitFlip {
            offset_from_end: 0,
            bit: 8,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn injector_crash_predicate() {
        let plan = FaultPlan::new().crash_after_slot(5);
        let inj = FaultInjector::new(&plan);
        assert!(!inj.crashed_after(4));
        assert!(inj.crashed_after(5));
        assert!(inj.crashed_after(6));
        let no_crash = FaultPlan::new();
        assert!(!FaultInjector::new(&no_crash).crashed_after(u64::MAX - 1));
    }
}
