//! # tagwatch-sim
//!
//! Discrete-event RFID PHY/MAC simulation substrate for the `tagwatch`
//! missing-tag monitoring system (a reproduction of Tan, Sheng & Li,
//! *"How to Monitor for Missing RFID Tags"*, ICDCS 2008).
//!
//! The paper evaluates its protocols purely in simulation, with the
//! *time slot* of a framed-slotted-ALOHA round as the unit of cost. This
//! crate provides that substrate, built from scratch:
//!
//! * [`time`] — simulated clock types ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic discrete-event scheduler.
//! * [`hash`] — the deterministic slot-pick hash `h(id ⊕ r) mod f` that
//!   both tags and the server evaluate (the cornerstone of TRP/UTRP).
//! * [`tag`] — the passive-tag device model: 96-bit EPC-style ID, the
//!   monotone counter `ct` used by UTRP, mute/detuned states.
//! * [`population`] — collections of tags with removal/splitting support
//!   (the adversary "steals" tags by removing them here).
//! * [`radio`] — the shared channel: per-slot outcome resolution
//!   (empty / single / collision) plus optional failure injection.
//! * [`fault`] — deterministic scripted fault plans (reply loss,
//!   announcement loss, reader crash, truncation, clock skew) for
//!   robustness testing, complementing [`radio`]'s probabilistic knobs.
//! * [`markov`] — Markov-modulated channel evolution (named quality
//!   levels + transition matrix) for long-horizon soak runs.
//! * [`reader`] — the interrogator device that broadcasts frames and
//!   observes slot outcomes.
//! * [`aloha`] — framed-slotted-ALOHA round descriptors and executions.
//! * [`timing`] — an EPC-Gen2-inspired air-interface timing model, so
//!   slot counts can also be converted into microseconds.
//! * [`trace`] — structured event traces for debugging and assertions.
//! * [`rng`] — deterministic seed derivation for reproducible trials.
//! * [`epc`] — SGTIN-96 EPC encoding, for production-shaped identities.
//!
//! ## Example
//!
//! ```rust
//! use tagwatch_sim::prelude::*;
//!
//! # fn main() -> Result<(), tagwatch_sim::SimError> {
//! // A population of 100 tags with deterministic IDs.
//! let population = TagPopulation::with_sequential_ids(100);
//! let channel = Channel::ideal();
//! let mut reader = Reader::new(ReaderConfig::default());
//!
//! // Run one framed-slotted-ALOHA presence round: tags answer with a
//! // short random burst, not their ID.
//! let frame = FramePlan::new(FrameSize::new(128)?, Nonce::new(42));
//! let execution = reader.run_presence_frame(&frame, &population, &channel)?;
//! assert_eq!(execution.outcomes().len(), 128);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aloha;
pub mod epc;
pub mod error;
pub mod event;
pub mod fault;
pub mod hash;
pub mod ident;
pub mod markov;
pub mod population;
pub mod radio;
pub mod reader;
pub mod rng;
pub mod tag;
pub mod time;
pub mod timing;
pub mod trace;

pub use aloha::{FrameExecution, FramePlan, FrameStats, SlotIndex};
pub use epc::{sgtin_batch, Sgtin96};
pub use error::SimError;
pub use event::{EventQueue, Scheduled};
pub use fault::{FaultInjector, FaultPlan, StorageFault, StorageFaultPlan};
pub use hash::{slot_for, slot_for_counted, FastMod, SlotHasher};
pub use ident::{FrameSize, Nonce, TagId};
pub use markov::{ChannelLevel, MarkovChannel};
pub use population::TagPopulation;
pub use radio::{Channel, ChannelConfig, SlotOutcome};
pub use reader::{Reader, ReaderConfig};
pub use rng::SeedSequence;
pub use tag::{Counter, Tag, TagState};
pub use time::{SimDuration, SimTime};
pub use timing::TimingModel;
pub use trace::{Trace, TraceEvent};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::aloha::{FrameExecution, FramePlan, FrameStats, SlotIndex};
    pub use crate::error::SimError;
    pub use crate::fault::{FaultInjector, FaultPlan, StorageFault, StorageFaultPlan};
    pub use crate::hash::{slot_for, slot_for_counted};
    pub use crate::ident::{FrameSize, Nonce, TagId};
    pub use crate::markov::{ChannelLevel, MarkovChannel};
    pub use crate::population::TagPopulation;
    pub use crate::radio::{Channel, ChannelConfig, SlotOutcome};
    pub use crate::reader::{Reader, ReaderConfig};
    pub use crate::rng::SeedSequence;
    pub use crate::tag::{Counter, Tag, TagState};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timing::TimingModel;
}
