//! The shared radio channel and per-slot outcome resolution.
//!
//! Framed slotted ALOHA gives the reader exactly three observations per
//! slot (paper §2–3): nobody answered, exactly one tag answered, or a
//! *collision* — several tags answered and the reader "obtains no
//! information". [`Channel`] turns the set of transmissions in a slot
//! into a [`SlotOutcome`], optionally injecting physical-layer failures:
//!
//! * **reply loss** — a transmitted reply does not reach the reader
//!   (fading, blocking); makes a present tag look missing, the
//!   false-alarm source the tolerance `m` absorbs;
//! * **phantom replies** — interference reads as energy in an empty
//!   slot; makes a missing tag look present (adversarially *pessimal*
//!   for detection, so worth injecting in tests);
//! * **capture effect** — one of several colliding replies is strong
//!   enough to decode anyway, as real readers sometimes manage.

use rand::Rng;

use crate::error::SimError;
use crate::tag::TagReply;

/// What the reader observes in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotOutcome {
    /// No energy detected in the slot.
    Empty,
    /// Exactly one tag's transmission decoded.
    Single(TagReply),
    /// Multiple simultaneous transmissions; nothing decodable.
    Collision {
        /// How many tags transmitted (diagnostic only; a real reader
        /// cannot see this number).
        transmitters: u32,
    },
}

impl SlotOutcome {
    /// Whether the reader detected any energy in the slot (what a
    /// presence protocol's bitstring records).
    #[must_use]
    pub fn is_occupied(self) -> bool {
        !matches!(self, SlotOutcome::Empty)
    }

    /// The decoded reply, if the slot resolved to exactly one.
    #[must_use]
    pub fn single(self) -> Option<TagReply> {
        match self {
            SlotOutcome::Single(reply) => Some(reply),
            _ => None,
        }
    }
}

/// Physical-layer failure-injection knobs. All probabilities default to
/// zero (ideal channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Probability that an individual tag's reply is lost in flight.
    pub reply_loss_prob: f64,
    /// Probability that an otherwise-empty slot reads as occupied.
    pub phantom_reply_prob: f64,
    /// Probability that a collision resolves to one decodable reply
    /// (capture effect).
    pub capture_prob: f64,
    /// Probability that an individual tag misses one downlink `(f', r)`
    /// announcement (reader-to-tag direction). A tag that misses an
    /// announcement does not advance its counter for it and keeps the
    /// reply slot computed from the last announcement it heard — the
    /// probabilistic source of counter desynchronization. Consumed by
    /// the fault-aware round executors in `tagwatch-core`; the
    /// slot-level [`Channel::resolve_slot`] only sees uplink traffic.
    pub downlink_loss_prob: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            reply_loss_prob: 0.0,
            phantom_reply_prob: 0.0,
            capture_prob: 0.0,
            downlink_loss_prob: 0.0,
        }
    }
}

impl ChannelConfig {
    /// Validates that every knob is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, value) in [
            ("reply_loss_prob", self.reply_loss_prob),
            ("phantom_reply_prob", self.phantom_reply_prob),
            ("capture_prob", self.capture_prob),
            ("downlink_loss_prob", self.downlink_loss_prob),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(SimError::InvalidProbability { name, value });
            }
        }
        Ok(())
    }
}

/// The shared radio medium between one reader and a tag population.
///
/// `Channel` is stateless; randomness for failure injection is drawn
/// from the RNG passed to [`Channel::resolve_slot`], keeping trials
/// reproducible. An [ideal](Channel::ideal) channel never draws from
/// the RNG at all.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Channel {
    config: ChannelConfig,
}

impl Channel {
    /// A lossless, noiseless, capture-free channel — the model under
    /// which the paper's analysis holds exactly.
    #[must_use]
    pub fn ideal() -> Self {
        Channel {
            config: ChannelConfig::default(),
        }
    }

    /// A channel with the given failure-injection configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] if any knob is outside
    /// `[0, 1]`.
    pub fn with_config(config: ChannelConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Channel { config })
    }

    /// The channel's configuration.
    #[must_use]
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Whether this channel can alter outcomes (any knob non-zero).
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.config == ChannelConfig::default()
    }

    /// Resolves one slot: applies per-reply loss, then classifies the
    /// surviving transmissions, then applies capture/phantom effects.
    pub fn resolve_slot<R: Rng + ?Sized>(&self, replies: &[TagReply], rng: &mut R) -> SlotOutcome {
        if self.config.reply_loss_prob > 0.0 {
            let surviving: Vec<TagReply> = replies
                .iter()
                .copied()
                .filter(|_| !rng.gen_bool(self.config.reply_loss_prob))
                .collect();
            self.classify(&surviving, rng)
        } else {
            // Hot path: no per-reply loss means the transmission set is
            // unchanged — classify the borrowed slice directly instead
            // of cloning it into a Vec for every slot.
            self.classify(replies, rng)
        }
    }

    fn classify<R: Rng + ?Sized>(&self, surviving: &[TagReply], rng: &mut R) -> SlotOutcome {
        match surviving.len() {
            0 => {
                if self.config.phantom_reply_prob > 0.0
                    && rng.gen_bool(self.config.phantom_reply_prob)
                {
                    // Interference energy: reads as an undecodable burst.
                    SlotOutcome::Single(TagReply::Presence { bits: 0 })
                } else {
                    SlotOutcome::Empty
                }
            }
            1 => SlotOutcome::Single(surviving[0]),
            k => {
                if self.config.capture_prob > 0.0 && rng.gen_bool(self.config.capture_prob) {
                    // The strongest reply decodes; pick uniformly since
                    // the simulation has no geometry.
                    let winner = surviving[rng.gen_range(0..k)];
                    SlotOutcome::Single(winner)
                } else {
                    SlotOutcome::Collision {
                        transmitters: k as u32,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::TagId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn presence(bits: u16) -> TagReply {
        TagReply::Presence { bits }
    }

    #[test]
    fn ideal_channel_classifies_plainly() {
        let ch = Channel::ideal();
        let mut r = rng();
        assert_eq!(ch.resolve_slot(&[], &mut r), SlotOutcome::Empty);
        assert_eq!(
            ch.resolve_slot(&[presence(5)], &mut r),
            SlotOutcome::Single(presence(5))
        );
        assert_eq!(
            ch.resolve_slot(&[presence(1), presence(2)], &mut r),
            SlotOutcome::Collision { transmitters: 2 }
        );
    }

    #[test]
    fn ideal_channel_is_ideal() {
        assert!(Channel::ideal().is_ideal());
        let lossy = Channel::with_config(ChannelConfig {
            reply_loss_prob: 0.1,
            ..ChannelConfig::default()
        })
        .unwrap();
        assert!(!lossy.is_ideal());
    }

    #[test]
    fn config_validation_rejects_bad_probabilities() {
        for bad in [-0.1, 1.1, f64::NAN] {
            let cfg = ChannelConfig {
                reply_loss_prob: bad,
                ..ChannelConfig::default()
            };
            assert!(Channel::with_config(cfg).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn total_loss_empties_every_slot() {
        let ch = Channel::with_config(ChannelConfig {
            reply_loss_prob: 1.0,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut r = rng();
        let out = ch.resolve_slot(&[presence(1), presence(2), presence(3)], &mut r);
        assert_eq!(out, SlotOutcome::Empty);
    }

    #[test]
    fn loss_rate_is_statistically_respected() {
        let ch = Channel::with_config(ChannelConfig {
            reply_loss_prob: 0.3,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut r = rng();
        let trials = 20_000;
        let lost = (0..trials)
            .filter(|_| ch.resolve_slot(&[presence(0)], &mut r) == SlotOutcome::Empty)
            .count();
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn phantom_replies_fill_empty_slots() {
        let ch = Channel::with_config(ChannelConfig {
            phantom_reply_prob: 1.0,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut r = rng();
        assert!(ch.resolve_slot(&[], &mut r).is_occupied());
    }

    #[test]
    fn capture_resolves_collisions_to_a_participant() {
        let ch = Channel::with_config(ChannelConfig {
            capture_prob: 1.0,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut r = rng();
        let contenders = [TagReply::Id(TagId::new(1)), TagReply::Id(TagId::new(2))];
        match ch.resolve_slot(&contenders, &mut r) {
            SlotOutcome::Single(reply) => assert!(contenders.contains(&reply)),
            other => panic!("capture failed: {other:?}"),
        }
    }

    #[test]
    fn occupancy_predicate() {
        assert!(!SlotOutcome::Empty.is_occupied());
        assert!(SlotOutcome::Single(presence(0)).is_occupied());
        assert!(SlotOutcome::Collision { transmitters: 3 }.is_occupied());
    }

    #[test]
    fn single_accessor() {
        assert_eq!(SlotOutcome::Empty.single(), None);
        assert_eq!(SlotOutcome::Single(presence(9)).single(), Some(presence(9)));
        assert_eq!(SlotOutcome::Collision { transmitters: 2 }.single(), None);
    }

    #[test]
    fn ideal_channel_does_not_consume_rng() {
        // Reproducibility contract: with an ideal channel the caller's
        // RNG stream is untouched by slot resolution.
        let ch = Channel::ideal();
        let mut r1 = rng();
        let mut r2 = rng();
        let _ = ch.resolve_slot(&[presence(1)], &mut r1);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_eq!(a, b);
    }
}
