//! Property-based tests for the protocol layer's math and state.

use proptest::prelude::*;

use tagwatch_core::math::binomial::{binomial_terms, binomial_window, LnFactorial};
use tagwatch_core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch_core::math::utrp::{sync_horizon, utrp_detection_probability};
use tagwatch_core::registry::RegistrySnapshot;
use tagwatch_core::{MonitorParams, NonceSequence};
use tagwatch_sim::{Counter, TagId};

proptest! {
    // ---------------- binomial machinery ----------------

    #[test]
    fn pmf_is_normalized(n in 1u64..400, p in 0.0f64..1.0) {
        let t = LnFactorial::up_to(n);
        let total: f64 = (0..=n).map(|k| t.binomial_pmf(n, p, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sum = {total}");
    }

    #[test]
    fn windowed_mass_is_nearly_total(n in 1u64..3_000, p in 0.001f64..0.999) {
        let t = LnFactorial::up_to(n);
        let mass: f64 = binomial_terms(&t, n, p, 12.0).map(|(_, pm)| pm).sum();
        prop_assert!((mass - 1.0).abs() < 1e-7, "windowed mass = {mass}");
    }

    #[test]
    fn window_bounds_are_ordered_and_clamped(n in 0u64..10_000, p in 0.0f64..1.0, s in 0.1f64..20.0) {
        let (lo, hi) = binomial_window(n, p, s);
        prop_assert!(lo <= hi);
        prop_assert!(hi <= n);
    }

    #[test]
    fn ln_choose_symmetry(n in 0u64..500, k in 0u64..500) {
        let t = LnFactorial::up_to(n.max(1));
        if k <= n {
            let a = t.ln_choose(n, k);
            let b = t.ln_choose(n, n - k);
            prop_assert!((a - b).abs() < 1e-9);
        } else {
            prop_assert_eq!(t.ln_choose(n, k), f64::NEG_INFINITY);
        }
    }

    // ---------------- detection probability ----------------

    #[test]
    fn g_is_a_probability(n in 1u64..2_000, x_frac in 0.0f64..1.0, f in 1u64..4_000) {
        let x = ((n as f64) * x_frac) as u64;
        for model in [EmptySlotModel::Poisson, EmptySlotModel::Exact] {
            let g = detection_probability(n, x, f, model);
            prop_assert!((0.0..=1.0).contains(&g), "g = {g}");
        }
    }

    #[test]
    fn g_monotone_in_x(n in 10u64..800, f in 10u64..2_000, x1 in 1u64..40, x2 in 1u64..40) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let hi = hi.min(n);
        let lo = lo.min(hi);
        let g_lo = detection_probability(n, lo, f, EmptySlotModel::Poisson);
        let g_hi = detection_probability(n, hi, f, EmptySlotModel::Poisson);
        prop_assert!(g_hi >= g_lo - 1e-9, "x={lo}:{g_lo} vs x={hi}:{g_hi}");
    }

    #[test]
    fn poisson_and_exact_stay_close(n in 50u64..1_500, m in 0u64..30, f_mult in 1u64..4) {
        let x = m + 1;
        if x < n {
            let f = (n * f_mult).max(32);
            let a = detection_probability(n, x, f, EmptySlotModel::Poisson);
            let b = detection_probability(n, x, f, EmptySlotModel::Exact);
            prop_assert!((a - b).abs() < 0.02, "poisson {a} vs exact {b}");
        }
    }

    // ---------------- utrp analysis ----------------

    #[test]
    fn utrp_detection_is_a_probability(n in 10u64..1_000, m in 0u64..8, f in 1u64..2_000, c in 0u64..50) {
        if m + 1 < n {
            let d = utrp_detection_probability(n, m, f, c, EmptySlotModel::Poisson);
            prop_assert!((0.0..=1.0).contains(&d), "d = {d}");
        }
    }

    #[test]
    fn utrp_detection_never_beats_unsynced_bound(n in 20u64..500, m in 0u64..5, f in 50u64..1_500) {
        // More collusion can only hurt detection.
        if m + 1 < n {
            let none = utrp_detection_probability(n, m, f, 0, EmptySlotModel::Poisson);
            let some = utrp_detection_probability(n, m, f, 25, EmptySlotModel::Poisson);
            prop_assert!(some <= none + 1e-9, "c=25 {some} > c=0 {none}");
        }
    }

    #[test]
    fn sync_horizon_scales_linearly_in_budget(n in 10u64..1_000, m in 0u64..9, f in 10u64..5_000, c in 1u64..100) {
        if m < n {
            let one = sync_horizon(n, m, f, 1);
            let many = sync_horizon(n, m, f, c);
            prop_assert!((many - one * c as f64).abs() < 1e-6 * many.max(1.0));
        }
    }

    // ---------------- params ----------------

    #[test]
    fn params_validation_is_total(n in 0u64..10_000, m in 0u64..10_000, alpha in -1.0f64..2.0) {
        match MonitorParams::new(n, m, alpha) {
            Ok(p) => {
                prop_assert!(n > 0 && m < n && alpha > 0.0 && alpha < 1.0);
                prop_assert_eq!(p.population(), n);
                prop_assert_eq!(p.worst_case_missing(), m + 1);
            }
            Err(_) => {
                prop_assert!(n == 0 || m >= n || alpha <= 0.0 || alpha >= 1.0 || alpha.is_nan());
            }
        }
    }

    // ---------------- registry codec ----------------

    #[test]
    fn snapshot_text_round_trips(
        m in 0u64..50,
        alpha_milli in 1u64..999,
        synced in any::<bool>(),
        entries in prop::collection::btree_map(any::<u128>(), any::<u64>(), 0..60),
    ) {
        let snap = RegistrySnapshot {
            tolerance: m,
            alpha: alpha_milli as f64 / 1000.0,
            counters_synced: synced,
            entries: entries
                .into_iter()
                .map(|(id, ct)| (TagId::new(id), Counter::new(ct)))
                .collect(),
        };
        let back = RegistrySnapshot::from_text(&snap.to_text()).unwrap();
        prop_assert_eq!(back, snap);
    }

    // ---------------- nonce sequences ----------------

    #[test]
    fn nonce_sequences_from_equal_seeds_agree(len in 0usize..128, seed in any::<u64>()) {
        use rand::SeedableRng;
        let a = NonceSequence::generate(len, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = NonceSequence::generate(len, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    // ---------------- SoA round engine ----------------

    #[test]
    fn soa_engine_matches_reference_on_random_rounds(
        counters in prop::collection::vec(0u64..1_000, 1..200),
        f in 1u64..300,
        mute_mod in 2u64..20,
        nonce_seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        use tagwatch_core::utrp::{
            simulate_round, simulate_round_reference, UtrpChallenge, UtrpParticipant,
        };
        use tagwatch_core::RoundScratch;
        use tagwatch_sim::{FrameSize, TimingModel};

        // Random population: ids dense, counters arbitrary (uniform
        // bases sometimes — exercising the key-collapse fast path —
        // and scattered otherwise), a modular mute subset.
        let mut rng = rand::rngs::StdRng::seed_from_u64(nonce_seed);
        let ch = UtrpChallenge::generate(
            FrameSize::new(f).unwrap(),
            &TimingModel::gen2(),
            &mut rng,
        );
        let mut fast: Vec<UtrpParticipant> = counters
            .iter()
            .enumerate()
            .map(|(i, &ct)| {
                let mut p = UtrpParticipant::new(TagId::from(i as u64 + 1), Counter::new(ct));
                p.mute = (i as u64).is_multiple_of(mute_mod);
                p
            })
            .collect();
        let pristine = fast.clone();
        let mut reference = fast.clone();

        let a = simulate_round(&mut fast, ch.frame_size(), ch.nonces()).unwrap();
        let b = simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
        prop_assert_eq!(&a, &b, "outcome diverged");
        prop_assert_eq!(&fast, &reference, "counters diverged");

        // A reused scratch must agree with the one-shot path too.
        let mut scratch = RoundScratch::new();
        for _ in 0..2 {
            scratch.load_participants(&pristine);
            let announcements = scratch.run(ch.frame_size(), ch.nonces()).unwrap();
            prop_assert_eq!(scratch.bitstring(), &a.bitstring);
            prop_assert_eq!(announcements, a.announcements);
        }
    }
}
