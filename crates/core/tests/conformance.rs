//! Paper-conformance tests: each check pins an implementation detail to
//! the specific algorithm line or theorem of Tan, Sheng & Li (ICDCS
//! 2008) it realizes. Where practical, the expected behaviour is
//! re-derived *independently* in the test (a third implementation,
//! straight from the paper text) rather than by calling the code under
//! test twice.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_core::frame::{trp_frame_size, UtrpSizing};
use tagwatch_core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch_core::nonce::NonceSequence;
use tagwatch_core::timer::ResponseTimer;
use tagwatch_core::trp::{expected_bitstring, TrpChallenge};
use tagwatch_core::utrp::{simulate_round, UtrpParticipant};
use tagwatch_core::MonitorParams;
use tagwatch_sim::aloha::FramePlan;
use tagwatch_sim::hash::{slot_for, slot_for_counted};
use tagwatch_sim::tag::{SlotMode, Tag, TagReply};
use tagwatch_sim::{Counter, FrameSize, Nonce, TagId, TimingModel};

// ---------------------------------------------------------------------
// §3 anti-collision model and Alg. 2 (tag side of TRP)
// ---------------------------------------------------------------------

#[test]
fn alg2_line2_slot_is_hash_of_id_xor_r_mod_f() {
    // "Determine slot number sn = h(id_i ⊕ r) mod f" — the tag's choice
    // must equal the shared hash function applied per the paper.
    let f = FrameSize::new(97).unwrap();
    for raw in [1u64, 42, 0xdead_beef] {
        let id = TagId::from(raw);
        let r = Nonce::new(7);
        let mut tag = Tag::new(id);
        assert_eq!(tag.on_frame(f, r, SlotMode::Plain), slot_for(id, r, f));
    }
}

#[test]
fn alg2_line5_reply_is_random_bits_not_the_id() {
    // "Return some random bits to R" — §4.1: "the tag does not need to
    // return the tag ID ... but a much shorter random number".
    let f = FrameSize::new(16).unwrap();
    let id = TagId::new(0x1234_5678_9abc_def0);
    let mut tag = Tag::new(id);
    let sn = tag.on_frame(f, Nonce::new(1), SlotMode::Plain);
    match tag.on_slot(sn, false).unwrap() {
        TagReply::Presence { bits } => {
            assert!(bits < 1 << 10, "presence burst must be ~10 bits");
        }
        TagReply::Id(_) => panic!("TRP must not transmit IDs"),
    }
}

// ---------------------------------------------------------------------
// §4.1 server prediction and §4.2 freshness
// ---------------------------------------------------------------------

#[test]
fn section_4_1_server_predicts_bs_from_ids_alone() {
    // The server's bitstring: 1 exactly where ≥1 registered tag hashes.
    let ids: Vec<TagId> = (1..=25u64).map(TagId::from).collect();
    let f = FrameSize::new(40).unwrap();
    let r = Nonce::new(99);
    let challenge = TrpChallenge::new(FramePlan::new(f, r));
    let bs = expected_bitstring(&ids, &challenge);
    for slot in 0..40usize {
        let any_tag_here = ids.iter().any(|&id| slot_for(id, r, f) == slot as u64);
        assert_eq!(bs.get(slot).unwrap(), any_tag_here, "slot {slot}");
    }
}

#[test]
fn section_4_2_different_nonces_give_different_bitstrings() {
    // "The reader uses a different (f, r) pair each time" — freshness
    // only helps because the bitstring actually changes with r.
    let ids: Vec<TagId> = (1..=50u64).map(TagId::from).collect();
    let f = FrameSize::new(128).unwrap();
    let bs1 = expected_bitstring(&ids, &TrpChallenge::new(FramePlan::new(f, Nonce::new(1))));
    let bs2 = expected_bitstring(&ids, &TrpChallenge::new(FramePlan::new(f, Nonce::new(2))));
    assert_ne!(bs1, bs2);
}

// ---------------------------------------------------------------------
// §4.3 analysis: Theorem 1, Lemma 1, Theorem 2, Eq. 2
// ---------------------------------------------------------------------

#[test]
fn theorem_1_formula_matches_a_literal_transcription() {
    // Re-derive g(n, x, f) in the test, straight from the paper:
    //   p = e^{-(n-x)/f}
    //   g = 1 - Σ_{i=0}^{f} C(f,i) p^i (1-p)^{f-i} (1 - i/f)^x
    // using naive arithmetic (small f keeps C(f,i) exact in f64).
    let (n, x, f) = (30u64, 4u64, 20u64);
    let p = (-((n - x) as f64) / f as f64).exp();
    let mut undetected = 0.0f64;
    let mut choose = 1.0f64; // C(f, 0)
    for i in 0..=f {
        if i > 0 {
            choose = choose * (f - i + 1) as f64 / i as f64;
        }
        undetected += choose
            * p.powi(i as i32)
            * (1.0 - p).powi((f - i) as i32)
            * (1.0 - i as f64 / f as f64).powi(x as i32);
    }
    let literal = 1.0 - undetected;
    let ours = detection_probability(n, x, f, EmptySlotModel::Poisson);
    assert!(
        (ours - literal).abs() < 1e-10,
        "ours {ours} vs literal {literal}"
    );
}

#[test]
fn theorem_2_sizing_for_m_plus_1_covers_all_worse_cases() {
    // "Missing exactly m+1 tags is the worst case": the Eq. 2 frame must
    // satisfy the constraint for every x > m, not just x = m + 1.
    let params = MonitorParams::new(400, 10, 0.95).unwrap();
    let f = trp_frame_size(&params).unwrap().get();
    for x in 11..=40u64 {
        let g = detection_probability(400, x, f, EmptySlotModel::Poisson);
        assert!(g > 0.95, "x = {x}: g = {g}");
    }
}

#[test]
fn eq_2_equals_a_naive_linear_scan() {
    // f* = min{x : g(n, m+1, x) > α} by brute force on a small case.
    let params = MonitorParams::new(60, 2, 0.9).unwrap();
    let ours = trp_frame_size(&params).unwrap().get();
    let naive = (1..10_000u64)
        .find(|&f| detection_probability(60, 3, f, EmptySlotModel::Poisson) > 0.9)
        .unwrap();
    assert_eq!(ours, naive);
}

// ---------------------------------------------------------------------
// §5.2–5.3: re-seeding, counters, nonce discipline (Algs. 5–7)
// ---------------------------------------------------------------------

#[test]
fn alg7_line1_counter_increments_before_hashing() {
    // "Receive (f, r) from R. Increment ct = ct + 1" happens before
    // line 2's hash — a fresh tag's first announcement hashes with
    // ct = 1, not 0.
    let f = FrameSize::new(50).unwrap();
    let id = TagId::new(77);
    let r = Nonce::new(5);
    let mut tag = Tag::new(id);
    let sn = tag.on_frame(f, r, SlotMode::Counted);
    assert_eq!(sn, slot_for_counted(id, r, Counter::new(1), f));
}

#[test]
fn alg6_reseed_rule_f_prime_equals_slots_remaining() {
    // Re-derive one honest round independently, following Alg. 6/7 text
    // with direct hash calls, and compare with simulate_round.
    let f = FrameSize::new(12).unwrap();
    let nonces = NonceSequence::from_nonces((0..12).map(Nonce::new).collect());
    let ids: Vec<TagId> = (1..=4u64).map(TagId::from).collect();

    // Literal transcription: counters start at 0; every announcement
    // increments every tag; remaining tags re-hash over the remaining
    // slot count with the next committed nonce.
    let mut ct = 0u64;
    let mut replied = vec![false; ids.len()];
    let mut nonce_idx = 0usize;
    let mut expected_bits = vec![false; 12];
    let mut subframe_start = 0u64;
    let mut f_sub = 12u64;
    let mut slots: Vec<Option<u64>>;
    let announce = |ct: &mut u64, nonce_idx: &mut usize| -> Nonce {
        *ct += 1;
        let r = nonces.get(*nonce_idx).unwrap();
        *nonce_idx += 1;
        r
    };
    let mut r = announce(&mut ct, &mut nonce_idx);
    loop {
        slots = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                (!replied[i]).then(|| {
                    slot_for_counted(id, r, Counter::new(ct), FrameSize::new(f_sub).unwrap())
                })
            })
            .collect();
        let Some(rel) = slots.iter().flatten().copied().min() else {
            break;
        };
        let global = subframe_start + rel;
        expected_bits[global as usize] = true;
        for (i, s) in slots.iter().enumerate() {
            if *s == Some(rel) {
                replied[i] = true;
            }
        }
        let remaining = 12 - (global + 1);
        if remaining == 0 {
            break;
        }
        subframe_start = global + 1;
        f_sub = remaining; // Alg. 6 line 6: f' = f − sn
        r = announce(&mut ct, &mut nonce_idx);
    }

    let mut parts: Vec<UtrpParticipant> = ids
        .iter()
        .map(|&id| UtrpParticipant::new(id, Counter::ZERO))
        .collect();
    let outcome = simulate_round(&mut parts, f, &nonces).unwrap();
    assert_eq!(outcome.bitstring.to_bools(), expected_bits);
    assert_eq!(outcome.announcements, ct);
    assert!(parts.iter().all(|p| p.counter.get() == ct));
}

#[test]
fn alg5_nonce_consumption_is_in_committed_order() {
    // "The reader is supposed to use each random number only once in
    // the given order" — announcements never exceed the committed
    // sequence and the k-th announcement uses nonce index k.
    // (Order is structural — NonceCursor — so we check the count.)
    let f = FrameSize::new(64).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let nonces = NonceSequence::for_frame(f, &mut rng);
    let mut parts: Vec<UtrpParticipant> = (1..=30u64)
        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
        .collect();
    let outcome = simulate_round(&mut parts, f, &nonces).unwrap();
    assert!(outcome.announcements as usize <= nonces.len());
    // 1 initial + one per reply slot except a final-slot reply.
    let replies = outcome.bitstring.count_ones() as u64;
    assert!(outcome.announcements >= replies.max(1));
}

// ---------------------------------------------------------------------
// §5.4 timer
// ---------------------------------------------------------------------

#[test]
fn section_5_4_server_sets_t_to_stmax() {
    // "The server thus sets t = STmax."
    let timer = ResponseTimer::for_frame(&TimingModel::gen2(), FrameSize::new(200).unwrap());
    assert_eq!(timer.deadline(), timer.st_max());
}

#[test]
fn section_5_4_budget_formula() {
    // "c = (t − STmin) / tcomm".
    use tagwatch_sim::SimDuration;
    let timer = ResponseTimer::from_bounds(
        SimDuration::from_micros(2_000),
        SimDuration::from_micros(42_000),
    );
    let tcomm = SimDuration::from_micros(1_000);
    assert_eq!(timer.sync_budget(tcomm), (42_000 - 2_000) / 1_000);
}

// ---------------------------------------------------------------------
// §6 evaluation configuration
// ---------------------------------------------------------------------

#[test]
fn section_6_utrp_pad_is_5_to_10_slots_by_default() {
    // "we have added a very small number of slots (between 5 10 slots)
    // to the optimal frame size" — our default must sit in that band.
    let pad = UtrpSizing::default().safety_pad;
    assert!(
        (5..=10).contains(&pad),
        "pad {pad} outside the paper's band"
    );
    assert_eq!(UtrpSizing::default().sync_budget, 20, "paper uses c = 20");
}
