//! Monitoring parameters: population size, tolerance, confidence.
//!
//! The server's policy knobs from the problem formulation (§3): a set of
//! `n` tags is *intact* while at most `m` tags are missing; the server
//! must detect a non-intact set (≥ `m + 1` missing) with probability at
//! least `α`. Both `m` and `α` are application choices — a stricter
//! warehouse sets `m = 0, α = 0.99`; a grocery store tolerates more.

use std::fmt;

use crate::error::CoreError;

/// Validated monitoring parameters `(n, m, α)`.
///
/// ```rust
/// use tagwatch_core::MonitorParams;
///
/// let p = MonitorParams::new(1000, 10, 0.95)?;
/// assert_eq!(p.population(), 1000);
/// assert_eq!(p.tolerance(), 10);
/// assert_eq!(p.worst_case_missing(), 11); // m + 1, the hardest case
/// # Ok::<(), tagwatch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorParams {
    n: u64,
    m: u64,
    alpha: f64,
}

impl MonitorParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when:
    /// * `n == 0` — nothing to monitor;
    /// * `m >= n` — the whole set could vanish and still be "intact";
    /// * `alpha` is not strictly inside `(0, 1)` (``α = 1`` would demand
    ///   certainty, which no finite frame provides; `α = 0` is vacuous).
    pub fn new(n: u64, m: u64, alpha: f64) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidParams {
                reason: "population size n must be positive".to_owned(),
            });
        }
        if m >= n {
            return Err(CoreError::InvalidParams {
                reason: format!("tolerance m = {m} must be smaller than population n = {n}"),
            });
        }
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(CoreError::InvalidParams {
                reason: format!("confidence alpha = {alpha} must lie strictly in (0, 1)"),
            });
        }
        Ok(MonitorParams { n, m, alpha })
    }

    /// The number of tags in the monitored set, `n`.
    #[must_use]
    pub const fn population(&self) -> u64 {
        self.n
    }

    /// The tolerated number of missing tags, `m`.
    #[must_use]
    pub const fn tolerance(&self) -> u64 {
        self.m
    }

    /// The required detection confidence, `α`.
    #[must_use]
    pub const fn confidence(&self) -> f64 {
        self.alpha
    }

    /// The adversary's optimal theft size `m + 1`: the smallest count
    /// that makes the set non-intact, hence the hardest to detect
    /// (paper Theorem 2 / Lemma 1).
    #[must_use]
    pub const fn worst_case_missing(&self) -> u64 {
        self.m + 1
    }

    /// Returns parameters for the same policy over a different
    /// population size (used when sweeping `n` in experiments).
    ///
    /// # Errors
    ///
    /// Same as [`MonitorParams::new`].
    pub fn with_population(&self, n: u64) -> Result<Self, CoreError> {
        MonitorParams::new(n, self.m, self.alpha)
    }
}

impl fmt::Display for MonitorParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}, m={}, alpha={}", self.n, self.m, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_configurations() {
        // The evaluation grid of §6.
        for n in (100..=2000).step_by(100) {
            for m in [5u64, 10, 20, 30] {
                assert!(MonitorParams::new(n, m, 0.95).is_ok());
            }
        }
    }

    #[test]
    fn accepts_strict_monitoring() {
        // §4.3: "a server requiring strict monitoring can assign m = 0
        // and alpha = 0.99".
        let p = MonitorParams::new(500, 0, 0.99).unwrap();
        assert_eq!(p.worst_case_missing(), 1);
    }

    #[test]
    fn rejects_zero_population() {
        assert!(MonitorParams::new(0, 0, 0.95).is_err());
    }

    #[test]
    fn rejects_tolerance_at_or_above_population() {
        assert!(MonitorParams::new(10, 10, 0.95).is_err());
        assert!(MonitorParams::new(10, 11, 0.95).is_err());
        assert!(MonitorParams::new(10, 9, 0.95).is_ok());
    }

    #[test]
    fn rejects_degenerate_confidence() {
        for alpha in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(
                MonitorParams::new(100, 5, alpha).is_err(),
                "accepted alpha = {alpha}"
            );
        }
    }

    #[test]
    fn with_population_keeps_policy() {
        let p = MonitorParams::new(100, 5, 0.95).unwrap();
        let q = p.with_population(2000).unwrap();
        assert_eq!(q.population(), 2000);
        assert_eq!(q.tolerance(), 5);
        assert_eq!(q.confidence(), 0.95);
        // Shrinking below the tolerance fails validation.
        assert!(p.with_population(5).is_err());
    }

    #[test]
    fn display_mentions_all_three_knobs() {
        let text = MonitorParams::new(100, 5, 0.95).unwrap().to_string();
        assert!(text.contains("n=100"));
        assert!(text.contains("m=5"));
        assert!(text.contains("0.95"));
    }
}
