//! The server-side response timer (paper §5.4).
//!
//! UTRP's defence is economic: forcing colluding readers to synchronize
//! after every reply slot costs them side-channel round-trips, and the
//! server's deadline bounds how many they can afford. The server sets
//! the timer to `t = STmax`, an empirical upper bound on an *honest*
//! reader's scanning time; the colluders can then communicate in at
//! most `c = (t − STmin) / tcomm` slots.
//!
//! [`ResponseTimer`] derives `STmin` / `STmax` from the substrate's
//! [`TimingModel`]:
//!
//! * `STmin` — the fastest honest round: every slot empty, a single
//!   announcement (an empty warehouse reads fast);
//! * `STmax` — the slowest honest round: every slot answered, hence a
//!   re-announcement after every slot.

use tagwatch_sim::{FrameSize, SimDuration, TimingModel};

/// The deadline and collusion-budget model for one UTRP challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResponseTimer {
    st_min: SimDuration,
    st_max: SimDuration,
}

impl ResponseTimer {
    /// Derives the timer bounds for a frame of `f` slots under `timing`.
    #[must_use]
    pub fn for_frame(timing: &TimingModel, f: FrameSize) -> Self {
        let slots = f.get();
        // Fastest honest round: one announcement, all slots empty.
        let st_min = timing.frame_announce + (timing.slot_broadcast + timing.empty_slot) * slots;
        // Slowest honest round: every slot carries a reply, and each
        // reply (except in the final slot) triggers a re-announcement.
        let st_max = timing.frame_announce * slots.max(1)
            + (timing.slot_broadcast + timing.presence_reply) * slots;
        ResponseTimer { st_min, st_max }
    }

    /// Builds a timer from explicit bounds (tests, calibration data).
    ///
    /// # Panics
    ///
    /// Panics if `st_min > st_max`.
    #[must_use]
    pub fn from_bounds(st_min: SimDuration, st_max: SimDuration) -> Self {
        assert!(st_min <= st_max, "st_min must not exceed st_max");
        ResponseTimer { st_min, st_max }
    }

    /// The empirical minimum honest scanning time `STmin`.
    #[must_use]
    pub fn st_min(&self) -> SimDuration {
        self.st_min
    }

    /// The empirical maximum honest scanning time `STmax`.
    #[must_use]
    pub fn st_max(&self) -> SimDuration {
        self.st_max
    }

    /// The deadline the server enforces: `t = STmax` (§5.4).
    #[must_use]
    pub fn deadline(&self) -> SimDuration {
        self.st_max
    }

    /// Whether a response that took `elapsed` is on time.
    #[must_use]
    pub fn accepts(&self, elapsed: SimDuration) -> bool {
        elapsed <= self.deadline()
    }

    /// The colluders' synchronization budget under this timer:
    /// `c = (t − STmin) / tcomm`, the number of side-channel round-trips
    /// that fit in the slack.
    ///
    /// # Panics
    ///
    /// Panics if `tcomm` is zero (an infinitely fast side channel makes
    /// the budget unbounded; model it with a small positive latency
    /// instead).
    #[must_use]
    pub fn sync_budget(&self, tcomm: SimDuration) -> u64 {
        assert!(
            tcomm > SimDuration::ZERO,
            "side-channel latency must be positive"
        );
        self.deadline()
            .saturating_sub(self.st_min)
            .div_duration(tcomm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u64) -> FrameSize {
        FrameSize::new(n).unwrap()
    }

    #[test]
    fn bounds_order_holds_for_gen2() {
        let t = ResponseTimer::for_frame(&TimingModel::gen2(), frame(500));
        assert!(t.st_min() < t.st_max());
        assert_eq!(t.deadline(), t.st_max());
    }

    #[test]
    fn uniform_model_bounds() {
        // Uniform slots: announce is free, every slot costs 1 µs, so
        // STmin = STmax = f µs and the budget under any tcomm is 0 —
        // the degenerate case the paper's difficulty discussion (§5.1)
        // warns about when slot timings carry no information.
        let t = ResponseTimer::for_frame(&TimingModel::uniform_slots(), frame(100));
        assert_eq!(t.st_min().as_micros(), 100);
        assert_eq!(t.st_max().as_micros(), 100);
        assert_eq!(t.sync_budget(SimDuration::from_micros(50)), 0);
    }

    #[test]
    fn budget_matches_paper_formula() {
        let t = ResponseTimer::from_bounds(
            SimDuration::from_micros(1_000),
            SimDuration::from_micros(11_000),
        );
        // c = (t - STmin) / tcomm = 10_000 / 500 = 20 — the paper's
        // evaluation value.
        assert_eq!(t.sync_budget(SimDuration::from_micros(500)), 20);
    }

    #[test]
    fn budget_shrinks_with_slower_side_channel() {
        let t = ResponseTimer::from_bounds(
            SimDuration::from_micros(0),
            SimDuration::from_micros(10_000),
        );
        assert!(
            t.sync_budget(SimDuration::from_micros(1_000))
                > t.sync_budget(SimDuration::from_micros(5_000))
        );
    }

    #[test]
    fn accepts_on_time_rejects_late() {
        let t =
            ResponseTimer::from_bounds(SimDuration::from_micros(10), SimDuration::from_micros(100));
        assert!(t.accepts(SimDuration::from_micros(100)));
        assert!(!t.accepts(SimDuration::from_micros(101)));
    }

    #[test]
    fn bigger_frames_stretch_both_bounds() {
        let timing = TimingModel::gen2();
        let small = ResponseTimer::for_frame(&timing, frame(100));
        let large = ResponseTimer::for_frame(&timing, frame(1000));
        assert!(large.st_min() > small.st_min());
        assert!(large.st_max() > small.st_max());
    }

    #[test]
    #[should_panic(expected = "st_min must not exceed st_max")]
    fn from_bounds_validates_order() {
        let _ =
            ResponseTimer::from_bounds(SimDuration::from_micros(2), SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "side-channel latency must be positive")]
    fn zero_tcomm_is_rejected() {
        let t = ResponseTimer::from_bounds(SimDuration::ZERO, SimDuration::from_micros(1));
        let _ = t.sync_budget(SimDuration::ZERO);
    }
}
