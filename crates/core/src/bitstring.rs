//! The presence bitstring `bs`.
//!
//! The reader's entire report to the server is one bit per slot: did
//! anybody answer? (Paper §4.1: the reader turns per-slot observations
//! into `bs = {… 1 0 1 1 0 …}`.) [`Bitstring`] is a compact, fixed-length
//! bit vector over `u64` words with exactly the operations the protocols
//! and attacks need: set/get, popcount, bitwise OR (the TRP collusion
//! attack merges bitstrings with `bss1 ∨ bss2`, Alg. 4), XOR/AND for
//! verification diffs, and mismatch enumeration for evidence reporting.

use std::fmt;

use crate::error::CoreError;

const WORD_BITS: usize = 64;

/// A fixed-length bit vector.
///
/// ```rust
/// use tagwatch_core::Bitstring;
///
/// let mut bs = Bitstring::zeros(8);
/// bs.set(2, true)?;
/// bs.set(5, true)?;
/// assert_eq!(bs.count_ones(), 2);
/// assert_eq!(bs.to_string(), "00100100");
/// # Ok::<(), tagwatch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bitstring {
    len: usize,
    words: Vec<u64>,
}

impl Bitstring {
    /// An all-zero bitstring of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Bitstring {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Reinitializes this bitstring to `len` all-zero bits, reusing the
    /// existing word allocation when it is large enough.
    ///
    /// This is the buffer-reuse primitive behind the zero-allocation
    /// round engine: a [`crate::engine::RoundScratch`] resets one
    /// bitstring per round instead of allocating a fresh one.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Builds a bitstring from booleans.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bs = Bitstring::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bs.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        bs
    }

    /// Length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitstring has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BitOutOfRange`] if `index >= len`.
    pub fn get(&self, index: usize) -> Result<bool, CoreError> {
        if index >= self.len {
            return Err(CoreError::BitOutOfRange {
                index,
                len: self.len,
            });
        }
        Ok((self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1)
    }

    /// Writes bit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BitOutOfRange`] if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) -> Result<(), CoreError> {
        if index >= self.len {
            return Err(CoreError::BitOutOfRange {
                index,
                len: self.len,
            });
        }
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
        Ok(())
    }

    /// Number of set bits (occupied slots).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits (empty slots).
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Bitwise OR — the colluding readers' merge step (Alg. 4 line 3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn or(&self, other: &Bitstring) -> Result<Bitstring, CoreError> {
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise AND.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn and(&self, other: &Bitstring) -> Result<Bitstring, CoreError> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise XOR — the verification diff.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn xor(&self, other: &Bitstring) -> Result<Bitstring, CoreError> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Number of positions where the two bitstrings disagree.
    ///
    /// Computed word-at-a-time (XOR + popcount per `u64`) with no
    /// intermediate allocation — this is the verdict comparison on the
    /// per-round hot path, so it must not churn the allocator or walk
    /// bits one by one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn hamming_distance(&self, other: &Bitstring) -> Result<usize, CoreError> {
        self.check_len(other)?;
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Index of the first position where the two bitstrings disagree,
    /// or `None` when they are identical.
    ///
    /// Scans whole `u64` words and only inspects bits inside the first
    /// differing word (via trailing-zeros), so agreement over long
    /// prefixes costs one compare per 64 slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn first_mismatch(&self, other: &Bitstring) -> Result<Option<usize>, CoreError> {
        self.check_len(other)?;
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                return Ok(Some(wi * WORD_BITS + diff.trailing_zeros() as usize));
            }
        }
        Ok(None)
    }

    /// Indices of all disagreeing positions, ascending — the server's
    /// evidence when a verification fails.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn mismatch_indices(&self, other: &Bitstring) -> Result<Vec<usize>, CoreError> {
        self.check_len(other)?;
        let mut out = Vec::new();
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut diff = a ^ b;
            while diff != 0 {
                out.push(wi * WORD_BITS + diff.trailing_zeros() as usize);
                diff &= diff - 1;
            }
        }
        Ok(out)
    }

    /// Iterates (ascending) over positions set in `self` but clear in
    /// `other` — "expected occupied, came back empty", the desync
    /// diagnosis's candidate slots — one word at a time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if lengths differ.
    pub fn iter_dropped_ones<'a>(
        &'a self,
        other: &'a Bitstring,
    ) -> Result<impl Iterator<Item = usize> + 'a, CoreError> {
        self.check_len(other)?;
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(move |(wi, (&a, &b))| {
                let base = wi * WORD_BITS;
                let mut bits = a & !b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(base + tz)
                    }
                })
            }))
    }

    fn check_len(&self, other: &Bitstring) -> Result<(), CoreError> {
        if self.len != other.len {
            return Err(CoreError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(())
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * WORD_BITS;
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(base + tz)
                }
            })
        })
    }

    /// Iterates over all bits as booleans, ascending.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1)
    }

    /// Converts to a boolean vector.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    fn zip_words<F: Fn(u64, u64) -> u64>(
        &self,
        other: &Bitstring,
        op: F,
    ) -> Result<Bitstring, CoreError> {
        if self.len != other.len {
            return Err(CoreError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| op(a, b))
            .collect::<Vec<_>>();
        let mut out = Bitstring {
            len: self.len,
            words,
        };
        out.mask_tail();
        Ok(out)
    }

    /// Clears any bits beyond `len` in the last word, preserving the
    /// invariant that unused bits are zero (required for `Eq`/`Hash` and
    /// popcounts to be well defined).
    fn mask_tail(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }
}

impl fmt::Display for Bitstring {
    /// Renders as a `0`/`1` string, slot 0 first. Strings longer than
    /// 256 bits are elided in the middle.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LIMIT: usize = 256;
        if self.len <= LIMIT {
            for b in self.iter() {
                write!(f, "{}", if b { '1' } else { '0' })?;
            }
        } else {
            for i in 0..(LIMIT / 2) {
                let b = (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1;
                write!(f, "{}", if b { '1' } else { '0' })?;
            }
            write!(f, "…({} bits)…", self.len - LIMIT)?;
            for i in (self.len - LIMIT / 2)..self.len {
                let b = (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1;
                write!(f, "{}", if b { '1' } else { '0' })?;
            }
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bitstring {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Bitstring::from_bools(&bits)
    }
}

impl From<&[bool]> for Bitstring {
    fn from(bits: &[bool]) -> Self {
        Bitstring::from_bools(bits)
    }
}

impl From<Vec<bool>> for Bitstring {
    fn from(bits: Vec<bool>) -> Self {
        Bitstring::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(pattern: &str) -> Bitstring {
        pattern.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn zeros_has_no_set_bits() {
        let b = Bitstring::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.count_zeros(), 130);
    }

    #[test]
    fn set_get_round_trip_across_word_boundaries() {
        let mut b = Bitstring::zeros(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            b.set(i, true).unwrap();
            assert!(b.get(i).unwrap(), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false).unwrap();
        assert!(!b.get(64).unwrap());
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn out_of_range_access_errors() {
        let mut b = Bitstring::zeros(10);
        assert!(matches!(
            b.get(10),
            Err(CoreError::BitOutOfRange { index: 10, len: 10 })
        ));
        assert!(b.set(11, true).is_err());
    }

    #[test]
    fn or_merges_like_colluding_readers() {
        // Alg. 4: b̂s = bss1 ∨ bss2 reconstructs the honest bitstring.
        let s1 = bs("10010");
        let s2 = bs("01010");
        assert_eq!(s1.or(&s2).unwrap(), bs("11010"));
    }

    #[test]
    fn xor_and_hamming_measure_disagreement() {
        let a = bs("110010");
        let b = bs("100011");
        assert_eq!(a.xor(&b).unwrap(), bs("010001"));
        assert_eq!(a.hamming_distance(&b).unwrap(), 2);
        assert_eq!(a.mismatch_indices(&b).unwrap(), vec![1, 5]);
    }

    #[test]
    fn and_intersects() {
        let a = bs("1101");
        let b = bs("1011");
        assert_eq!(a.and(&b).unwrap(), bs("1001"));
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let a = Bitstring::zeros(5);
        let b = Bitstring::zeros(6);
        assert!(matches!(
            a.or(&b),
            Err(CoreError::LengthMismatch { left: 5, right: 6 })
        ));
        assert!(a.xor(&b).is_err());
        assert!(a.and(&b).is_err());
        assert!(a.hamming_distance(&b).is_err());
    }

    #[test]
    fn iter_ones_lists_indices_in_order() {
        let b = bs("0100100001");
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn iter_ones_handles_multiword() {
        let mut b = Bitstring::zeros(150);
        for i in [3usize, 64, 100, 149] {
            b.set(i, true).unwrap();
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 64, 100, 149]);
    }

    #[test]
    fn bools_round_trip() {
        let pattern: Vec<bool> = (0..97).map(|i| i % 3 == 0).collect();
        let b = Bitstring::from_bools(&pattern);
        assert_eq!(b.to_bools(), pattern);
        let c: Bitstring = pattern.clone().into();
        assert_eq!(b, c);
    }

    #[test]
    fn display_small_and_elided() {
        assert_eq!(bs("10110").to_string(), "10110");
        let big = Bitstring::zeros(1000);
        let text = big.to_string();
        assert!(text.contains("…(744 bits)…"));
    }

    #[test]
    fn equality_ignores_tail_garbage() {
        // Constructing through ops must keep tail bits masked so Eq and
        // Hash stay structural.
        let a = bs("101");
        let complement_src = bs("010");
        let ored = a.or(&complement_src).unwrap();
        assert_eq!(ored, bs("111"));
        assert_eq!(ored.count_ones(), 3);
    }

    #[test]
    fn empty_bitstring_behaves() {
        let e = Bitstring::zeros(0);
        assert!(e.is_empty());
        assert_eq!(e.count_ones(), 0);
        assert_eq!(e.to_string(), "");
        assert_eq!(e.or(&Bitstring::zeros(0)).unwrap(), e);
    }

    #[test]
    fn from_iterator_collects() {
        let b: Bitstring = [true, false, true].into_iter().collect();
        assert_eq!(b.to_string(), "101");
    }

    #[test]
    fn reset_reuses_buffer_and_clears_bits() {
        let mut b = Bitstring::zeros(200);
        for i in [0usize, 63, 64, 199] {
            b.set(i, true).unwrap();
        }
        b.reset(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        // Growing again must also come up all-zero.
        b.set(129, true).unwrap();
        b.reset(300);
        assert_eq!(b.len(), 300);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b, Bitstring::zeros(300));
    }

    #[test]
    fn first_mismatch_finds_earliest_disagreement() {
        let a = bs("110010");
        let b = bs("100011");
        assert_eq!(a.first_mismatch(&b).unwrap(), Some(1));
        assert_eq!(a.first_mismatch(&a).unwrap(), None);
        // Across a word boundary: identical first word, diff at bit 70.
        let mut x = Bitstring::zeros(100);
        let mut y = Bitstring::zeros(100);
        x.set(3, true).unwrap();
        y.set(3, true).unwrap();
        x.set(70, true).unwrap();
        assert_eq!(x.first_mismatch(&y).unwrap(), Some(70));
        assert!(Bitstring::zeros(5)
            .first_mismatch(&Bitstring::zeros(6))
            .is_err());
    }

    #[test]
    fn word_level_hamming_matches_bitwise_count() {
        // Cross-check the word-at-a-time hamming against a per-bit loop
        // on multiword strings with dense tails.
        let a: Bitstring = (0..193).map(|i| i % 3 == 0).collect();
        let b: Bitstring = (0..193).map(|i| i % 5 == 0).collect();
        let naive = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert_eq!(a.hamming_distance(&b).unwrap(), naive);
        assert_eq!(a.mismatch_indices(&b).unwrap().len(), naive);
        let first = a.first_mismatch(&b).unwrap().unwrap();
        assert_eq!(first, a.mismatch_indices(&b).unwrap()[0]);
    }

    #[test]
    fn iter_dropped_ones_lists_expected_but_empty_slots() {
        let expected = bs("110101");
        let observed = bs("100110");
        // Set in expected, clear in observed: positions 1 and 5.
        assert_eq!(
            expected
                .iter_dropped_ones(&observed)
                .unwrap()
                .collect::<Vec<_>>(),
            vec![1, 5]
        );
        // Multiword, ascending across the boundary.
        let mut e = Bitstring::zeros(140);
        let o = Bitstring::zeros(140);
        for i in [5usize, 64, 139] {
            e.set(i, true).unwrap();
        }
        assert_eq!(
            e.iter_dropped_ones(&o).unwrap().collect::<Vec<_>>(),
            vec![5, 64, 139]
        );
        assert!(e.iter_dropped_ones(&Bitstring::zeros(3)).is_err());
    }
}
