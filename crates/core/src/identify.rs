//! Missing-tag **identification** — from *whether* to *which*.
//!
//! The paper detects that more than `m` tags are gone; the natural
//! operational follow-up (and the research line this paper started) is
//! pinning down *which* tags are missing, still without collecting IDs
//! over the air. This module implements an iterative bitstring
//! identifier built entirely from TRP rounds:
//!
//! * a slot the server expected **occupied** that comes back **empty**
//!   proves that *every* registry tag hashing there is absent (any one
//!   of them would have produced energy);
//! * a slot that comes back **occupied** whose registry pre-image
//!   contains exactly **one** tag not already known missing proves that
//!   tag present;
//! * everything else stays unresolved and is re-randomized by the next
//!   round's fresh nonce.
//!
//! Each round resolves a large fraction of tags (every singleton slot
//! resolves its tag; empty slots resolve whole pre-images), so the
//! expected number of rounds is `O(log n)` in practice. The driver is
//! oracle-based — pass a closure that scans the field, whether through
//! the device simulation or the fast path.

use std::collections::BTreeSet;

use rand::Rng;

use tagwatch_sim::{slot_for, FrameSize, TagId};

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::trp::TrpChallenge;

/// Classification state across identification rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Identifier {
    unresolved: BTreeSet<TagId>,
    present: BTreeSet<TagId>,
    missing: BTreeSet<TagId>,
    rounds: u32,
    slots_used: u64,
}

impl Identifier {
    /// Starts an identification over the registry.
    #[must_use]
    pub fn new<I: IntoIterator<Item = TagId>>(registry: I) -> Self {
        Identifier {
            unresolved: registry.into_iter().collect(),
            ..Identifier::default()
        }
    }

    /// Tags not yet classified.
    #[must_use]
    pub fn unresolved(&self) -> &BTreeSet<TagId> {
        &self.unresolved
    }

    /// Tags proven present so far.
    #[must_use]
    pub fn present(&self) -> &BTreeSet<TagId> {
        &self.present
    }

    /// Tags proven missing so far.
    #[must_use]
    pub fn missing(&self) -> &BTreeSet<TagId> {
        &self.missing
    }

    /// Rounds absorbed so far.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Total slots spent so far.
    #[must_use]
    pub fn slots_used(&self) -> u64 {
        self.slots_used
    }

    /// Whether every registry tag is classified.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.unresolved.is_empty()
    }

    /// Absorbs one scanned round.
    ///
    /// Soundness relies on the ideal-channel reading the analysis
    /// assumes: an empty slot proves absence of its pre-image, an
    /// occupied slot proves at least one pre-image member present.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResponseShapeMismatch`] if the bitstring
    /// length differs from the challenge frame.
    pub fn absorb_round(
        &mut self,
        challenge: &TrpChallenge,
        observed: &Bitstring,
    ) -> Result<(), CoreError> {
        let f = challenge.frame_size();
        if observed.len() as u64 != f.get() {
            return Err(CoreError::ResponseShapeMismatch {
                expected: f.get(),
                received: observed.len() as u64,
            });
        }
        self.rounds += 1;
        self.slots_used += f.get();
        let r = challenge.plan().nonce();

        // Pre-image of every slot over tags not already proven missing
        // (known-missing tags cannot contribute energy; known-present
        // ones can, so they stay in the pre-image for the singleton
        // rule).
        let mut preimage: Vec<Vec<TagId>> = vec![Vec::new(); f.as_usize()];
        for &id in self.unresolved.iter().chain(self.present.iter()) {
            preimage[slot_for(id, r, f) as usize].push(id);
        }

        for (slot, tags) in preimage.iter().enumerate() {
            if tags.is_empty() {
                continue;
            }
            if !observed.get(slot)? {
                // Silence proves the whole pre-image absent.
                for &id in tags {
                    // A tag previously proven present cannot be in an
                    // empty slot on an ideal channel; if the oracle
                    // contradicts itself we keep the stronger (missing)
                    // claim out and trust the earlier proof.
                    if self.unresolved.remove(&id) {
                        self.missing.insert(id);
                    }
                }
            } else {
                let candidates: Vec<TagId> = tags
                    .iter()
                    .copied()
                    .filter(|id| self.unresolved.contains(id))
                    .collect();
                let known_present_in_slot = tags.iter().any(|id| self.present.contains(id));
                // Energy with exactly one viable explanation proves it.
                if !known_present_in_slot && candidates.len() == 1 {
                    let id = candidates[0];
                    self.unresolved.remove(&id);
                    self.present.insert(id);
                }
            }
        }
        Ok(())
    }
}

/// Outcome of a full identification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyOutcome {
    /// Tags proven missing.
    pub missing: Vec<TagId>,
    /// Tags proven present.
    pub present: Vec<TagId>,
    /// Tags still unresolved when the round budget ran out (empty on a
    /// completed run).
    pub unresolved: Vec<TagId>,
    /// Rounds used.
    pub rounds: u32,
    /// Total slots spent.
    pub slots_used: u64,
}

/// Identification configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdentifyConfig {
    /// Slots per round as a multiple of the registry size; larger
    /// frames resolve more per round at more slots per round. 2 is a
    /// good default (≈ 60% of slots are singletons or empties).
    pub frame_factor: u64,
    /// Round budget before giving up on stragglers.
    pub max_rounds: u32,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            frame_factor: 2,
            max_rounds: 64,
        }
    }
}

/// Runs identification rounds against a scan oracle until every tag is
/// classified or the round budget is exhausted.
///
/// The oracle receives each round's challenge and returns the observed
/// bitstring — wire it to [`crate::trp::run_reader`] for the device
/// simulation or [`crate::trp::observed_bitstring`] for the fast path.
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::identify::{identify_missing, IdentifyConfig};
/// use tagwatch_core::trp::observed_bitstring;
/// use tagwatch_sim::TagPopulation;
///
/// # fn main() -> Result<(), tagwatch_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut floor = TagPopulation::with_sequential_ids(100);
/// let registry = floor.ids();
/// floor.remove_random(3, &mut rng)?;
///
/// let outcome = identify_missing(&registry, IdentifyConfig::default(), &mut rng, |ch| {
///     Ok(observed_bitstring(&floor.ids(), ch))
/// })?;
/// assert_eq!(outcome.missing.len(), 3);
/// assert!(outcome.unresolved.is_empty());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn identify_missing<R, O>(
    registry: &[TagId],
    config: IdentifyConfig,
    rng: &mut R,
    mut scan: O,
) -> Result<IdentifyOutcome, CoreError>
where
    R: Rng + ?Sized,
    O: FnMut(&TrpChallenge) -> Result<Bitstring, CoreError>,
{
    let n = registry.len() as u64;
    let f = FrameSize::new((n * config.frame_factor.max(1)).max(8))?;
    let mut identifier = Identifier::new(registry.iter().copied());

    while !identifier.is_complete() && identifier.rounds() < config.max_rounds {
        let challenge = TrpChallenge::generate(f, rng);
        let observed = scan(&challenge)?;
        identifier.absorb_round(&challenge, &observed)?;
    }

    Ok(IdentifyOutcome {
        missing: identifier.missing.iter().copied().collect(),
        present: identifier.present.iter().copied().collect(),
        unresolved: identifier.unresolved.iter().copied().collect(),
        rounds: identifier.rounds,
        slots_used: identifier.slots_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trp::observed_bitstring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TagPopulation;

    /// Oracle over a fixed present set (ideal channel).
    fn oracle(present: Vec<TagId>) -> impl FnMut(&TrpChallenge) -> Result<Bitstring, CoreError> {
        move |ch| Ok(observed_bitstring(&present, ch))
    }

    #[test]
    fn identifies_the_exact_stolen_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut floor = TagPopulation::with_sequential_ids(300);
        let registry = floor.ids();
        let stolen = floor.remove_random(12, &mut rng).unwrap();
        let mut stolen_ids: Vec<TagId> = stolen.iter().map(|t| t.id()).collect();
        stolen_ids.sort_unstable();

        let outcome = identify_missing(
            &registry,
            IdentifyConfig::default(),
            &mut rng,
            oracle(floor.ids()),
        )
        .unwrap();
        assert!(outcome.unresolved.is_empty(), "did not converge");
        assert_eq!(outcome.missing, stolen_ids);
        assert_eq!(outcome.present.len(), 288);
    }

    #[test]
    fn intact_set_identifies_everyone_present() {
        let mut rng = StdRng::seed_from_u64(2);
        let floor = TagPopulation::with_sequential_ids(150);
        let outcome = identify_missing(
            &floor.ids(),
            IdentifyConfig::default(),
            &mut rng,
            oracle(floor.ids()),
        )
        .unwrap();
        assert!(outcome.missing.is_empty());
        assert_eq!(outcome.present.len(), 150);
    }

    #[test]
    fn all_missing_identifies_in_one_round() {
        // Nobody answers: every slot is empty, every pre-image resolves
        // missing immediately.
        let mut rng = StdRng::seed_from_u64(3);
        let registry: Vec<TagId> = (1..=50u64).map(TagId::from).collect();
        let outcome = identify_missing(
            &registry,
            IdentifyConfig::default(),
            &mut rng,
            oracle(Vec::new()),
        )
        .unwrap();
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.missing.len(), 50);
    }

    #[test]
    fn converges_in_logarithmically_few_rounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut floor = TagPopulation::with_sequential_ids(1000);
        let registry = floor.ids();
        floor.remove_random(31, &mut rng).unwrap();
        let outcome = identify_missing(
            &registry,
            IdentifyConfig::default(),
            &mut rng,
            oracle(floor.ids()),
        )
        .unwrap();
        assert!(outcome.unresolved.is_empty());
        assert!(
            outcome.rounds <= 12,
            "took {} rounds for n=1000",
            outcome.rounds
        );
    }

    #[test]
    fn identification_costs_more_than_detection_less_than_collect_all() {
        // The cost hierarchy: detection (one Eq. 2 frame) < full
        // identification (a few 2n frames) < per-tag costs of a full
        // inventory in the time domain (96-bit IDs).
        let mut rng = StdRng::seed_from_u64(5);
        let mut floor = TagPopulation::with_sequential_ids(400);
        let registry = floor.ids();
        floor.remove_random(11, &mut rng).unwrap();

        let params = crate::MonitorParams::new(400, 10, 0.95).unwrap();
        let detect_slots = crate::trp_frame_size(&params).unwrap().get();
        let outcome = identify_missing(
            &registry,
            IdentifyConfig::default(),
            &mut rng,
            oracle(floor.ids()),
        )
        .unwrap();
        assert!(outcome.slots_used > detect_slots);
        assert!(
            outcome.slots_used < 30 * 400,
            "identification cost exploded: {}",
            outcome.slots_used
        );
    }

    #[test]
    fn round_budget_is_honoured() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut floor = TagPopulation::with_sequential_ids(200);
        let registry = floor.ids();
        floor.remove_random(7, &mut rng).unwrap();
        let outcome = identify_missing(
            &registry,
            IdentifyConfig {
                frame_factor: 1,
                max_rounds: 1,
            },
            &mut rng,
            oracle(floor.ids()),
        )
        .unwrap();
        assert_eq!(outcome.rounds, 1);
        // One dense round cannot classify everything…
        assert!(!outcome.unresolved.is_empty());
        // …but everything it did classify must be correct.
        for id in &outcome.missing {
            assert!(!floor.contains(*id));
        }
        for id in &outcome.present {
            assert!(floor.contains(*id));
        }
    }

    #[test]
    fn absorb_round_rejects_shape_mismatch() {
        let mut id = Identifier::new((1..=10u64).map(TagId::from));
        let mut rng = StdRng::seed_from_u64(7);
        let ch = TrpChallenge::generate(FrameSize::new(32).unwrap(), &mut rng);
        let bad = Bitstring::zeros(31);
        assert!(matches!(
            id.absorb_round(&ch, &bad),
            Err(CoreError::ResponseShapeMismatch { .. })
        ));
    }

    #[test]
    fn classifications_never_flip() {
        // Once proven, a tag's class is stable across further rounds.
        let mut rng = StdRng::seed_from_u64(8);
        let mut floor = TagPopulation::with_sequential_ids(120);
        let registry = floor.ids();
        floor.remove_random(5, &mut rng).unwrap();
        let present_ids = floor.ids();

        let f = FrameSize::new(256).unwrap();
        let mut id = Identifier::new(registry.iter().copied());
        let mut first_classified: Option<(BTreeSet<TagId>, BTreeSet<TagId>)> = None;
        for _ in 0..6 {
            let ch = TrpChallenge::generate(f, &mut rng);
            let bs = observed_bitstring(&present_ids, &ch);
            id.absorb_round(&ch, &bs).unwrap();
            if let Some((ref p, ref m)) = first_classified {
                assert!(p.is_subset(id.present()), "present flipped");
                assert!(m.is_subset(id.missing()), "missing flipped");
            }
            first_classified = Some((id.present().clone(), id.missing().clone()));
        }
    }
}
