//! # tagwatch-core
//!
//! The monitoring protocols of Tan, Sheng & Li, *"How to Monitor for
//! Missing RFID Tags"* (ICDCS 2008): detect that **more than `m`** of
//! `n` registered RFID tags are missing, with confidence **≥ α**,
//! *without collecting a single tag ID over the air*.
//!
//! ## The idea
//!
//! Low-cost tags pick their framed-slotted-ALOHA reply slot
//! deterministically: `sn = h(id ⊕ r) mod f`. A server that knows every
//! ID can therefore precompute the exact occupancy bitstring an intact
//! set must produce for any challenge `(f, r)` — so the reader only
//! reports one bit per slot, and a single frame replaces a full
//! inventory. Frame sizing (how large must `f` be so that `m + 1`
//! missing tags are noticed with probability `> α`) is Theorem 1 /
//! Eq. 2, implemented in [`math`] and [`frame`].
//!
//! ## The two protocols
//!
//! * [`trp`] — **Trusted Reader Protocol**: the single-frame scheme
//!   above.
//! * [`utrp`] — **Untrusted Reader Protocol**: hardens TRP against a
//!   dishonest reader colluding with an accomplice who holds the stolen
//!   tags, via per-reply re-seeding, tag hardware counters, and a
//!   response deadline (Theorems 3–5 / Eq. 3).
//!
//! The [`server`] module ties everything into a challenge/verify
//! lifecycle with a counter mirror; [`bitstring`], [`nonce`], [`timer`],
//! [`params`], and [`verdict`] are the supporting vocabulary.
//!
//! ## Quick start
//!
//! ```rust
//! use rand::SeedableRng;
//! use tagwatch_core::{trp, MonitorServer};
//! use tagwatch_sim::{TagId, TagPopulation};
//!
//! # fn main() -> Result<(), tagwatch_core::CoreError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! // Server registers 1000 tags; tolerate 10 missing at 95% confidence.
//! let ids: Vec<TagId> = (1..=1000u64).map(TagId::from).collect();
//! let mut server = MonitorServer::new(ids, 10, 0.95)?;
//!
//! // The physical population (simulated), with 11 tags stolen.
//! let mut warehouse = TagPopulation::with_sequential_ids(1000);
//! warehouse.remove_random(11, &mut rng)?;
//!
//! // One challenge, one frame, one bitstring — no IDs on the air.
//! let challenge = server.issue_trp_challenge(&mut rng)?;
//! let bs = trp::observed_bitstring(&warehouse.ids(), &challenge);
//! let report = server.verify_trp(challenge, &bs)?;
//! // With the Eq. 2 frame size this raises an alarm with prob > 0.95.
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitstring;
pub mod engine;
pub mod error;
pub mod executor;
pub mod faulty;
pub mod frame;
pub mod groups;
pub mod identify;
pub mod math;
pub mod nonce;
pub mod params;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod snapshot;
pub mod timer;
pub mod trp;
pub mod utrp;
pub mod verdict;

pub use bitstring::Bitstring;
pub use engine::{
    batched_min_scan, sequential_min_scan, RoundEngine, RoundScratch, ScanJob, ScanParams,
    ScanStats, SubframeCursor, SCAN_BATCH,
};
pub use error::CoreError;
pub use executor::RoundExecutor;
pub use faulty::{run_device_round_with, run_honest_reader_with, simulate_round_with};
pub use frame::{
    trp_detection_at, trp_frame_size, trp_frame_size_with_model, utrp_frame_size, FrameSizer,
    UtrpSizing,
};
pub use groups::{GroupedAudit, GroupedMonitor, GroupedReport};
pub use identify::{identify_missing, Identifier, IdentifyConfig, IdentifyOutcome};
pub use math::{detection_probability, utrp_detection_probability, EmptySlotModel};
pub use nonce::{NonceCursor, NonceSequence};
pub use params::MonitorParams;
pub use protocol::{Protocol, Trp, Utrp};
pub use registry::RegistrySnapshot;
pub use server::{MonitorServer, ResyncHypothesis, ServerConfig};
pub use snapshot::{StateCapture, StateRestore};
pub use timer::ResponseTimer;
pub use trp::TrpChallenge;
pub use utrp::{UtrpChallenge, UtrpParticipant, UtrpResponse};
pub use verdict::{MonitorReport, ProtocolKind, Verdict};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::bitstring::Bitstring;
    pub use crate::error::CoreError;
    pub use crate::executor::RoundExecutor;
    pub use crate::faulty::{run_device_round_with, run_honest_reader_with, simulate_round_with};
    pub use crate::frame::{trp_frame_size, utrp_frame_size, UtrpSizing};
    pub use crate::math::{detection_probability, utrp_detection_probability, EmptySlotModel};
    pub use crate::nonce::NonceSequence;
    pub use crate::params::MonitorParams;
    pub use crate::protocol::Protocol;
    pub use crate::server::{MonitorServer, ResyncHypothesis, ServerConfig};
    pub use crate::timer::ResponseTimer;
    pub use crate::trp::{self, TrpChallenge};
    pub use crate::utrp::{self, UtrpChallenge, UtrpResponse};
    pub use crate::verdict::{MonitorReport, ProtocolKind, Verdict};
}
