//! UTRP — the Untrusted Reader Protocol (paper §5).
//!
//! TRP falls to a pair of colluding readers: split the set, scan both
//! halves under the same `(f, r)`, OR the bitstrings (Alg. 4). UTRP
//! breaks that with three mechanisms:
//!
//! 1. **Re-seeding** (Alg. 6): after *every* slot that receives a reply,
//!    the remaining tags are re-announced a shrunken frame — the number
//!    of slots left — with the next nonce from a server-committed
//!    sequence. No reader can predict where the next reply lands, so
//!    split readers must synchronize after every reply to stay
//!    consistent.
//! 2. **Hardware counters** (Alg. 7): every tag mixes a monotone counter
//!    `ct` into its hash and increments it on *every* announcement it
//!    hears. Scanning twice, or rewinding to re-seed "backwards"
//!    (Fig. 3), changes every subsequent slot choice — detectably.
//! 3. **A response deadline** (§5.4): bounds how many synchronizations
//!    the colluders can afford (see [`crate::timer`]).
//!
//! ### Counter semantics
//!
//! The paper leaves one detail open: whether a tag that has already
//! replied keeps counting later announcements. We model **yes** — a
//! powered tag in range hears every announcement — so after a round
//! every in-range tag's counter has advanced by the same amount (the
//! announcement count), and the server's mirror stays predictable.
//! Out-of-range (stolen) tags hear nothing and desynchronize, which is
//! precisely what makes their later reintroduction detectable.

use rand::Rng;

use tagwatch_sim::hash::slot_for_counted;
use tagwatch_sim::{Counter, FrameSize, Nonce, SimDuration, TagId, TagPopulation, TimingModel};

use crate::bitstring::Bitstring;
use crate::engine::{sequential_min_scan, RoundEngine, RoundScratch};
use crate::error::CoreError;
use crate::nonce::NonceSequence;
use crate::timer::ResponseTimer;

/// A single-use UTRP challenge: frame size, the pre-committed nonce
/// sequence `(r₁, …, r_f)`, and the response timer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UtrpChallenge {
    frame: FrameSize,
    nonces: NonceSequence,
    timer: ResponseTimer,
}

impl UtrpChallenge {
    /// Creates a challenge from parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if the nonce sequence is
    /// shorter than the frame (a protocol-following round can consume up
    /// to `f` nonces).
    pub fn new(
        frame: FrameSize,
        nonces: NonceSequence,
        timer: ResponseTimer,
    ) -> Result<Self, CoreError> {
        if (nonces.len() as u64) < frame.get() {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "utrp needs {} nonces for a {} frame, got {}",
                    frame.get(),
                    frame,
                    nonces.len()
                ),
            });
        }
        Ok(UtrpChallenge {
            frame,
            nonces,
            timer,
        })
    }

    /// Draws a fresh challenge for frame `f` under `timing`.
    pub fn generate<R: Rng + ?Sized>(f: FrameSize, timing: &TimingModel, rng: &mut R) -> Self {
        UtrpChallenge {
            frame: f,
            nonces: NonceSequence::for_frame(f, rng),
            timer: ResponseTimer::for_frame(timing, f),
        }
    }

    /// The frame size.
    #[must_use]
    pub fn frame_size(&self) -> FrameSize {
        self.frame
    }

    /// The committed nonce sequence.
    #[must_use]
    pub fn nonces(&self) -> &NonceSequence {
        &self.nonces
    }

    /// The response timer.
    #[must_use]
    pub fn timer(&self) -> ResponseTimer {
        self.timer
    }
}

/// One tag's view in a UTRP round simulation: identity, current counter,
/// and whether it is mute (detuned — hears announcements, never replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UtrpParticipant {
    /// The tag's ID.
    pub id: TagId,
    /// The tag's counter *before* the round.
    pub counter: Counter,
    /// Whether the tag is present but unable to reply.
    pub mute: bool,
}

impl UtrpParticipant {
    /// A healthy participant.
    #[must_use]
    pub fn new(id: TagId, counter: Counter) -> Self {
        UtrpParticipant {
            id,
            counter,
            mute: false,
        }
    }
}

/// The deterministic result of a UTRP round over a known set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome {
    /// The occupancy bitstring `bs` (length = frame size).
    pub bitstring: Bitstring,
    /// How many `(f, r)` announcements were made (1 + re-seeds); every
    /// in-range tag's counter advanced by exactly this amount.
    pub announcements: u64,
}

/// One reader's incremental state over a tag subset during a UTRP
/// round — the original (array-of-structs) engine, kept for the
/// collusion attack in `tagwatch-attack` and as the baseline the perf
/// harness measures the struct-of-arrays engine
/// ([`crate::engine::RoundScratch`], which now backs [`simulate_round`])
/// against.
///
/// Two observations make rounds fast without changing semantics:
///
/// 1. Within a sub-frame, only the **minimum** slot any active tag chose
///    matters — it is the first reply, which immediately triggers the
///    next re-seed. Everything before it is silence.
/// 2. Counters advance uniformly (+1 per announcement heard), so the
///    effective counter is `base + announcements` and no per-tag writes
///    are needed until the round ends.
///
/// The slot-by-slot executable specification is kept as
/// [`simulate_round_reference`]; the two are tested to agree exactly.
#[derive(Debug, Clone)]
pub struct SubsetRound {
    parts: Vec<UtrpParticipant>,
    replied: Vec<bool>,
    active: Vec<usize>,
    announcements: u64,
    next_rel: Option<u64>,
    next_members: Vec<usize>,
}

impl SubsetRound {
    /// Starts a round over the given participants (counters at their
    /// pre-round values).
    #[must_use]
    pub fn new(parts: Vec<UtrpParticipant>) -> Self {
        let active: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.mute)
            .map(|(i, _)| i)
            .collect();
        let replied = vec![false; parts.len()];
        SubsetRound {
            parts,
            replied,
            active,
            announcements: 0,
            next_rel: None,
            next_members: Vec::new(),
        }
    }

    /// Handles an `(f_sub, r)` announcement: every participant's
    /// effective counter advances, and the earliest reply slot among
    /// active participants is recomputed.
    pub fn announce(&mut self, r: Nonce, f_sub: FrameSize) {
        self.announcements += 1;
        self.next_rel = None;
        self.next_members.clear();
        for &i in &self.active {
            let p = &self.parts[i];
            let ct = Counter::new(p.counter.get().wrapping_add(self.announcements));
            let sn = slot_for_counted(p.id, r, ct, f_sub);
            match self.next_rel {
                Some(best) if sn > best => {}
                Some(best) if sn == best => self.next_members.push(i),
                _ => {
                    self.next_rel = Some(sn);
                    self.next_members.clear();
                    self.next_members.push(i);
                }
            }
        }
    }

    /// The relative slot (within the current sub-frame) of the next
    /// reply, if any active participant will reply.
    #[must_use]
    pub fn next_reply_rel(&self) -> Option<u64> {
        self.next_rel
    }

    /// The participant indices that chose the minimal slot — the tags
    /// about to reply (possibly colliding) at
    /// [`SubsetRound::next_reply_rel`].
    #[must_use]
    pub fn next_reply_members(&self) -> &[usize] {
        &self.next_members
    }

    /// Consumes the pending reply: all tags that chose the minimal slot
    /// have now answered and keep silent for the rest of the round.
    pub fn take_reply(&mut self) {
        for &i in &self.next_members {
            self.replied[i] = true;
        }
        let replied = &self.replied;
        self.active.retain(|&i| !replied[i]);
        self.next_rel = None;
        self.next_members.clear();
    }

    /// Announcements made so far.
    #[must_use]
    pub fn announcements(&self) -> u64 {
        self.announcements
    }

    /// Ends the round, returning the participants with their counters
    /// advanced by the announcement count.
    #[must_use]
    pub fn finish(mut self) -> (Vec<UtrpParticipant>, u64) {
        let announcements = self.announcements;
        for p in &mut self.parts {
            p.counter = Counter::new(p.counter.get().wrapping_add(announcements));
        }
        (self.parts, announcements)
    }
}

/// Executes one honest UTRP round (Algs. 6–7) over `participants`,
/// advancing their counters in place.
///
/// This one function is used by *both* sides of the protocol: the
/// server runs it over its registry mirror to predict `bs`, and
/// [`run_honest_reader`] runs it over the physical population — the
/// paper's determinism argument made executable.
///
/// Internally this is the struct-of-arrays sub-frame-skipping engine
/// ([`crate::engine::RoundScratch`]), operating **in place** — no
/// participant clone, no copy-back; [`simulate_round_reference`] is the
/// literal slot-by-slot form, and the two are tested to agree
/// bit-for-bit.
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] if the sequence is too
/// short (impossible through [`UtrpChallenge`], which validates length).
pub fn simulate_round(
    participants: &mut [UtrpParticipant],
    f: FrameSize,
    nonces: &NonceSequence,
) -> Result<RoundOutcome, CoreError> {
    let mut scratch = RoundScratch::new();
    let announcements = simulate_round_scratch(&mut scratch, participants, f, nonces)?;
    Ok(RoundOutcome {
        bitstring: scratch.take_bitstring(),
        announcements,
    })
}

/// [`simulate_round`] through a caller-owned [`RoundEngine`]
/// (typically a [`RoundScratch`], or the pooled sharded engine in
/// `tagwatch-analytics`): loads the participants into the engine's
/// arrays, runs the round, and
/// advances every participant's counter in place by the announcement
/// count. The bitstring stays in the scratch
/// ([`RoundScratch::bitstring`]) so repeated rounds allocate nothing.
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] if the sequence is too
/// short.
pub fn simulate_round_scratch<E: RoundEngine>(
    scratch: &mut E,
    participants: &mut [UtrpParticipant],
    f: FrameSize,
    nonces: &NonceSequence,
) -> Result<u64, CoreError> {
    scratch.load_participants(participants);
    let announcements = scratch.run(f, nonces)?;
    for p in participants.iter_mut() {
        p.counter = Counter::new(p.counter.get().wrapping_add(announcements));
    }
    Ok(announcements)
}

/// The literal slot-by-slot form of Algs. 6–7, kept as an executable
/// specification of [`simulate_round`] (which must agree exactly).
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] if the sequence is too
/// short.
pub fn simulate_round_reference(
    participants: &mut [UtrpParticipant],
    f: FrameSize,
    nonces: &NonceSequence,
) -> Result<RoundOutcome, CoreError> {
    let total = f.get();
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut cursor = nonces.cursor();
    let mut replied = vec![false; participants.len()];
    let mut announcements = 0u64;

    // Announce (f', r): every in-range tag increments its counter;
    // un-replied, un-mute tags pick a relative slot in [0, f').
    let mut announce = |participants: &mut [UtrpParticipant],
                        replied: &[bool],
                        f_sub: FrameSize,
                        announcements: &mut u64|
     -> Result<Vec<Vec<usize>>, CoreError> {
        let r = cursor.next_nonce()?;
        *announcements += 1;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); f_sub.as_usize()];
        for (i, p) in participants.iter_mut().enumerate() {
            p.counter.increment();
            if !replied[i] && !p.mute {
                let sn = slot_for_counted(p.id, r, p.counter, f_sub);
                buckets[sn as usize].push(i);
            }
        }
        Ok(buckets)
    };

    let mut subframe_start = 0u64;
    let mut buckets = announce(participants, &replied, f, &mut announcements)?;

    for global in 0..total {
        let rel = (global - subframe_start) as usize;
        if buckets[rel].is_empty() {
            continue;
        }
        bs.set(global as usize, true)?;
        for &i in &buckets[rel] {
            replied[i] = true;
        }
        // Alg. 6 line 6: f' = f − sn (1-based sn) = slots remaining
        // after this one. Re-seed only if any slots remain.
        let remaining = total - (global + 1);
        if remaining > 0 {
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            buckets = announce(participants, &replied, f_sub, &mut announcements)?;
        }
    }

    Ok(RoundOutcome {
        bitstring: bs,
        announcements,
    })
}

/// What an honest reader returns to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtrpResponse {
    /// The assembled bitstring.
    pub bitstring: Bitstring,
    /// Total scanning time under the round's timing model.
    pub elapsed: SimDuration,
    /// Announcements made ( = 1 + re-seeds).
    pub announcements: u64,
}

/// Runs an honest reader against the physical population: simulates the
/// round, advances every in-range tag's hardware counter, and bills the
/// scanning time under `timing`.
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::utrp::{run_honest_reader, UtrpChallenge};
/// use tagwatch_sim::{FrameSize, TagPopulation, TimingModel};
///
/// # fn main() -> Result<(), tagwatch_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let timing = TimingModel::gen2();
/// let challenge = UtrpChallenge::generate(FrameSize::new(64)?, &timing, &mut rng);
///
/// let mut floor = TagPopulation::with_sequential_ids(20);
/// let response = run_honest_reader(&mut floor, &challenge, &timing)?;
/// assert_eq!(response.bitstring.len(), 64);
/// // The deadline is calibrated so honest rounds always pass.
/// assert!(challenge.timer().accepts(response.elapsed));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`simulate_round`] errors.
pub fn run_honest_reader(
    population: &mut TagPopulation,
    challenge: &UtrpChallenge,
    timing: &TimingModel,
) -> Result<UtrpResponse, CoreError> {
    let mut scratch = RoundScratch::new();
    run_honest_reader_scratch(population, challenge, timing, &mut scratch)
}

/// [`run_honest_reader`] through a caller-owned [`RoundEngine`]: the
/// population is loaded straight into the engine's arrays (no
/// intermediate participant `Vec`), and the only per-round allocation
/// left is the response bitstring itself — the owned artifact handed
/// to the server.
///
/// # Errors
///
/// Propagates round-simulation errors.
pub fn run_honest_reader_scratch<E: RoundEngine>(
    population: &mut TagPopulation,
    challenge: &UtrpChallenge,
    timing: &TimingModel,
    scratch: &mut E,
) -> Result<UtrpResponse, CoreError> {
    scratch.load_population(population);
    let announcements = scratch.run(challenge.frame_size(), challenge.nonces())?;
    for tag in population.iter_mut() {
        tag.advance_counter(announcements);
    }
    let bitstring = scratch.bitstring().clone();
    let slots = bitstring.len() as u64;
    let occupied = bitstring.count_ones() as u64;
    let elapsed = round_duration_parts(timing, slots, occupied, announcements);
    Ok(UtrpResponse {
        bitstring,
        elapsed,
        announcements,
    })
}

/// [`run_honest_reader_scratch`] with telemetry: when `obs` is enabled
/// the round runs through the counting scanner, so probe and
/// candidate-filter totals land in the registry. The round result is
/// bit-identical to the uninstrumented path either way (the counting
/// scanner shares the plain scan's monomorphized selection loop).
///
/// # Errors
///
/// Propagates round-simulation errors.
pub fn run_honest_reader_scratch_observed<E: RoundEngine>(
    population: &mut TagPopulation,
    challenge: &UtrpChallenge,
    timing: &TimingModel,
    scratch: &mut E,
    obs: &tagwatch_obs::Obs,
) -> Result<UtrpResponse, CoreError> {
    scratch.load_population(population);
    let announcements = scratch.run_observed(challenge.frame_size(), challenge.nonces(), obs)?;
    for tag in population.iter_mut() {
        tag.advance_counter(announcements);
    }
    let bitstring = scratch.bitstring().clone();
    let slots = bitstring.len() as u64;
    let occupied = bitstring.count_ones() as u64;
    let elapsed = round_duration_parts(timing, slots, occupied, announcements);
    Ok(UtrpResponse {
        bitstring,
        elapsed,
        announcements,
    })
}

/// Runs one honest UTRP round by driving the **actual tag device state
/// machines** (`tagwatch_sim::Tag`, Alg. 7) slot by slot — the third
/// and lowest-level implementation of the round, completing the
/// triangle with [`simulate_round`] (fast) and
/// [`simulate_round_reference`] (participant-level spec). All three are
/// tested to agree exactly.
///
/// Mute (detuned) tags hear announcements but never answer; stolen tags
/// are simply absent from `population`.
///
/// # Errors
///
/// Propagates [`CoreError::NonceSequenceExhausted`] on a malformed
/// challenge.
pub fn run_device_round(
    population: &mut TagPopulation,
    challenge: &UtrpChallenge,
    timing: &TimingModel,
) -> Result<UtrpResponse, CoreError> {
    use tagwatch_sim::tag::SlotMode;

    let f = challenge.frame_size();
    let total = f.get();
    let mut cursor = challenge.nonces().cursor();
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut announcements = 0u64;
    let mut replied: std::collections::BTreeSet<TagId> = std::collections::BTreeSet::new();

    // Broadcast (f_sub, r): every in-range tag hears it (counter++ via
    // Tag::on_frame); tags that already replied stay silent regardless.
    let mut announce = |population: &mut TagPopulation,
                        f_sub: FrameSize,
                        announcements: &mut u64|
     -> Result<Nonce, CoreError> {
        let r = cursor.next_nonce()?;
        *announcements += 1;
        for tag in population.iter_mut() {
            tag.on_frame(f_sub, r, SlotMode::Counted);
        }
        Ok(r)
    };

    let mut f_sub = f;
    let mut subframe_start = 0u64;
    announce(population, f_sub, &mut announcements)?;

    let mut global = 0u64;
    while global < total {
        let rel = global - subframe_start;
        // Poll every device for this slot (Alg. 7 lines 3–5).
        let mut any_reply = false;
        for tag in population.iter_mut() {
            if replied.contains(&tag.id()) || tag.is_detuned() {
                continue;
            }
            if tag.on_slot(rel, false).is_some() {
                any_reply = true;
                replied.insert(tag.id());
            }
        }
        if any_reply {
            bs.set(global as usize, true)?;
            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            f_sub = FrameSize::new(remaining)?;
            announce(population, f_sub, &mut announcements)?;
        }
        global += 1;
    }

    let outcome = RoundOutcome {
        bitstring: bs,
        announcements,
    };
    let elapsed = round_duration(timing, &outcome);
    Ok(UtrpResponse {
        bitstring: outcome.bitstring,
        elapsed,
        announcements,
    })
}

/// Scanning time of a round under `timing`: one frame announcement per
/// (re-)seed, plus each slot's broadcast and body (occupied slots carry
/// a presence burst).
#[must_use]
pub fn round_duration(timing: &TimingModel, outcome: &RoundOutcome) -> SimDuration {
    round_duration_parts(
        timing,
        outcome.bitstring.len() as u64,
        outcome.bitstring.count_ones() as u64,
        outcome.announcements,
    )
}

/// [`round_duration`] from its raw components, for callers that keep
/// the bitstring in a scratch buffer rather than a [`RoundOutcome`].
#[must_use]
pub fn round_duration_parts(
    timing: &TimingModel,
    slots: u64,
    occupied: u64,
    announcements: u64,
) -> SimDuration {
    let empty = slots - occupied;
    timing.frame_announce * announcements
        + timing.slot_broadcast * slots
        + timing.presence_reply * occupied
        + timing.empty_slot * empty
}

/// The server-side prediction: what an intact set with the given
/// counter mirror must return, plus the announcement count to advance
/// the mirror by on success. Does not mutate the registry view.
///
/// # Errors
///
/// Propagates [`simulate_round`] errors.
pub fn expected_round(
    registry: &[(TagId, Counter)],
    challenge: &UtrpChallenge,
) -> Result<RoundOutcome, CoreError> {
    let mut scratch = RoundScratch::new();
    scratch.load_pairs(registry.iter().copied());
    let announcements = scratch.run(challenge.frame_size(), challenge.nonces())?;
    Ok(RoundOutcome {
        bitstring: scratch.take_bitstring(),
        announcements,
    })
}

/// Like [`expected_round`], but also attributes every occupied slot to
/// the registry tags predicted to reply there (colliding tags share a
/// slot). The attribution is what lets the server turn "slot 17 was
/// expected occupied but came back empty" into "tags {a, b} did not
/// show where predicted" during desync diagnosis.
///
/// # Errors
///
/// Propagates [`simulate_round`] errors.
pub fn attributed_round(
    registry: &[(TagId, Counter)],
    challenge: &UtrpChallenge,
) -> Result<(RoundOutcome, Vec<Vec<TagId>>), CoreError> {
    let f = challenge.frame_size();
    let mut attribution: Vec<Vec<TagId>> = vec![Vec::new(); f.as_usize()];
    let mut scratch = RoundScratch::new();
    scratch.load_pairs(registry.iter().copied());
    let announcements = scratch.run_attributed_with(
        f,
        challenge.nonces(),
        sequential_min_scan,
        |slot, members| {
            attribution[slot as usize] = members.iter().map(|&i| registry[i as usize].0).collect();
        },
    )?;
    Ok((
        RoundOutcome {
            bitstring: scratch.take_bitstring(),
            announcements,
        },
        attribution,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn participants(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
            .collect()
    }

    #[test]
    fn fast_round_matches_slot_by_slot_reference() {
        // The sub-frame-skipping engine must agree bit-for-bit with the
        // literal Algs. 6–7 execution — bitstring, announcement count,
        // and every final counter — across population shapes.
        for (n, f_raw, seed) in [
            (1usize, 8u64, 1u64),
            (10, 16, 2),
            (50, 50, 3),
            (100, 300, 4),
            (200, 150, 5), // more tags than slots: dense collisions
        ] {
            let ch = challenge(f_raw, seed);
            let mut fast: Vec<UtrpParticipant> = (1..=n as u64)
                .map(|i| {
                    let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 7));
                    p.mute = i % 11 == 0;
                    p
                })
                .collect();
            let mut reference = fast.clone();
            let a = simulate_round(&mut fast, ch.frame_size(), ch.nonces()).unwrap();
            let b = simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(a, b, "outcome diverged for n={n} f={f_raw}");
            assert_eq!(fast, reference, "counters diverged for n={n} f={f_raw}");
        }
    }

    #[test]
    fn device_round_matches_fast_and_reference_paths() {
        // The full triangle: tag-device state machines == participant
        // spec == fast engine, bitstring / announcements / counters.
        for (n, f_raw, detune, seed) in [
            (1usize, 8u64, false, 11u64),
            (25, 60, false, 12),
            (80, 200, true, 13),
            (150, 120, false, 14), // denser than the frame
        ] {
            let ch = challenge(f_raw, seed);
            let mut pop = TagPopulation::with_sequential_ids(n);
            if detune {
                let mut rng = StdRng::seed_from_u64(seed);
                pop.detune_random(n / 10, &mut rng).unwrap();
            }
            let mut parts: Vec<UtrpParticipant> = pop
                .iter()
                .map(|t| UtrpParticipant {
                    id: t.id(),
                    counter: t.counter(),
                    mute: t.is_detuned(),
                })
                .collect();

            let device = run_device_round(&mut pop, &ch, &TimingModel::gen2()).unwrap();
            let fast = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();

            assert_eq!(device.bitstring, fast.bitstring, "n={n} f={f_raw}");
            assert_eq!(device.announcements, fast.announcements, "n={n} f={f_raw}");
            // Device counters advanced identically.
            for (tag, part) in pop.iter().zip(parts.iter()) {
                assert_eq!(tag.counter(), part.counter, "counter of {}", tag.id());
            }
        }
    }

    #[test]
    fn large_population_rounds_match_reference() {
        // The SoA engine at the scales it was built for. Frames are
        // kept modest so the O(n·f) reference stays debug-tractable;
        // density (n ≫ f) maximizes collisions, sub-frame churn, and
        // swap-remove traffic — the paths most likely to diverge.
        for (n, f_raw, seed) in [(10_000u64, 256u64, 21u64), (100_000, 64, 22)] {
            let ch = challenge(f_raw, seed);
            let mut fast: Vec<UtrpParticipant> = (1..=n)
                .map(|i| {
                    let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 23));
                    p.mute = i % 17 == 0;
                    p
                })
                .collect();
            let mut reference = fast.clone();
            let a = simulate_round(&mut fast, ch.frame_size(), ch.nonces()).unwrap();
            let b = simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(a, b, "outcome diverged for n={n} f={f_raw}");
            assert_eq!(fast, reference, "counters diverged for n={n} f={f_raw}");
        }
    }

    #[test]
    fn large_population_device_rounds_match_engine() {
        // Device-state-machine parity at scale: every physical tag's
        // counter must advance exactly as the engine's uniform rule
        // predicts, including detuned (mute) tags.
        for (n, f_raw, seed) in [(10_000usize, 256u64, 31u64), (100_000, 64, 32)] {
            let ch = challenge(f_raw, seed);
            let mut pop = TagPopulation::with_sequential_ids(n);
            let mut rng = StdRng::seed_from_u64(seed);
            pop.detune_random(n / 20, &mut rng).unwrap();
            let mut parts: Vec<UtrpParticipant> = pop
                .iter()
                .map(|t| UtrpParticipant {
                    id: t.id(),
                    counter: t.counter(),
                    mute: t.is_detuned(),
                })
                .collect();

            let device = run_device_round(&mut pop, &ch, &TimingModel::gen2()).unwrap();
            let fast = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();

            assert_eq!(device.bitstring, fast.bitstring, "n={n} f={f_raw}");
            assert_eq!(device.announcements, fast.announcements, "n={n} f={f_raw}");
            for (tag, part) in pop.iter().zip(parts.iter()) {
                assert_eq!(tag.counter(), part.counter, "counter of {}", tag.id());
            }
        }
    }

    #[test]
    fn round_is_deterministic() {
        let ch = challenge(128, 1);
        let mut a = participants(50);
        let mut b = participants(50);
        let ra = simulate_round(&mut a, ch.frame_size(), ch.nonces()).unwrap();
        let rb = simulate_round(&mut b, ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn server_prediction_matches_honest_reader() {
        // The protocol's core property: with an intact set and synced
        // counters, the field bitstring equals the registry prediction.
        let ch = challenge(256, 2);
        let mut pop = TagPopulation::with_sequential_ids(100);
        let registry: Vec<(TagId, Counter)> = pop.iter().map(|t| (t.id(), t.counter())).collect();

        let expected = expected_round(&registry, &ch).unwrap();
        let response = run_honest_reader(&mut pop, &ch, &TimingModel::gen2()).unwrap();

        assert_eq!(response.bitstring, expected.bitstring);
        assert_eq!(response.announcements, expected.announcements);
        // Every tag's counter advanced by the announcement count.
        assert!(pop
            .iter()
            .all(|t| t.counter().get() == expected.announcements));
    }

    #[test]
    fn every_participant_replies_exactly_once_into_bs() {
        // With an ideal channel each tag claims one slot; collisions
        // merge claims, so occupied slots ≤ n and > 0 for n > 0.
        let ch = challenge(512, 3);
        let mut parts = participants(64);
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        let ones = outcome.bitstring.count_ones();
        assert!(ones > 0 && ones <= 64, "ones = {ones}");
    }

    #[test]
    fn announcements_equal_reply_slots_plus_one_except_last_slot_edge() {
        let ch = challenge(256, 4);
        let mut parts = participants(40);
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        let reply_slots = outcome.bitstring.count_ones() as u64;
        // One initial announcement + one re-seed per reply slot, minus
        // one if the final slot replied (no slots remain to re-seed).
        let last_replied = outcome.bitstring.get(outcome.bitstring.len() - 1).unwrap();
        let expected = 1 + reply_slots - u64::from(last_replied);
        assert_eq!(outcome.announcements, expected);
    }

    #[test]
    fn counters_desynchronize_missing_tags() {
        // Stolen tags hear nothing: their counters stay put while the
        // field advances — the server's mirror exposes them next round.
        let ch = challenge(128, 5);
        let mut pop = TagPopulation::with_sequential_ids(30);
        let mut rng = StdRng::seed_from_u64(9);
        let stolen = pop.split_random(5, &mut rng).unwrap();
        run_honest_reader(&mut pop, &ch, &TimingModel::gen2()).unwrap();
        assert!(pop.iter().all(|t| t.counter().get() > 0));
        assert!(stolen.iter().all(|t| t.counter().get() == 0));
    }

    #[test]
    fn mute_participants_never_occupy_slots_but_count_announcements() {
        let ch = challenge(64, 6);
        let mut parts = participants(10);
        for p in &mut parts {
            p.mute = true;
        }
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(outcome.bitstring.count_ones(), 0);
        assert_eq!(outcome.announcements, 1);
        assert!(parts.iter().all(|p| p.counter.get() == 1));
    }

    #[test]
    fn missing_tags_change_the_bitstring_with_high_probability() {
        let mut detected = 0;
        let trials = 200;
        for seed in 0..trials {
            let ch = challenge(300, 1000 + seed);
            let full: Vec<(TagId, Counter)> = (1..=100u64)
                .map(|i| (TagId::from(i), Counter::ZERO))
                .collect();
            let expected = expected_round(&full, &ch).unwrap();

            let mut rng = StdRng::seed_from_u64(seed);
            let mut pop = TagPopulation::with_sequential_ids(100);
            pop.split_random(6, &mut rng).unwrap();
            let response = run_honest_reader(&mut pop, &ch, &TimingModel::gen2()).unwrap();
            if response.bitstring != expected.bitstring {
                detected += 1;
            }
        }
        // f = 300 for n = 100 is generous; detection should be near 1.
        assert!(detected as f64 / trials as f64 > 0.95);
    }

    #[test]
    fn stale_counters_change_the_bitstring() {
        // A desynced mirror (e.g. after an unverified scan) must not
        // silently verify: predictions with wrong counters diverge.
        let ch = challenge(256, 7);
        let synced: Vec<(TagId, Counter)> = (1..=50u64)
            .map(|i| (TagId::from(i), Counter::ZERO))
            .collect();
        let stale: Vec<(TagId, Counter)> = (1..=50u64)
            .map(|i| (TagId::from(i), Counter::new(3)))
            .collect();
        let a = expected_round(&synced, &ch).unwrap();
        let b = expected_round(&stale, &ch).unwrap();
        assert_ne!(a.bitstring, b.bitstring);
    }

    #[test]
    fn challenge_validates_nonce_length() {
        let f = FrameSize::new(10).unwrap();
        let short = NonceSequence::generate(9, &mut StdRng::seed_from_u64(0));
        let timer = ResponseTimer::for_frame(&TimingModel::gen2(), f);
        assert!(matches!(
            UtrpChallenge::new(f, short, timer),
            Err(CoreError::InvalidParams { .. })
        ));
    }

    #[test]
    fn honest_reader_meets_the_deadline() {
        // The timer is calibrated so an honest reader always passes.
        let ch = challenge(200, 8);
        let mut pop = TagPopulation::with_sequential_ids(150);
        let response = run_honest_reader(&mut pop, &ch, &TimingModel::gen2()).unwrap();
        assert!(
            ch.timer().accepts(response.elapsed),
            "honest elapsed {} exceeds deadline {}",
            response.elapsed,
            ch.timer().deadline()
        );
    }

    #[test]
    fn single_slot_frame_works() {
        let ch = challenge(1, 9);
        let mut parts = participants(3);
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(outcome.bitstring.len(), 1);
        assert!(outcome.bitstring.get(0).unwrap());
        assert_eq!(outcome.announcements, 1);
    }

    #[test]
    fn empty_participant_list_yields_all_zero_bs() {
        let ch = challenge(32, 10);
        let mut parts: Vec<UtrpParticipant> = Vec::new();
        let outcome = simulate_round(&mut parts, ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(outcome.bitstring.count_ones(), 0);
        assert_eq!(outcome.announcements, 1);
    }

    #[test]
    fn attributed_round_matches_expected_round() {
        let mut rng = StdRng::seed_from_u64(51);
        let ch =
            UtrpChallenge::generate(FrameSize::new(120).unwrap(), &TimingModel::gen2(), &mut rng);
        let registry: Vec<(TagId, Counter)> = (1..=40u64)
            .map(|i| (TagId::from(i), Counter::new(i * 3)))
            .collect();
        let expected = expected_round(&registry, &ch).unwrap();
        let (outcome, attribution) = attributed_round(&registry, &ch).unwrap();
        assert_eq!(outcome, expected);
        assert_eq!(attribution.len(), 120);
        // A slot is occupied iff it has attributed repliers, and every
        // non-mute tag replies exactly once.
        let mut seen: Vec<TagId> = Vec::new();
        for (slot, tags) in attribution.iter().enumerate() {
            assert_eq!(outcome.bitstring.get(slot).unwrap(), !tags.is_empty());
            seen.extend_from_slice(tags);
        }
        seen.sort_unstable();
        let mut all: Vec<TagId> = registry.iter().map(|&(id, _)| id).collect();
        all.sort_unstable();
        assert_eq!(seen, all);
    }

    #[test]
    fn round_duration_accounts_announcements_and_bodies() {
        let timing = TimingModel::gen2();
        let outcome = RoundOutcome {
            bitstring: Bitstring::from_bools(&[true, false, true, false]),
            announcements: 3,
        };
        let d = round_duration(&timing, &outcome);
        let expected = timing.frame_announce * 3
            + timing.slot_broadcast * 4
            + timing.presence_reply * 2
            + timing.empty_slot * 2;
        assert_eq!(d, expected);
    }

    #[test]
    fn next_reply_members_are_exactly_the_minimal_slot_choosers() {
        // The about-to-reply set exposed to fault injectors must hold
        // every active participant whose counted slot equals
        // `next_reply_rel`, and nobody else.
        let f_sub = FrameSize::new(16).unwrap();
        let r = Nonce::new(0xdead_beef);
        let mut round = SubsetRound::new(participants(40));
        round.announce(r, f_sub);

        let best = round.next_reply_rel().expect("40 active tags must reply");
        let expected: Vec<usize> = (0..40usize)
            .filter(|&i| {
                // One announcement heard: effective counter is ZERO + 1.
                let id = TagId::from(i as u64 + 1);
                slot_for_counted(id, r, Counter::new(1), f_sub) == best
            })
            .collect();
        assert!(!expected.is_empty());
        assert_eq!(round.next_reply_members(), expected.as_slice());

        // Consuming the reply clears the pending set until re-announced.
        round.take_reply();
        assert!(round.next_reply_members().is_empty());
        assert_eq!(round.next_reply_rel(), None);
    }
}
