//! Optimal frame sizing (paper Eq. 2 and Eq. 3).
//!
//! Scanning time is proportional to the frame size, so the server wants
//! the *minimal* `f` meeting the accuracy constraint:
//!
//! * TRP (Eq. 2): `f* = min{f : g(n, m+1, f) > α}` — by Theorem 2,
//!   satisfying the worst case `x = m + 1` satisfies every `x > m`.
//! * UTRP (Eq. 3): the minimal `f` whose colluder-aware detection
//!   probability exceeds `α`, plus a small safety pad (the paper adds
//!   5–10 slots because Theorem 3's horizon is an expectation).
//!
//! Both detection probabilities are monotone non-decreasing in `f`
//! (verified in the math-module tests), so the search gallops to an
//! upper bound and binary-searches down, then takes one extra local
//! scan to guard against any floating-point non-monotonicity at the
//! boundary.

use tagwatch_sim::FrameSize;

use crate::error::CoreError;
use crate::math::binomial::LnFactorial;
use crate::math::detection::{detection_probability_with, EmptySlotModel};
use crate::math::utrp::utrp_detection_probability_with;
use crate::params::MonitorParams;

/// UTRP sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UtrpSizing {
    /// The colluders' synchronization budget `c` in slots. The paper's
    /// evaluation uses `c = 20`.
    pub sync_budget: u64,
    /// Safety pad added to the minimal feasible frame (paper §6 adds
    /// "a very small number of slots (between 5–10)" to absorb the
    /// expectation approximation in Theorem 3).
    pub safety_pad: u64,
}

impl Default for UtrpSizing {
    fn default() -> Self {
        UtrpSizing {
            sync_budget: 20,
            safety_pad: 8,
        }
    }
}

/// Finds the minimal `f ≥ lo` with `feasible(f)`, assuming monotone
/// feasibility; `None` if nothing up to [`FrameSize::MAX`] works.
///
/// `FnMut` so the predicate can grow a shared log-factorial table as
/// the gallop widens.
fn min_feasible<F: FnMut(u64) -> bool>(lo: u64, mut feasible: F) -> Option<u64> {
    let cap = FrameSize::MAX;
    let lo = lo.max(1);
    // Gallop for a feasible upper bound.
    let mut hi = lo;
    while !feasible(hi) {
        if hi >= cap {
            return None;
        }
        hi = (hi * 2).min(cap);
    }
    // Bisect on (infeasible, hi]; lo − 1 is below the range, treated as
    // infeasible.
    let mut infeasible = lo - 1;
    while hi - infeasible > 1 {
        let mid = infeasible + (hi - infeasible) / 2;
        if mid == 0 || !feasible(mid) {
            infeasible = mid;
        } else {
            hi = mid;
        }
    }
    // Guard: walk down through any floating-point non-monotone blip.
    while hi > lo && feasible(hi - 1) {
        hi -= 1;
    }
    Some(hi)
}

/// Eq. 2: the minimal TRP frame size for the given parameters.
///
/// ```rust
/// use tagwatch_core::{trp_frame_size, MonitorParams};
///
/// let params = MonitorParams::new(1000, 10, 0.95)?;
/// let f = trp_frame_size(&params)?;
/// assert!(f.get() > 0);
/// # Ok::<(), tagwatch_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::NoFeasibleFrame`] if no frame up to
/// [`FrameSize::MAX`] satisfies the constraint (practically unreachable
/// for valid [`MonitorParams`]).
pub fn trp_frame_size(params: &MonitorParams) -> Result<FrameSize, CoreError> {
    trp_frame_size_with_model(params, EmptySlotModel::Poisson)
}

/// [`trp_frame_size`] with an explicit empty-slot model.
///
/// # Errors
///
/// Same as [`trp_frame_size`].
pub fn trp_frame_size_with_model(
    params: &MonitorParams,
    model: EmptySlotModel,
) -> Result<FrameSize, CoreError> {
    FrameSizer::new().trp_with_model(params, model)
}

/// Reusable frame-sizing state: one log-factorial table shared across
/// every TRP *and* UTRP sizing call made through it.
///
/// Both Eq. 2 and Eq. 3 searches spend their time in binomial terms
/// over the same `ln(k!)` values; a [`LnFactorial`] rebuilt per call
/// (let alone per gallop retry, as the TRP search once did) dominates
/// sizing cost for large `n`. The sizer instead grows a single table
/// monotonically — growth is bit-identical to a direct build (see
/// [`LnFactorial::grow_to`]), so results are exactly those of the free
/// functions, which now delegate here with a throwaway sizer.
#[derive(Debug, Clone)]
pub struct FrameSizer {
    table: LnFactorial,
}

impl Default for FrameSizer {
    fn default() -> Self {
        FrameSizer::new()
    }
}

impl FrameSizer {
    /// A sizer with an empty table; the first search pays the build.
    #[must_use]
    pub fn new() -> Self {
        FrameSizer {
            table: LnFactorial::up_to(0),
        }
    }

    /// Largest `k` the shared table currently covers (diagnostics).
    #[must_use]
    pub fn table_max(&self) -> u64 {
        self.table.max()
    }

    /// Eq. 2 with the Poisson empty-slot model: see [`trp_frame_size`].
    ///
    /// # Errors
    ///
    /// As [`trp_frame_size`].
    pub fn trp(&mut self, params: &MonitorParams) -> Result<FrameSize, CoreError> {
        self.trp_with_model(params, EmptySlotModel::Poisson)
    }

    /// Eq. 2 with an explicit empty-slot model: see
    /// [`trp_frame_size_with_model`].
    ///
    /// # Errors
    ///
    /// As [`trp_frame_size`].
    pub fn trp_with_model(
        &mut self,
        params: &MonitorParams,
        model: EmptySlotModel,
    ) -> Result<FrameSize, CoreError> {
        let n = params.population();
        let x = params.worst_case_missing();
        let alpha = params.confidence();

        // Detection at frame f needs ln-factorials up to f (and n ≥ x).
        // Grow ahead of the gallop in power-of-two steps so a search
        // that overshoots its starting guess extends the same table
        // instead of rebuilding it.
        let mut table_cap = (4 * n).clamp(64, FrameSize::MAX);
        loop {
            self.table.grow_to(table_cap);
            let table = &self.table;
            let feasible = |f: u64| {
                f <= table_cap && detection_probability_with(table, n, x, f, model) > alpha
            };
            match min_feasible(1, feasible) {
                Some(f) if f <= table_cap => {
                    return FrameSize::new(f).map_err(CoreError::from);
                }
                _ => {
                    if table_cap >= FrameSize::MAX {
                        return Err(CoreError::NoFeasibleFrame {
                            n,
                            m: params.tolerance(),
                        });
                    }
                    table_cap = (table_cap * 2).min(FrameSize::MAX);
                }
            }
        }
    }

    /// Eq. 3 over the shared table: see [`utrp_frame_size`].
    ///
    /// # Errors
    ///
    /// As [`utrp_frame_size`].
    pub fn utrp(
        &mut self,
        params: &MonitorParams,
        sizing: UtrpSizing,
    ) -> Result<FrameSize, CoreError> {
        let n = params.population();
        let m = params.tolerance();
        let alpha = params.confidence();
        if m + 1 >= n {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "utrp sizing needs n > m + 1 (got n = {n}, m = {m}) so both colluders hold tags"
                ),
            });
        }
        let table = &mut self.table;
        let feasible = |f: u64| {
            utrp_detection_probability_with(
                table,
                n,
                m,
                f,
                sizing.sync_budget,
                EmptySlotModel::Poisson,
            ) > alpha
        };
        let f = min_feasible(1, feasible).ok_or(CoreError::NoFeasibleFrame { n, m })?;
        FrameSize::new(f + sizing.safety_pad).map_err(CoreError::from)
    }
}

/// The TRP detection probability achieved at a given frame size — the
/// quantity Fig. 5 plots against the `α` line.
#[must_use]
pub fn trp_detection_at(params: &MonitorParams, f: FrameSize) -> f64 {
    crate::math::detection::detection_probability(
        params.population(),
        params.worst_case_missing(),
        f.get(),
        EmptySlotModel::Poisson,
    )
}

/// Eq. 3: the minimal UTRP frame size (plus the configured safety pad)
/// for the given parameters and collusion budget.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] when `n ≤ m + 1` (no valid
/// colluder split exists) and [`CoreError::NoFeasibleFrame`] if nothing
/// up to [`FrameSize::MAX`] works.
pub fn utrp_frame_size(params: &MonitorParams, sizing: UtrpSizing) -> Result<FrameSize, CoreError> {
    FrameSizer::new().utrp(params, sizing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::utrp::utrp_detection_probability;

    fn params(n: u64, m: u64) -> MonitorParams {
        MonitorParams::new(n, m, 0.95).unwrap()
    }

    #[test]
    fn trp_frame_meets_constraint_minimally() {
        for &(n, m) in &[(100u64, 5u64), (500, 10), (1000, 20), (2000, 30)] {
            let p = params(n, m);
            let f = trp_frame_size(&p).unwrap().get();
            let at = |f: u64| {
                crate::math::detection::detection_probability(n, m + 1, f, EmptySlotModel::Poisson)
            };
            assert!(at(f) > 0.95, "n={n} m={m}: g({f}) = {}", at(f));
            if f > 1 {
                assert!(
                    at(f - 1) <= 0.95,
                    "n={n} m={m}: f={f} not minimal, g({}) = {}",
                    f - 1,
                    at(f - 1)
                );
            }
        }
    }

    #[test]
    fn trp_frame_shrinks_with_tolerance() {
        // Fig. 4's headline: larger tolerance → smaller frames.
        let f5 = trp_frame_size(&params(1000, 5)).unwrap().get();
        let f10 = trp_frame_size(&params(1000, 10)).unwrap().get();
        let f30 = trp_frame_size(&params(1000, 30)).unwrap().get();
        assert!(f5 > f10 && f10 > f30, "{f5} > {f10} > {f30} violated");
    }

    #[test]
    fn trp_frame_grows_roughly_linearly_in_population() {
        let f500 = trp_frame_size(&params(500, 10)).unwrap().get() as f64;
        let f1000 = trp_frame_size(&params(1000, 10)).unwrap().get() as f64;
        let f2000 = trp_frame_size(&params(2000, 10)).unwrap().get() as f64;
        let r1 = f1000 / f500;
        let r2 = f2000 / f1000;
        assert!(
            (1.3..=2.7).contains(&r1) && (1.3..=2.7).contains(&r2),
            "growth ratios {r1}, {r2} not roughly linear"
        );
    }

    #[test]
    fn trp_beats_collect_all_slot_count() {
        // Fig. 4: TRP uses fewer slots than n (collect-all needs at
        // least n slots to hear every tag) once tolerance is loose.
        let f = trp_frame_size(&params(2000, 30)).unwrap().get();
        assert!(f < 2000, "f = {f}");
    }

    #[test]
    fn stricter_confidence_needs_bigger_frames() {
        let loose = trp_frame_size(&MonitorParams::new(800, 10, 0.90).unwrap())
            .unwrap()
            .get();
        let strict = trp_frame_size(&MonitorParams::new(800, 10, 0.99).unwrap())
            .unwrap()
            .get();
        assert!(strict > loose, "{strict} <= {loose}");
    }

    #[test]
    fn utrp_frame_exceeds_trp_frame() {
        // Fig. 6: collusion resistance costs slots, but not many.
        for &(n, m) in &[(500u64, 5u64), (1000, 10), (2000, 30)] {
            let p = params(n, m);
            let trp = trp_frame_size(&p).unwrap().get();
            let utrp = utrp_frame_size(&p, UtrpSizing::default()).unwrap().get();
            assert!(utrp >= trp, "n={n} m={m}: utrp {utrp} < trp {trp}");
            assert!(
                utrp < 3 * trp + 200,
                "n={n} m={m}: utrp overhead implausibly large ({utrp} vs {trp})"
            );
        }
    }

    #[test]
    fn utrp_meets_constraint_after_pad_removal() {
        let p = params(1000, 10);
        let sizing = UtrpSizing::default();
        let f = utrp_frame_size(&p, sizing).unwrap().get();
        let unpadded = f - sizing.safety_pad;
        let d = utrp_detection_probability(
            1000,
            10,
            unpadded,
            sizing.sync_budget,
            EmptySlotModel::Poisson,
        );
        assert!(d > 0.95, "detection at unpadded frame {unpadded}: {d}");
        if unpadded > 1 {
            let d_prev = utrp_detection_probability(
                1000,
                10,
                unpadded - 1,
                sizing.sync_budget,
                EmptySlotModel::Poisson,
            );
            assert!(d_prev <= 0.95, "not minimal: {d_prev} at {}", unpadded - 1);
        }
    }

    #[test]
    fn utrp_frame_grows_with_sync_budget() {
        let p = params(1000, 10);
        let small = utrp_frame_size(
            &p,
            UtrpSizing {
                sync_budget: 5,
                safety_pad: 0,
            },
        )
        .unwrap()
        .get();
        let large = utrp_frame_size(
            &p,
            UtrpSizing {
                sync_budget: 80,
                safety_pad: 0,
            },
        )
        .unwrap()
        .get();
        assert!(large > small, "c=80 → {large} <= c=5 → {small}");
    }

    #[test]
    fn utrp_rejects_degenerate_split() {
        let p = MonitorParams::new(6, 5, 0.95).unwrap();
        assert!(matches!(
            utrp_frame_size(&p, UtrpSizing::default()),
            Err(CoreError::InvalidParams { .. })
        ));
    }

    #[test]
    fn trp_detection_at_reports_probability() {
        let p = params(500, 5);
        let f = trp_frame_size(&p).unwrap();
        let d = trp_detection_at(&p, f);
        assert!(d > 0.95 && d <= 1.0);
    }

    #[test]
    fn strict_monitoring_m_zero() {
        // m = 0, α = 0.99 (§4.3's "strict" example) must size cleanly.
        let p = MonitorParams::new(300, 0, 0.99).unwrap();
        let f = trp_frame_size(&p).unwrap().get();
        let g = crate::math::detection::detection_probability(300, 1, f, EmptySlotModel::Poisson);
        assert!(g > 0.99, "g({f}) = {g}");
    }

    #[test]
    fn tiny_population_sizes() {
        let p = MonitorParams::new(2, 0, 0.5).unwrap();
        let f = trp_frame_size(&p).unwrap();
        assert!(f.get() >= 1);
    }

    #[test]
    fn shared_sizer_matches_free_functions_across_protocols() {
        // One sizer, interleaved TRP and UTRP calls over several
        // parameter sets: every answer must equal the fresh-table free
        // function's, and the shared table must only ever grow.
        let mut sizer = FrameSizer::new();
        let mut last_max = 0;
        for &(n, m) in &[(2000u64, 30u64), (100, 5), (1000, 10), (500, 10)] {
            let p = params(n, m);
            let trp_shared = sizer.trp(&p).unwrap();
            assert_eq!(trp_shared, trp_frame_size(&p).unwrap(), "trp n={n} m={m}");
            let utrp_shared = sizer.utrp(&p, UtrpSizing::default()).unwrap();
            assert_eq!(
                utrp_shared,
                utrp_frame_size(&p, UtrpSizing::default()).unwrap(),
                "utrp n={n} m={m}"
            );
            assert!(sizer.table_max() >= last_max, "table shrank");
            last_max = sizer.table_max();
        }
    }
}
