//! Numerically stable binomial machinery.
//!
//! The detection analysis (Theorems 1, 3–5) is built on binomial
//! distributions with thousands of trials. Naive factorials overflow
//! instantly, so everything here works in log space from a cached
//! log-factorial table, and probability-mass iteration is truncated to
//! a ±σ window (the neglected tail mass is below 10⁻¹² at the default
//! 12σ, far under the 10⁻³-scale effects the protocols care about).

/// A precomputed table of `ln(k!)` for `k = 0..=max`.
///
/// Building the table is `O(max)`; every subsequent lookup and
/// [`ln_choose`](LnFactorial::ln_choose) is `O(1)`. Protocol code builds
/// one table per frame-size search and reuses it across thousands of
/// probability evaluations.
#[derive(Debug, Clone)]
pub struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    /// Builds the table up to `ln(max!)`.
    #[must_use]
    pub fn up_to(max: u64) -> Self {
        let mut t = LnFactorial { table: vec![0.0] }; // ln(0!) = 0
        t.grow_to(max);
        t
    }

    /// Extends the table to cover `ln(max!)`, reusing every entry
    /// already computed. A no-op when `max ≤ self.max()`.
    ///
    /// The log-factorial recurrence `ln(k!) = ln((k−1)!) + ln k`
    /// continues exactly from the last cached entry, so a grown table is
    /// bit-identical to one built with [`up_to`](LnFactorial::up_to)
    /// directly — growth is purely an amortization: a frame-size search
    /// that gallops past its initial guess pays only for the new
    /// entries, and one table can serve every sizing call of a server's
    /// lifetime.
    pub fn grow_to(&mut self, max: u64) {
        let want = max as usize + 1;
        if self.table.len() >= want {
            return;
        }
        self.table.reserve(want - self.table.len());
        // lint:allow(s2-panic): the table is seeded with ln(0!) = 0 at construction and never shrinks, so last() always exists
        let mut acc = *self.table.last().expect("table holds at least ln(0!)");
        for k in self.table.len() as u64..=max {
            acc += (k as f64).ln();
            self.table.push(acc);
        }
    }

    /// Largest `k` the table covers.
    #[must_use]
    pub fn max(&self) -> u64 {
        (self.table.len() - 1) as u64
    }

    /// `ln(k!)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the table size — a caller bug, since the
    /// table is always sized from the same `n`/`f` the caller iterates.
    #[must_use]
    pub fn ln_factorial(&self, k: u64) -> f64 {
        self.table[k as usize]
    }

    /// `ln C(n, k)`; returns `f64::NEG_INFINITY` when `k > n`.
    #[must_use]
    pub fn ln_choose(&self, n: u64, k: u64) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_factorial(n) - self.ln_factorial(k) - self.ln_factorial(n - k)
    }

    /// The binomial probability `P[Binomial(n, p) = k]`, computed in log
    /// space.
    ///
    /// Handles the degenerate `p ∈ {0, 1}` cases exactly.
    #[must_use]
    pub fn binomial_pmf(&self, n: u64, p: f64, k: u64) -> f64 {
        if k > n {
            return 0.0;
        }
        if p <= 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if p >= 1.0 {
            return if k == n { 1.0 } else { 0.0 };
        }
        let ln_pmf = self.ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
        ln_pmf.exp()
    }
}

/// The `k`-window of a binomial distribution containing all but a
/// negligible tail: `mean ± sigmas·σ`, clamped to `[0, n]`.
///
/// With `sigmas = 12` the excluded mass is below `2·exp(-72) ≈ 10⁻³¹`
/// by Hoeffding, i.e. vastly below floating-point noise.
#[must_use]
pub fn binomial_window(n: u64, p: f64, sigmas: f64) -> (u64, u64) {
    if n == 0 {
        return (0, 0);
    }
    if p <= 0.0 {
        return (0, 0);
    }
    if p >= 1.0 {
        return (n, n);
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let lo = (mean - sigmas * sd).floor().max(0.0) as u64;
    let hi = (mean + sigmas * sd).ceil().min(n as f64) as u64;
    (lo, hi)
}

/// Iterator over `(k, pmf)` pairs of `Binomial(n, p)` restricted to the
/// `sigmas`-window.
pub fn binomial_terms<'a>(
    table: &'a LnFactorial,
    n: u64,
    p: f64,
    sigmas: f64,
) -> impl Iterator<Item = (u64, f64)> + 'a {
    let (lo, hi) = binomial_window(n, p, sigmas);
    (lo..=hi).map(move |k| (k, table.binomial_pmf(n, p, k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_direct_computation() {
        let t = LnFactorial::up_to(20);
        let mut fact = 1.0f64;
        for k in 1..=20u64 {
            fact *= k as f64;
            assert!((t.ln_factorial(k) - fact.ln()).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn ln_choose_matches_pascal() {
        let t = LnFactorial::up_to(30);
        assert!((t.ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((t.ln_choose(30, 15).exp() - 155_117_520.0).abs() < 1.0);
        assert_eq!(t.ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        let t = LnFactorial::up_to(500);
        for &(n, p) in &[(10u64, 0.5f64), (100, 0.03), (500, 0.9)] {
            let total: f64 = (0..=n).map(|k| t.binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn pmf_degenerate_cases() {
        let t = LnFactorial::up_to(10);
        assert_eq!(t.binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(t.binomial_pmf(10, 0.0, 3), 0.0);
        assert_eq!(t.binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(t.binomial_pmf(10, 1.0, 9), 0.0);
        assert_eq!(t.binomial_pmf(10, 0.5, 11), 0.0);
    }

    #[test]
    fn pmf_handles_large_n_without_overflow() {
        let t = LnFactorial::up_to(100_000);
        let p = t.binomial_pmf(100_000, 0.5, 50_000);
        // Central term of a huge binomial: ~ 1/sqrt(pi*n/2) ≈ 0.0025.
        assert!(p > 0.002 && p < 0.003, "central pmf {p}");
    }

    #[test]
    fn window_contains_bulk_of_mass() {
        let t = LnFactorial::up_to(2_000);
        let n = 2_000u64;
        let p = 0.37;
        let mass: f64 = binomial_terms(&t, n, p, 12.0).map(|(_, pm)| pm).sum();
        assert!((mass - 1.0).abs() < 1e-9, "windowed mass {mass}");
    }

    #[test]
    fn window_respects_bounds() {
        assert_eq!(binomial_window(0, 0.5, 12.0), (0, 0));
        assert_eq!(binomial_window(10, 0.0, 12.0), (0, 0));
        assert_eq!(binomial_window(10, 1.0, 12.0), (10, 10));
        let (lo, hi) = binomial_window(100, 0.5, 2.0);
        assert!(lo >= 35 && hi <= 65 && lo < hi);
    }

    #[test]
    fn window_is_much_smaller_than_support_for_large_n() {
        let (lo, hi) = binomial_window(1_000_000, 0.5, 12.0);
        assert!(hi - lo < 15_000, "window too wide: {}", hi - lo);
    }

    #[test]
    fn table_max_reports_capacity() {
        assert_eq!(LnFactorial::up_to(7).max(), 7);
    }

    #[test]
    fn grown_table_is_bit_identical_to_direct_build() {
        let direct = LnFactorial::up_to(5_000);
        let mut grown = LnFactorial::up_to(3);
        grown.grow_to(40);
        grown.grow_to(17); // shrink request: no-op
        assert_eq!(grown.max(), 40);
        grown.grow_to(5_000);
        assert_eq!(grown.max(), direct.max());
        for k in 0..=5_000u64 {
            assert!(
                grown.ln_factorial(k).to_bits() == direct.ln_factorial(k).to_bits(),
                "k = {k}: grown {} != direct {}",
                grown.ln_factorial(k),
                direct.ln_factorial(k)
            );
        }
    }
}
