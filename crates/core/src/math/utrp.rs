//! UTRP sizing analysis (paper §5.4, Theorems 3–5, Eq. 3).
//!
//! Against colluding readers the server must oversize the frame: the
//! colluders can perfectly synchronize the **first `c` empty slots**
//! that the primary reader `R1` encounters (each sync costs one
//! round-trip on their side channel, and the response deadline only
//! leaves room for `c` of them). Theorem 3 converts that budget into an
//! expected *global-slot* horizon
//!
//! ```text
//! c′ = c / e^{−|s1|/f} = c · e^{(n−m−1)/f}
//! ```
//!
//! before which the returned bitstring is correct. Only tags replying
//! *after* slot `c′` carry detection signal: `x ~ B(m+1, 1−c′/f)` stolen
//! tags (Thm 4) and `y ~ B(n−m−1, 1−c′/f)` present tags (Thm 5) do so,
//! over an effective frame of `f − c′` slots. Eq. 3 then requires
//!
//! ```text
//! Σᵢ Σⱼ P(x=i) P(y=j) · g(i+j, i, f−c′) > α.
//! ```
//!
//! ### Implementation note: the inner sum in closed form
//!
//! `g(i+j, i, F)`'s binomial over empty slots depends on `i` only through
//! the factor `(1 − k/F)ⁱ`, so the sum over `i` is the probability
//! generating function of `x` evaluated at `B = 1 − k/F`:
//!
//! ```text
//! Σᵢ P(x=i)·Bⁱ = ((1−q) + q·B)^{m+1},   q = 1 − c′/f.
//! ```
//!
//! This collapses the triple sum of Eq. 3 to a double sum — identical
//! values (verified in tests against the literal triple sum), hundreds
//! of times faster inside the frame-size search.

use super::binomial::{binomial_terms, LnFactorial};
use super::detection::{powi_u64, EmptySlotModel, WINDOW_SIGMAS};

/// Theorem 3: the expected number of global slots after which the
/// colluders have spent their `c` synchronizations.
///
/// Not clamped: values `≥ f` mean the colluders can synchronize the
/// whole frame and detection is impossible at this `f`.
#[must_use]
pub fn sync_horizon(n: u64, m: u64, f: u64, c: u64) -> f64 {
    debug_assert!(m < n);
    let s1 = (n - m - 1) as f64;
    c as f64 * (s1 / f as f64).exp()
}

/// The left-hand side of Eq. 3: the probability that the server detects
/// the best-strategy colluder attack with frame size `f`, tolerance `m`,
/// population `n`, and a sync budget of `c` slots.
///
/// Returns 0 when the sync horizon covers the whole frame.
///
/// # Panics
///
/// Panics if `m + 1 >= n` (the split `|s1| = n − m − 1`, `|s2| = m + 1`
/// requires at least one tag on each side) or `f == 0`.
#[must_use]
pub fn utrp_detection_probability(n: u64, m: u64, f: u64, c: u64, model: EmptySlotModel) -> f64 {
    let mut table = LnFactorial::up_to(0);
    utrp_detection_probability_with(&mut table, n, m, f, c, model)
}

/// [`utrp_detection_probability`] against a caller-provided
/// log-factorial table, grown in place to whatever this evaluation
/// needs. Frame-size searches call this hundreds of times with nearby
/// `f`; sharing one table turns per-call `O(f)` rebuilds into a single
/// amortized build (see [`LnFactorial::grow_to`]).
///
/// # Panics
///
/// As [`utrp_detection_probability`].
#[must_use]
pub fn utrp_detection_probability_with(
    table: &mut LnFactorial,
    n: u64,
    m: u64,
    f: u64,
    c: u64,
    model: EmptySlotModel,
) -> f64 {
    assert!(m + 1 < n, "need n > m + 1 for a colluder split");
    assert!(f >= 1, "frame must have at least one slot");
    let c_prime = sync_horizon(n, m, f, c);
    if c_prime >= f as f64 {
        return 0.0;
    }
    // Effective frame for post-horizon detection.
    let f_eff = (f as f64 - c_prime).floor() as u64;
    if f_eff == 0 {
        return 0.0;
    }
    let q = 1.0 - c_prime / f as f64; // P[a tag replies after the horizon]
    let s1 = n - m - 1;
    let s2 = m + 1;

    table.grow_to(f_eff.max(s1));
    let table = &*table;
    let mut detect = 0.0f64;
    // Outer sum over y = j present-tag responders after the horizon.
    for (j, py) in binomial_terms(table, s1, q, WINDOW_SIGMAS) {
        // Inner binomial over empty slots of the effective frame, with
        // the sum over x collapsed via the PGF of B(m+1, q).
        let p_empty = model.empty_slot_probability(j, f_eff);
        let undetected: f64 = binomial_terms(table, f_eff, p_empty, WINDOW_SIGMAS)
            .map(|(k, pmf)| {
                let b = 1.0 - k as f64 / f_eff as f64;
                pmf * powi_u64((1.0 - q) + q * b, s2)
            })
            .sum();
        detect += py * (1.0 - undetected);
    }
    detect.clamp(0.0, 1.0)
}

/// The literal triple-sum form of Eq. 3, kept as an executable
/// specification: slow but textually faithful to the paper. Used by
/// tests to validate the PGF-collapsed fast path.
#[must_use]
pub fn utrp_detection_probability_reference(
    n: u64,
    m: u64,
    f: u64,
    c: u64,
    model: EmptySlotModel,
) -> f64 {
    assert!(m + 1 < n, "need n > m + 1 for a colluder split");
    assert!(f >= 1, "frame must have at least one slot");
    let c_prime = sync_horizon(n, m, f, c);
    if c_prime >= f as f64 {
        return 0.0;
    }
    let f_eff = (f as f64 - c_prime).floor() as u64;
    if f_eff == 0 {
        return 0.0;
    }
    let q = 1.0 - c_prime / f as f64;
    let s1 = n - m - 1;
    let s2 = m + 1;
    let table = LnFactorial::up_to(f_eff.max(s1).max(s2));

    let mut detect = 0.0;
    for i in 0..=s2 {
        let px = table.binomial_pmf(s2, q, i);
        if px == 0.0 {
            continue;
        }
        for (j, py) in binomial_terms(&table, s1, q, WINDOW_SIGMAS) {
            let g = super::detection::detection_probability_with(&table, i + j, i, f_eff, model);
            detect += px * py * g;
        }
    }
    detect.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const POISSON: EmptySlotModel = EmptySlotModel::Poisson;

    #[test]
    fn sync_horizon_matches_theorem_3() {
        // c' = c · e^{(n-m-1)/f}
        let c_prime = sync_horizon(1000, 10, 1000, 20);
        let expected = 20.0 * ((1000.0 - 11.0) / 1000.0f64).exp();
        assert!((c_prime - expected).abs() < 1e-9);
    }

    #[test]
    fn sync_horizon_grows_with_budget_and_density() {
        assert!(sync_horizon(1000, 10, 800, 40) > sync_horizon(1000, 10, 800, 20));
        assert!(sync_horizon(2000, 10, 800, 20) > sync_horizon(1000, 10, 800, 20));
        // Bigger frames dilute the tag density → smaller horizon.
        assert!(sync_horizon(1000, 10, 2000, 20) < sync_horizon(1000, 10, 1000, 20));
    }

    #[test]
    fn fully_synced_frame_is_undetectable() {
        // Tiny frame: c' >= f, the colluders cover everything.
        assert_eq!(utrp_detection_probability(100, 5, 25, 20, POISSON), 0.0);
    }

    #[test]
    fn detection_monotone_in_frame_size() {
        let mut prev = 0.0;
        for f in (200..=3000).step_by(200) {
            let d = utrp_detection_probability(1000, 10, f, 20, POISSON);
            assert!(d >= prev - 1e-9, "f={f}: {d} < {prev}");
            prev = d;
        }
        assert!(prev > 0.9, "large frames should detect reliably: {prev}");
    }

    #[test]
    fn detection_decreases_with_sync_budget() {
        let lo = utrp_detection_probability(500, 5, 600, 5, POISSON);
        let hi = utrp_detection_probability(500, 5, 600, 60, POISSON);
        assert!(
            lo > hi,
            "more collusion should hurt detection: c=5 → {lo}, c=60 → {hi}"
        );
    }

    #[test]
    fn zero_budget_reduces_to_trp() {
        // With c = 0 the colluders get no synchronization: c' = 0,
        // q = 1, the effective frame is the whole frame and every tag
        // carries signal — exactly the TRP analysis with x = m + 1.
        let n = 400u64;
        let m = 5u64;
        let f = 700u64;
        let utrp = utrp_detection_probability(n, m, f, 0, POISSON);
        let trp = super::super::detection::detection_probability(n, m + 1, f, POISSON);
        assert!((utrp - trp).abs() < 1e-9, "utrp {utrp} vs trp {trp}");
    }

    #[test]
    fn fast_path_matches_reference_triple_sum() {
        for &(n, m, f, c) in &[
            (100u64, 5u64, 300u64, 10u64),
            (300, 10, 600, 20),
            (500, 20, 700, 20),
            (200, 0, 400, 15),
        ] {
            let fast = utrp_detection_probability(n, m, f, c, POISSON);
            let reference = utrp_detection_probability_reference(n, m, f, c, POISSON);
            assert!(
                (fast - reference).abs() < 1e-6,
                "n={n} m={m} f={f} c={c}: fast {fast} vs ref {reference}"
            );
        }
    }

    #[test]
    fn shared_table_reuse_is_bit_identical_to_fresh_tables() {
        // One table reused across an ascending-then-descending sweep
        // (like a gallop + bisect) must reproduce the fresh-table value
        // exactly — growth never perturbs existing entries.
        let mut table = LnFactorial::up_to(0);
        for &f in &[200u64, 1600, 400, 3000, 50, 900] {
            let shared = utrp_detection_probability_with(&mut table, 800, 10, f, 20, POISSON);
            let fresh = utrp_detection_probability(800, 10, f, 20, POISSON);
            assert!(
                shared.to_bits() == fresh.to_bits(),
                "f={f}: shared {shared} vs fresh {fresh}"
            );
        }
    }

    #[test]
    fn values_are_probabilities() {
        for f in [50u64, 200, 1000, 4000] {
            let d = utrp_detection_probability(800, 10, f, 20, POISSON);
            assert!((0.0..=1.0).contains(&d), "f={f}: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "colluder split")]
    fn rejects_degenerate_split() {
        let _ = utrp_detection_probability(6, 5, 100, 20, POISSON);
    }
}
