//! Slot-occupancy moments for framed slotted ALOHA.
//!
//! The whole analysis — Theorem 1's empty-slot binomial, the zero
//! estimator, the Lee frame-sizing rule — reduces to properties of the
//! balls-into-bins occupancy process: `n` tags hashing uniformly into
//! `f` slots. This module provides the exact first two moments of the
//! empty-slot count `N₀` (and the singleton count `N₁`, which DFSA
//! throughput analysis needs), so code and tests can reference one
//! vetted source instead of re-deriving expectations inline.
//!
//! Exact formulas (occupancy distribution classics):
//!
//! ```text
//! E[N₀]   = f·(1 − 1/f)ⁿ
//! E[N₀²]  = f·(1−1/f)ⁿ + f(f−1)·(1 − 2/f)ⁿ
//! E[N₁]   = n·(1 − 1/f)^{n−1}
//! ```

/// Expected number of empty slots with `n` tags in `f` slots.
///
/// # Panics
///
/// Panics if `f == 0`.
#[must_use]
pub fn expected_empty_slots(n: u64, f: u64) -> f64 {
    assert!(f >= 1, "frame must have at least one slot");
    f as f64 * (1.0 - 1.0 / f as f64).powi(clamp_i32(n))
}

/// Variance of the empty-slot count.
///
/// # Panics
///
/// Panics if `f == 0`.
#[must_use]
pub fn empty_slots_variance(n: u64, f: u64) -> f64 {
    assert!(f >= 1, "frame must have at least one slot");
    let f_f = f as f64;
    let p1 = (1.0 - 1.0 / f_f).powi(clamp_i32(n));
    let p2 = if f == 1 {
        0.0
    } else {
        (1.0 - 2.0 / f_f).powi(clamp_i32(n))
    };
    let mean = f_f * p1;
    let second_moment = f_f * p1 + f_f * (f_f - 1.0) * p2;
    (second_moment - mean * mean).max(0.0)
}

/// Expected number of singleton slots (exactly one tag) — the decode
/// throughput of a collection frame, maximized at `f = n` (the Lee
/// rule the collect-all baseline uses).
///
/// # Panics
///
/// Panics if `f == 0`.
#[must_use]
pub fn expected_singleton_slots(n: u64, f: u64) -> f64 {
    assert!(f >= 1, "frame must have at least one slot");
    if n == 0 {
        return 0.0;
    }
    n as f64 * (1.0 - 1.0 / f as f64).powi(clamp_i32(n - 1))
}

/// Expected collided slots: `f − E[N₀] − E[N₁]`… careful — `E[N₁]`
/// counts *slots* with one tag, and equals `n·(1−1/f)^{n−1}` only when
/// read as slots; the identity `f = E[N₀] + E[N₁] + E[N₂₊]` then gives
/// the collision expectation.
///
/// # Panics
///
/// Panics if `f == 0`.
#[must_use]
pub fn expected_collided_slots(n: u64, f: u64) -> f64 {
    (f as f64 - expected_empty_slots(n, f) - expected_singleton_slots(n, f)).max(0.0)
}

fn clamp_i32(n: u64) -> i32 {
    // Lossless: the value is clamped to i32::MAX before the cast.
    n.min(i32::MAX as u64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tags_leave_everything_empty() {
        assert_eq!(expected_empty_slots(0, 50), 50.0);
        assert_eq!(expected_singleton_slots(0, 50), 0.0);
        assert_eq!(expected_collided_slots(0, 50), 0.0);
        assert_eq!(empty_slots_variance(0, 50), 0.0);
    }

    #[test]
    fn single_slot_frame() {
        assert_eq!(expected_empty_slots(3, 1), 0.0);
        assert_eq!(expected_singleton_slots(1, 1), 1.0);
        assert!(expected_collided_slots(3, 1) > 0.99);
    }

    #[test]
    fn categories_partition_the_frame() {
        for &(n, f) in &[(10u64, 16u64), (100, 128), (500, 500), (2000, 700)] {
            let total = expected_empty_slots(n, f)
                + expected_singleton_slots(n, f)
                + expected_collided_slots(n, f);
            assert!((total - f as f64).abs() < 1e-6, "n={n} f={f}: {total}");
        }
    }

    #[test]
    fn singleton_throughput_peaks_near_f_equals_n() {
        // The Lee rule: frames equal to the contender count maximize
        // decodes per slot.
        let n = 200u64;
        let at = |f: u64| expected_singleton_slots(n, f) / f as f64;
        let peak = at(n);
        for f in [n / 4, n / 2, 2 * n, 4 * n] {
            assert!(at(f) <= peak + 1e-9, "f={f} beats f=n");
        }
    }

    #[test]
    fn moments_match_simulation() {
        use rand::Rng;
        use rand::SeedableRng;
        let (n, f) = (300u64, 400u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trials = 20_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..trials {
            let mut counts = vec![0u32; f as usize];
            for _ in 0..n {
                counts[rng.gen_range(0..f) as usize] += 1;
            }
            let empty = counts.iter().filter(|&&c| c == 0).count() as f64;
            sum += empty;
            sum_sq += empty * empty;
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        assert!(
            (mean - expected_empty_slots(n, f)).abs() < 0.5,
            "mean {mean} vs {}",
            expected_empty_slots(n, f)
        );
        assert!(
            (var - empty_slots_variance(n, f)).abs() < empty_slots_variance(n, f) * 0.15,
            "var {var} vs {}",
            empty_slots_variance(n, f)
        );
    }

    #[test]
    fn variance_is_nonnegative_everywhere() {
        for n in [0u64, 1, 10, 1000] {
            for f in [1u64, 2, 64, 4096] {
                assert!(empty_slots_variance(n, f) >= 0.0, "n={n} f={f}");
            }
        }
    }
}
