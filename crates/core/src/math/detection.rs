//! The TRP detection probability `g(n, x, f)` (paper Theorem 1).
//!
//! With `n − x` tags present in a frame of `f` slots, let `N₀` be the
//! number of slots no present tag picked. A missing tag is *detected*
//! exactly when it hashes into one of those `N₀` empty slots — the
//! server expected a `1` there and the reader reports `0`. Averaging
//! over `N₀ ~ Binomial(f, p)`:
//!
//! ```text
//! g(n, x, f) = 1 − Σᵢ C(f, i) pⁱ (1 − p)^{f−i} · (1 − i/f)ˣ
//! ```
//!
//! The paper Poissonizes the empty-slot probability, `p = e^{−(n−x)/f}`;
//! the exact per-slot value is `p = (1 − 1/f)^{n−x}`. Both are provided
//! via [`EmptySlotModel`]; they agree to within `O(1/f)` and the paper's
//! figures use the Poisson form.

use super::binomial::{binomial_terms, LnFactorial};

/// How the per-slot empty probability `p` is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EmptySlotModel {
    /// `p = e^{−(n−x)/f}` — the paper's Poisson approximation
    /// (Theorem 1). Used for all figure reproductions.
    #[default]
    Poisson,
    /// `p = (1 − 1/f)^{n−x}` — the exact probability that a given slot
    /// is chosen by none of the present tags.
    Exact,
}

impl EmptySlotModel {
    /// The per-slot empty probability with `present` tags and `f` slots.
    #[must_use]
    pub fn empty_slot_probability(self, present: u64, f: u64) -> f64 {
        debug_assert!(f >= 1);
        match self {
            EmptySlotModel::Poisson => (-(present as f64) / f as f64).exp(),
            // Lossless: the value is clamped to i32::MAX before the cast.
            EmptySlotModel::Exact => {
                (1.0 - 1.0 / f as f64).powi(present.min(i32::MAX as u64) as i32)
            }
        }
    }
}

/// Width (in standard deviations) of the binomial window used when
/// summing over `N₀`; the excluded tail mass is ≈ `10⁻³¹`.
pub const WINDOW_SIGMAS: f64 = 12.0;

/// `g(n, x, f)`: the probability of detecting a non-intact set when
/// exactly `x` of `n` tags are missing and the frame has `f` slots
/// (Theorem 1).
///
/// Returns 0 when `x = 0` (nothing missing, nothing to detect).
///
/// # Panics
///
/// Panics if `x > n` or `f == 0` — caller bugs, as protocol code
/// validates parameters before reaching the math layer.
#[must_use]
pub fn detection_probability(n: u64, x: u64, f: u64, model: EmptySlotModel) -> f64 {
    let table = LnFactorial::up_to(f);
    detection_probability_with(&table, n, x, f, model)
}

/// [`detection_probability`] with a caller-supplied log-factorial table
/// (must cover at least `f`), for tight search loops.
#[must_use]
pub fn detection_probability_with(
    table: &LnFactorial,
    n: u64,
    x: u64,
    f: u64,
    model: EmptySlotModel,
) -> f64 {
    assert!(x <= n, "cannot miss more tags than exist: x={x} > n={n}");
    assert!(f >= 1, "frame must have at least one slot");
    if x == 0 {
        return 0.0;
    }
    let present = n - x;
    let p = model.empty_slot_probability(present, f);
    let undetected: f64 = binomial_terms(table, f, p, WINDOW_SIGMAS)
        .map(|(i, pmf)| {
            let occupied_fraction = 1.0 - i as f64 / f as f64;
            pmf * powi_u64(occupied_fraction, x)
        })
        .sum();
    (1.0 - undetected).clamp(0.0, 1.0)
}

/// `base^exp` for a `u64` exponent via binary exponentiation (stable,
/// no `powf` domain surprises at `base = 0`).
#[must_use]
pub(crate) fn powi_u64(base: f64, mut exp: u64) -> f64 {
    if exp == 0 {
        return 1.0;
    }
    let mut acc = 1.0f64;
    let mut b = base;
    while exp > 0 {
        if exp & 1 == 1 {
            acc *= b;
        }
        b *= b;
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const POISSON: EmptySlotModel = EmptySlotModel::Poisson;
    const EXACT: EmptySlotModel = EmptySlotModel::Exact;

    #[test]
    fn zero_missing_is_never_detected() {
        assert_eq!(detection_probability(100, 0, 128, POISSON), 0.0);
    }

    #[test]
    fn all_missing_with_empty_expected_frame() {
        // n = x: no tags present, every slot empty, any missing tag that
        // hashes anywhere lands in an empty slot → detection certain.
        let g = detection_probability(10, 10, 64, EXACT);
        assert!((g - 1.0).abs() < 1e-9, "g = {g}");
    }

    #[test]
    fn single_present_tag_small_frame_closed_form() {
        // n = 2, x = 1, f = 2: one present tag occupies one slot, so the
        // missing tag is detected iff it picks the other: g = 1/2.
        let g = detection_probability(2, 1, 2, EXACT);
        assert!((g - 0.5).abs() < 1e-9, "g = {g}");
    }

    #[test]
    fn matches_independent_closed_form_for_one_missing() {
        // For x = 1: g = 1 − Σ pmf·(1 − i/f) = 1 − (1 − E[N₀]/f)
        //          = E[N₀]/f = p.
        for &(n, f) in &[(50u64, 100u64), (200, 300), (1000, 1200)] {
            let p = EXACT.empty_slot_probability(n - 1, f);
            let g = detection_probability(n, 1, f, EXACT);
            assert!((g - p).abs() < 1e-9, "n={n} f={f}: {g} vs {p}");
        }
    }

    #[test]
    fn monotone_in_missing_count() {
        // Lemma 1: more missing tags are easier to detect.
        let f = 500;
        let mut prev = 0.0;
        for x in 1..=40u64 {
            let g = detection_probability(400, x, f, POISSON);
            assert!(g >= prev - 1e-12, "x={x}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn monotone_in_frame_size() {
        // Bigger frames leave more empty slots → easier detection.
        let mut prev = 0.0;
        for f in (100..=3000).step_by(100) {
            let g = detection_probability(1000, 11, f, POISSON);
            assert!(g >= prev - 1e-9, "f={f}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn poisson_and_exact_agree_for_large_frames() {
        let a = detection_probability(1000, 11, 2000, POISSON);
        let b = detection_probability(1000, 11, 2000, EXACT);
        assert!((a - b).abs() < 5e-3, "poisson {a} vs exact {b}");
    }

    #[test]
    fn agrees_with_monte_carlo_estimate() {
        // Ground truth by direct simulation of the occupancy process.
        use rand::Rng;
        use rand::SeedableRng;
        let (n, x, f) = (300u64, 6u64, 500u64);
        let g = detection_probability(n, x, f, EXACT);

        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        let trials = 40_000;
        let mut detected = 0u64;
        for _ in 0..trials {
            let mut occupied = vec![false; f as usize];
            for _ in 0..(n - x) {
                occupied[rng.gen_range(0..f) as usize] = true;
            }
            // Detected iff any of the x missing tags hashes to an
            // empty slot.
            let hit = (0..x).any(|_| !occupied[rng.gen_range(0..f) as usize]);
            if hit {
                detected += 1;
            }
        }
        let estimate = detected as f64 / trials as f64;
        // Binomial std err ~ sqrt(g(1-g)/trials) ≈ 0.0015; allow 5σ.
        assert!(
            (g - estimate).abs() < 0.01,
            "analytic {g} vs monte-carlo {estimate}"
        );
    }

    #[test]
    fn values_are_probabilities() {
        for x in [1u64, 5, 50] {
            for f in [1u64, 10, 1000] {
                let g = detection_probability(100, x, f, POISSON);
                assert!((0.0..=1.0).contains(&g), "g({x},{f}) = {g}");
            }
        }
    }

    #[test]
    fn single_slot_frame_rarely_detects() {
        // f = 1: the one slot is occupied whenever any tag is present,
        // so a missing tag can never be noticed.
        let g = detection_probability(10, 2, 1, EXACT);
        assert!(g < 1e-9, "g = {g}");
    }

    #[test]
    fn powi_u64_matches_std_powi() {
        for &b in &[0.0f64, 0.25, 0.5, 0.99, 1.0] {
            for e in [0u64, 1, 2, 7, 31, 100] {
                let ours = powi_u64(b, e);
                let std = b.powi(e as i32);
                assert!((ours - std).abs() < 1e-12 * (1.0 + std.abs()));
            }
        }
    }

    #[test]
    fn shared_table_variant_matches() {
        let table = LnFactorial::up_to(800);
        let a = detection_probability(500, 6, 800, POISSON);
        let b = detection_probability_with(&table, 500, 6, 800, POISSON);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot miss more tags")]
    fn rejects_x_above_n() {
        let _ = detection_probability(5, 6, 10, POISSON);
    }
}
