//! The analytical machinery behind TRP and UTRP frame sizing.
//!
//! * [`binomial`] — log-space factorials, binomial pmfs, tail windows.
//! * [`detection`] — `g(n, x, f)`, the TRP detection probability
//!   (Theorem 1).
//! * [`occupancy`] — exact balls-into-bins moments (`E[N₀]`, `Var[N₀]`,
//!   singleton throughput) that the other analyses build on.
//! * [`utrp`] — the colluder-aware detection probability and sync
//!   horizon (Theorems 3–5, Eq. 3).

pub mod binomial;
pub mod detection;
pub mod occupancy;
pub mod utrp;

pub use binomial::{binomial_terms, binomial_window, LnFactorial};
pub use detection::{detection_probability, detection_probability_with, EmptySlotModel};
pub use occupancy::{
    empty_slots_variance, expected_collided_slots, expected_empty_slots, expected_singleton_slots,
};
pub use utrp::{sync_horizon, utrp_detection_probability, utrp_detection_probability_reference};
