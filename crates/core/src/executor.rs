//! The unified round-execution entry point.
//!
//! Before this module existed the workspace had *two* parallel families
//! of round executors: the fault-free paths
//! ([`trp::observed_bitstring`], [`utrp::run_honest_reader`]) and the
//! fault-aware ones in [`crate::faulty`], and every caller — sessions,
//! tests, CLI scenarios — chose between them by hand. [`RoundExecutor`]
//! collapses that choice behind one value: a [`Channel`] plus an
//! `Option<&FaultPlan>`. Callers run rounds through the executor and
//! never branch on faultiness again.
//!
//! The **faultless-delegation contract** carries over from
//! [`crate::faulty`]: with an ideal channel and no (or an empty) plan,
//! every method delegates to its fault-free counterpart, producing
//! byte-identical output and consuming **zero** randomness from the
//! caller's RNG. The regression tests in this module pin that contract
//! for both protocols.
//!
//! [`trp::observed_bitstring`]: crate::trp::observed_bitstring
//! [`utrp::run_honest_reader`]: crate::utrp::run_honest_reader

use rand::Rng;

use tagwatch_obs::{Obs, ObsEvent, ProtoKind};
use tagwatch_sim::hash::slot_for;
use tagwatch_sim::tag::TagReply;
use tagwatch_sim::{Channel, FaultPlan, TagPopulation, TimingModel};

use crate::bitstring::Bitstring;
use crate::engine::{RoundEngine, RoundScratch};
use crate::error::CoreError;
use crate::faulty::run_honest_reader_with;
use crate::trp::{observed_bitstring, TrpChallenge};
use crate::utrp::{
    run_honest_reader_scratch, run_honest_reader_scratch_observed, UtrpChallenge, UtrpResponse,
};

/// One configured way of executing protocol rounds: a radio channel and
/// an optional scripted fault plan.
///
/// The executor is cheap to clone and carries no per-round state; the
/// plan applies to *every* round run through it, so drivers that script
/// one-shot fault bursts swap the plan (or the whole executor) between
/// ticks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundExecutor {
    channel: Channel,
    plan: Option<FaultPlan>,
}

impl RoundExecutor {
    /// The ideal executor: lossless channel, no faults. Rounds run
    /// through it are byte-identical to the fault-free paths.
    #[must_use]
    pub fn ideal() -> Self {
        RoundExecutor::default()
    }

    /// An executor over `channel` with an optional scripted `plan`.
    #[must_use]
    pub fn new(channel: Channel, plan: Option<FaultPlan>) -> Self {
        RoundExecutor { channel, plan }
    }

    /// The executor's channel.
    #[must_use]
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The scripted plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Replaces the scripted plan (e.g. between soak ticks).
    pub fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// Whether rounds through this executor can differ from the
    /// fault-free paths at all.
    #[must_use]
    pub fn is_faultless(&self) -> bool {
        self.channel.is_ideal() && self.plan.as_ref().is_none_or(FaultPlan::is_empty)
    }

    /// Runs one TRP round over the audible (non-detuned) tags of
    /// `floor` and returns the occupancy bitstring the reader reports.
    ///
    /// Faultless: identical to
    /// [`observed_bitstring`] over the
    /// audible IDs, with no RNG consumption. Otherwise each audible tag
    /// that hears the broadcast (announcement 0 of the plan) transmits
    /// in its hash slot; scripted reply loss, the probabilistic channel,
    /// a scripted reader crash, and scripted truncation shape the
    /// result. TRP has no re-seeds or counters, so a truncated
    /// bitstring is the only shape-level fault (the server rejects it
    /// as [`CoreError::ResponseShapeMismatch`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for an invalid fault plan.
    pub fn run_trp<R: Rng + ?Sized>(
        &self,
        floor: &TagPopulation,
        challenge: &TrpChallenge,
        rng: &mut R,
    ) -> Result<Bitstring, CoreError> {
        let audible: Vec<tagwatch_sim::TagId> = floor
            .iter()
            .filter(|t| !t.is_detuned())
            .map(|t| t.id())
            .collect();
        if self.is_faultless() {
            return Ok(observed_bitstring(&audible, challenge));
        }
        let empty = FaultPlan::new();
        let plan = self.plan.as_ref().unwrap_or(&empty);
        plan.validate().map_err(|e| CoreError::InvalidParams {
            reason: format!("invalid fault plan: {e}"),
        })?;

        let f = challenge.frame_size();
        let nonce = challenge.plan().nonce();
        let downlink_loss = self.channel.config().downlink_loss_prob;
        // Slot -> transmissions. TRP broadcasts exactly one announcement
        // (index 0); a tag that misses it stays silent for the round.
        let mut slots: Vec<Vec<TagReply>> = vec![Vec::new(); f.as_usize()];
        for &id in &audible {
            if plan.misses_announcement(0, id) {
                continue;
            }
            if downlink_loss > 0.0 && rng.gen_bool(downlink_loss) {
                continue;
            }
            slots[slot_for(id, nonce, f) as usize].push(TagReply::Presence { bits: 0 });
        }

        let mut bs = Bitstring::zeros(f.as_usize());
        for (i, transmissions) in slots.iter_mut().enumerate() {
            if plan.reply_lost_at(i as u64) {
                transmissions.clear();
            }
            let occupied = if self.channel.is_ideal() {
                !transmissions.is_empty()
            } else {
                self.channel.resolve_slot(transmissions, rng).is_occupied()
            };
            if occupied {
                bs.set(i, true)?;
            }
            if plan.crash_slot().is_some_and(|s| i as u64 >= s) {
                // Reader dies; the rest of the frame reads empty.
                break;
            }
        }
        Ok(match plan.truncation() {
            Some(len) if (len as usize) < bs.len() => {
                Bitstring::from_bools(&bs.to_bools()[..len as usize])
            }
            _ => bs,
        })
    }

    /// Runs one honest-reader UTRP round over `floor`, advancing each
    /// tag's counter by the announcements it actually heard.
    ///
    /// Faultless: delegates to
    /// [`run_honest_reader`](crate::utrp::run_honest_reader)
    /// (byte-identical, no RNG consumption); otherwise to
    /// [`run_honest_reader_with`].
    ///
    /// # Errors
    ///
    /// Propagates executor errors (exhausted nonce sequence, invalid
    /// plan scalars).
    pub fn run_utrp<R: Rng + ?Sized>(
        &self,
        floor: &mut TagPopulation,
        challenge: &UtrpChallenge,
        timing: &TimingModel,
        rng: &mut R,
    ) -> Result<UtrpResponse, CoreError> {
        let mut scratch = RoundScratch::new();
        self.run_utrp_scratch(floor, challenge, timing, rng, &mut scratch)
    }

    /// [`RoundExecutor::run_utrp`] through a caller-owned
    /// [`RoundEngine`] (a [`RoundScratch`] or the pooled sharded
    /// engine), so long-running drivers (sessions, soak loops) reuse
    /// the round buffers tick after tick instead of reallocating.
    /// Identical semantics at any thread count; the engine only serves
    /// the faultless fast path — scripted-fault rounds are cold and
    /// keep their own state.
    ///
    /// # Errors
    ///
    /// Same as [`RoundExecutor::run_utrp`].
    pub fn run_utrp_scratch<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        floor: &mut TagPopulation,
        challenge: &UtrpChallenge,
        timing: &TimingModel,
        rng: &mut R,
        scratch: &mut E,
    ) -> Result<UtrpResponse, CoreError> {
        if self.is_faultless() {
            return run_honest_reader_scratch(floor, challenge, timing, scratch);
        }
        let empty = FaultPlan::new();
        let plan = self.plan.as_ref().unwrap_or(&empty);
        run_honest_reader_with(floor, challenge, timing, &self.channel, plan, rng)
    }

    /// [`RoundExecutor::run_trp`] with telemetry: records round,
    /// slot-outcome and frame-size metrics and emits a
    /// round-completed flight event. With a disabled `obs` this is
    /// exactly `run_trp` plus one untaken branch; the round result is
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`RoundExecutor::run_trp`].
    pub fn run_trp_observed<R: Rng + ?Sized>(
        &self,
        floor: &TagPopulation,
        challenge: &TrpChallenge,
        rng: &mut R,
        obs: &Obs,
    ) -> Result<Bitstring, CoreError> {
        let bs = self.run_trp(floor, challenge, rng)?;
        if obs.enabled() {
            let frame = bs.len() as u64;
            let occupied = bs.count_ones() as u64;
            obs.inc(obs.m.rounds_total);
            obs.inc(obs.m.rounds_trp);
            obs.add(obs.m.slots_total, frame);
            obs.add(obs.m.slots_occupied, occupied);
            obs.set_gauge(obs.m.last_frame_size, frame);
            obs.observe(obs.m.frame_size, frame as f64);
            // One framed announcement, then the reader walks every
            // slot: the whole frame is min-scan cost on the cost
            // clock. TRP never touches the probe engine.
            obs.span_phase(tagwatch_obs::Phase::SubFrameSetup, 0, 0);
            obs.span_phase(tagwatch_obs::Phase::MinScan, frame, 0);
            obs.emit(ObsEvent::RoundCompleted {
                proto: ProtoKind::Trp,
                frame,
                occupied,
                reseeds: 0,
                elapsed_us: 0,
            });
        }
        Ok(bs)
    }

    /// [`RoundExecutor::run_utrp_scratch`] with telemetry: records
    /// round, slot-outcome, re-seed, frame-size and elapsed-time
    /// metrics (plus probe/candidate-filter totals on the faultless
    /// fast path, which runs through the counting scanner) and emits a
    /// round-completed flight event. The round result is bit-identical
    /// to the uninstrumented path, and with a disabled `obs` this is
    /// exactly `run_utrp_scratch` plus one untaken branch.
    ///
    /// # Errors
    ///
    /// Same as [`RoundExecutor::run_utrp_scratch`].
    pub fn run_utrp_scratch_observed<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        floor: &mut TagPopulation,
        challenge: &UtrpChallenge,
        timing: &TimingModel,
        rng: &mut R,
        scratch: &mut E,
        obs: &Obs,
    ) -> Result<UtrpResponse, CoreError> {
        let response = if self.is_faultless() && obs.enabled() {
            run_honest_reader_scratch_observed(floor, challenge, timing, scratch, obs)?
        } else {
            self.run_utrp_scratch(floor, challenge, timing, rng, scratch)?
        };
        if obs.enabled() {
            let frame = response.bitstring.len() as u64;
            let occupied = response.bitstring.count_ones() as u64;
            let reseeds = response.announcements.saturating_sub(1);
            obs.inc(obs.m.rounds_total);
            obs.inc(obs.m.rounds_utrp);
            obs.add(obs.m.slots_total, frame);
            obs.add(obs.m.slots_occupied, occupied);
            obs.add(obs.m.reseeds_total, reseeds);
            obs.set_gauge(obs.m.last_frame_size, frame);
            obs.observe(obs.m.frame_size, frame as f64);
            obs.observe(
                obs.m.round_elapsed_ms,
                response.elapsed.as_micros() as f64 / 1000.0,
            );
            obs.emit(ObsEvent::RoundCompleted {
                proto: ProtoKind::Utrp,
                frame,
                occupied,
                reseeds,
                elapsed_us: response.elapsed.as_micros(),
            });
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utrp::run_honest_reader;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::{ChannelConfig, FrameSize, Nonce, TagId};

    fn trp_challenge(f: u64, r: u64) -> TrpChallenge {
        TrpChallenge::new(tagwatch_sim::aloha::FramePlan::new(
            FrameSize::new(f).unwrap(),
            Nonce::new(r),
        ))
    }

    fn utrp_challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    #[test]
    fn faultless_trp_is_byte_identical_and_rng_free() {
        // The pre-refactor fault-free path and the unified executor must
        // agree bit-for-bit when no faults are configured.
        let mut floor = TagPopulation::with_sequential_ids(80);
        let ids = floor.ids();
        floor.get_mut(ids[5]).unwrap().set_detuned(true);
        for (f, r) in [(128u64, 7u64), (300, 99), (64, 1)] {
            let ch = trp_challenge(f, r);
            let audible: Vec<TagId> = floor
                .iter()
                .filter(|t| !t.is_detuned())
                .map(|t| t.id())
                .collect();
            let legacy = observed_bitstring(&audible, &ch);
            let mut rng = StdRng::seed_from_u64(123);
            let unified = RoundExecutor::ideal()
                .run_trp(&floor, &ch, &mut rng)
                .unwrap();
            assert_eq!(legacy, unified, "f={f} r={r}");
            let mut fresh = StdRng::seed_from_u64(123);
            assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>(), "RNG was consumed");
        }
        // An executor holding Some(empty plan) still counts as faultless.
        let with_empty = RoundExecutor::new(Channel::ideal(), Some(FaultPlan::new()));
        assert!(with_empty.is_faultless());
    }

    #[test]
    fn set_plan_swaps_faults_between_rounds() {
        let mut ex = RoundExecutor::ideal();
        assert!(ex.is_faultless());
        ex.set_plan(Some(FaultPlan::new().lose_replies_at(0)));
        assert!(!ex.is_faultless());
        assert!(ex.plan().is_some());
        // Clearing the plan restores the fault-free fast path.
        ex.set_plan(None);
        assert!(ex.is_faultless());
        assert!(ex.plan().is_none());
    }

    #[test]
    fn faultless_utrp_is_byte_identical_and_rng_free() {
        let ch = utrp_challenge(200, 2);
        let timing = TimingModel::gen2();
        let mut legacy_floor = TagPopulation::with_sequential_ids(60);
        let mut unified_floor = TagPopulation::with_sequential_ids(60);
        let legacy = run_honest_reader(&mut legacy_floor, &ch, &timing).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let unified = RoundExecutor::ideal()
            .run_utrp(&mut unified_floor, &ch, &timing, &mut rng)
            .unwrap();
        assert_eq!(legacy, unified);
        for (a, b) in legacy_floor.iter().zip(unified_floor.iter()) {
            assert_eq!(a.counter(), b.counter(), "counter of {}", a.id());
        }
        let mut fresh = StdRng::seed_from_u64(77);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>(), "RNG was consumed");
    }

    #[test]
    fn faulty_utrp_matches_the_direct_fault_path() {
        // The executor is a facade, not a third engine: under faults it
        // must agree exactly with run_honest_reader_with.
        let ch = utrp_challenge(150, 3);
        let timing = TimingModel::gen2();
        let plan = FaultPlan::new()
            .lose_replies_at(2)
            .lose_announcement(1, [TagId::new(3)]);
        let channel = Channel::with_config(ChannelConfig {
            downlink_loss_prob: 0.03,
            ..ChannelConfig::default()
        })
        .unwrap();

        let mut direct_floor = TagPopulation::with_sequential_ids(40);
        let mut rng_direct = StdRng::seed_from_u64(5);
        let direct = run_honest_reader_with(
            &mut direct_floor,
            &ch,
            &timing,
            &channel,
            &plan,
            &mut rng_direct,
        )
        .unwrap();

        let mut exec_floor = TagPopulation::with_sequential_ids(40);
        let mut rng_exec = StdRng::seed_from_u64(5);
        let exec = RoundExecutor::new(channel, Some(plan))
            .run_utrp(&mut exec_floor, &ch, &timing, &mut rng_exec)
            .unwrap();

        assert_eq!(direct, exec);
        for (a, b) in direct_floor.iter().zip(exec_floor.iter()) {
            assert_eq!(a.counter(), b.counter());
        }
    }

    #[test]
    fn trp_scripted_faults_shape_the_bitstring() {
        let floor = TagPopulation::with_sequential_ids(30);
        let ch = trp_challenge(100, 11);
        let mut rng = StdRng::seed_from_u64(1);
        let clean = RoundExecutor::ideal()
            .run_trp(&floor, &ch, &mut rng)
            .unwrap();
        let first = clean.iter_ones().next().unwrap() as u64;

        // Losing the first occupied slot's replies clears exactly it.
        let lossy = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().lose_replies_at(first)),
        );
        let out = lossy.run_trp(&floor, &ch, &mut rng).unwrap();
        assert!(!out.get(first as usize).unwrap());
        assert_eq!(out.count_ones(), clean.count_ones() - 1);

        // A crash empties everything past the crash slot.
        let crashed = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().crash_after_slot(10)),
        );
        let out = crashed.run_trp(&floor, &ch, &mut rng).unwrap();
        assert_eq!(out.len(), 100);
        for i in 11..100 {
            assert!(!out.get(i).unwrap(), "bit {i} survived the crash");
        }

        // Truncation shortens the response (a shape fault for verify).
        let truncated = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().truncate_response(13)),
        );
        let out = truncated.run_trp(&floor, &ch, &mut rng).unwrap();
        assert_eq!(out.len(), 13);
    }

    #[test]
    fn trp_missed_broadcast_silences_the_tag() {
        let floor = TagPopulation::with_sequential_ids(10);
        let ch = trp_challenge(64, 4);
        let victim = floor.ids()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let clean = RoundExecutor::ideal()
            .run_trp(&floor, &ch, &mut rng)
            .unwrap();
        let deaf = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().lose_announcement(0, [victim])),
        );
        let out = deaf.run_trp(&floor, &ch, &mut rng).unwrap();
        // The victim's slot may be shared, so the count drops by 0 or 1
        // but never grows — and the victim alone cannot occupy its slot.
        assert!(out.count_ones() <= clean.count_ones());
        let others: Vec<TagId> = floor.ids().into_iter().filter(|&id| id != victim).collect();
        assert_eq!(out, observed_bitstring(&others, &ch));
    }
}
