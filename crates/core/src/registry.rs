//! Registry persistence: the server's durable state.
//!
//! The server's ground truth — IDs, the monitoring policy, and (for
//! UTRP) every tag's counter mirror plus the sync flag — must survive
//! restarts; losing the counter mirror after a power cycle would force
//! a physical audit of the whole warehouse. [`RegistrySnapshot`] is a
//! plain-old-data image of that state with a line-oriented text codec
//! (versioned, human-inspectable, no external parser dependencies):
//!
//! ```text
//! tagwatch-registry v1
//! policy m=10 alpha=0.95
//! synced true
//! tag 000000000000000000000001 0
//! tag 000000000000000000000002 17
//! ```

use std::fmt::Write as _;

use tagwatch_sim::{Counter, TagId};

use crate::error::CoreError;

/// A durable image of a [`MonitorServer`](crate::server::MonitorServer)'s
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Tolerance `m`.
    pub tolerance: u64,
    /// Confidence `α`.
    pub alpha: f64,
    /// Whether the counter mirror was trusted at snapshot time.
    pub counters_synced: bool,
    /// Every registered tag with its mirrored counter, ascending by ID.
    pub entries: Vec<(TagId, Counter)>,
}

impl RegistrySnapshot {
    /// Serializes to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("tagwatch-registry v1\n");
        let _ = writeln!(out, "policy m={} alpha={}", self.tolerance, self.alpha);
        let _ = writeln!(out, "synced {}", self.counters_synced);
        for (id, ct) in &self.entries {
            let _ = writeln!(out, "tag {:024x} {}", id.as_u128(), ct.get());
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParseSnapshot`] with the offending line
    /// number for any malformed input (wrong magic, bad field, dupes).
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let fail = |line: usize, reason: &str| CoreError::ParseSnapshot {
            line,
            reason: reason.to_owned(),
        };
        let mut lines = text.lines().enumerate();

        let (ln, magic) = lines.next().ok_or_else(|| fail(0, "empty snapshot"))?;
        if magic.trim() != "tagwatch-registry v1" {
            return Err(fail(
                ln + 1,
                "bad magic line (expected `tagwatch-registry v1`)",
            ));
        }

        let mut tolerance: Option<u64> = None;
        let mut alpha: Option<f64> = None;
        let mut synced: Option<bool> = None;
        let mut entries: Vec<(TagId, Counter)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();

        for (idx, raw) in lines {
            let ln = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("policy") => {
                    for field in parts {
                        if let Some(v) = field.strip_prefix("m=") {
                            tolerance = Some(v.parse().map_err(|_| fail(ln, "bad m value"))?);
                        } else if let Some(v) = field.strip_prefix("alpha=") {
                            alpha = Some(v.parse().map_err(|_| fail(ln, "bad alpha value"))?);
                        } else {
                            return Err(fail(ln, "unknown policy field"));
                        }
                    }
                }
                Some("synced") => {
                    let v = parts
                        .next()
                        .ok_or_else(|| fail(ln, "missing synced value"))?;
                    synced = Some(match v {
                        "true" => true,
                        "false" => false,
                        _ => return Err(fail(ln, "synced must be true or false")),
                    });
                }
                Some("tag") => {
                    let id_hex = parts.next().ok_or_else(|| fail(ln, "missing tag id"))?;
                    let ct_str = parts.next().ok_or_else(|| fail(ln, "missing counter"))?;
                    let raw_id =
                        u128::from_str_radix(id_hex, 16).map_err(|_| fail(ln, "bad tag id hex"))?;
                    let ct: u64 = ct_str.parse().map_err(|_| fail(ln, "bad counter"))?;
                    let id = TagId::new(raw_id);
                    if !seen.insert(id) {
                        return Err(fail(ln, "duplicate tag id"));
                    }
                    entries.push((id, Counter::new(ct)));
                }
                Some(other) => {
                    return Err(fail(ln, &format!("unknown record kind `{other}`")));
                }
                None => unreachable!("blank lines skipped above"),
            }
        }

        Ok(RegistrySnapshot {
            tolerance: tolerance.ok_or_else(|| fail(0, "missing policy line"))?,
            alpha: alpha.ok_or_else(|| fail(0, "missing alpha in policy"))?,
            counters_synced: synced.unwrap_or(true),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistrySnapshot {
        RegistrySnapshot {
            tolerance: 10,
            alpha: 0.95,
            counters_synced: true,
            entries: (1..=5u64)
                .map(|i| (TagId::from(i), Counter::new(i * 3)))
                .collect(),
        }
    }

    #[test]
    fn text_round_trip() {
        let snap = sample();
        let text = snap.to_text();
        let back = RegistrySnapshot::from_text(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn round_trip_preserves_desync_flag() {
        let mut snap = sample();
        snap.counters_synced = false;
        let back = RegistrySnapshot::from_text(&snap.to_text()).unwrap();
        assert!(!back.counters_synced);
    }

    #[test]
    fn format_is_human_readable() {
        let text = sample().to_text();
        assert!(text.starts_with("tagwatch-registry v1\n"));
        assert!(text.contains("policy m=10 alpha=0.95"));
        assert!(text.contains("tag 000000000000000000000001 3"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "tagwatch-registry v1\n# a comment\n\npolicy m=1 alpha=0.9\nsynced true\ntag 01 0\n";
        let snap = RegistrySnapshot::from_text(text).unwrap();
        assert_eq!(snap.entries.len(), 1);
    }

    #[test]
    fn bad_inputs_name_the_line() {
        let cases: Vec<(&str, usize)> = vec![
            ("nope", 1),
            ("tagwatch-registry v1\npolicy m=x alpha=0.9", 2),
            (
                "tagwatch-registry v1\npolicy m=1 alpha=0.9\nsynced maybe",
                3,
            ),
            ("tagwatch-registry v1\npolicy m=1 alpha=0.9\ntag zz 0", 3),
            (
                "tagwatch-registry v1\npolicy m=1 alpha=0.9\ntag 01 0\ntag 01 0",
                4,
            ),
            ("tagwatch-registry v1\npolicy m=1 alpha=0.9\nwhatis this", 3),
        ];
        for (text, line) in cases {
            match RegistrySnapshot::from_text(text) {
                Err(CoreError::ParseSnapshot { line: l, .. }) => {
                    assert_eq!(l, line, "wrong line for {text:?}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_policy_is_rejected() {
        let text = "tagwatch-registry v1\ntag 01 0\n";
        assert!(RegistrySnapshot::from_text(text).is_err());
    }

    #[test]
    fn empty_snapshot_is_rejected() {
        assert!(RegistrySnapshot::from_text("").is_err());
    }

    #[test]
    fn large_ids_and_counters_round_trip() {
        let snap = RegistrySnapshot {
            tolerance: 0,
            alpha: 0.5,
            counters_synced: true,
            entries: vec![(TagId::new(TagId::MASK), Counter::new(u64::MAX))],
        };
        let back = RegistrySnapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(back, snap);
    }
}
