//! Verification outcomes and monitoring reports.

use std::fmt;

use tagwatch_sim::SimDuration;

/// Which protocol produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProtocolKind {
    /// Trusted Reader Protocol (§4).
    Trp,
    /// Untrusted Reader Protocol (§5).
    Utrp,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Trp => write!(f, "TRP"),
            ProtocolKind::Utrp => write!(f, "UTRP"),
        }
    }
}

/// The server's conclusion about the monitored set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// The returned bitstring matched the prediction: at most `m` tags
    /// are missing, with the configured confidence.
    Intact,
    /// The evidence is inconsistent with an intact set (bitstring
    /// mismatch, malformed response, or a blown deadline) — raise the
    /// alarm.
    NotIntact,
}

impl Verdict {
    /// Whether the set passed verification.
    #[must_use]
    pub fn is_intact(self) -> bool {
        matches!(self, Verdict::Intact)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Intact => write!(f, "intact"),
            Verdict::NotIntact => write!(f, "NOT intact"),
        }
    }
}

/// Everything the server records about one verification.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorReport {
    /// The protocol that ran.
    pub protocol: ProtocolKind,
    /// The server's conclusion.
    pub verdict: Verdict,
    /// The challenge's frame size (slots — the paper's cost metric).
    pub frame_size: u64,
    /// Slots where the response disagreed with the prediction.
    pub mismatched_slots: usize,
    /// Whether the response missed the deadline (UTRP only; always
    /// `false` for TRP).
    pub late: bool,
    /// The response's reported scanning time, when available.
    pub elapsed: Option<SimDuration>,
}

impl MonitorReport {
    /// Whether this report should page somebody.
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        !self.verdict.is_intact()
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} slots, {} mismatched{})",
            self.protocol,
            self.verdict,
            self.frame_size,
            self.mismatched_slots,
            if self.late { ", late" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Intact.is_intact());
        assert!(!Verdict::NotIntact.is_intact());
    }

    #[test]
    fn report_alarm_tracks_verdict() {
        let mut report = MonitorReport {
            protocol: ProtocolKind::Trp,
            verdict: Verdict::Intact,
            frame_size: 100,
            mismatched_slots: 0,
            late: false,
            elapsed: None,
        };
        assert!(!report.is_alarm());
        report.verdict = Verdict::NotIntact;
        assert!(report.is_alarm());
    }

    #[test]
    fn display_summarizes() {
        let report = MonitorReport {
            protocol: ProtocolKind::Utrp,
            verdict: Verdict::NotIntact,
            frame_size: 64,
            mismatched_slots: 3,
            late: true,
            elapsed: Some(SimDuration::from_micros(99)),
        };
        let text = report.to_string();
        assert!(text.contains("UTRP"));
        assert!(text.contains("NOT intact"));
        assert!(text.contains("3 mismatched"));
        assert!(text.contains("late"));
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Trp.to_string(), "TRP");
        assert_eq!(ProtocolKind::Utrp.to_string(), "UTRP");
    }
}
