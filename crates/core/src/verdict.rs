//! Verification outcomes and monitoring reports.

use std::fmt;

use tagwatch_sim::{SimDuration, TagId};

/// Which protocol produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProtocolKind {
    /// Trusted Reader Protocol (§4).
    Trp,
    /// Untrusted Reader Protocol (§5).
    Utrp,
}

impl ProtocolKind {
    /// The flattened telemetry counterpart.
    #[must_use]
    pub fn obs_kind(&self) -> tagwatch_obs::ProtoKind {
        match self {
            ProtocolKind::Trp => tagwatch_obs::ProtoKind::Trp,
            ProtocolKind::Utrp => tagwatch_obs::ProtoKind::Utrp,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Trp => write!(f, "TRP"),
            ProtocolKind::Utrp => write!(f, "UTRP"),
        }
    }
}

/// The server's conclusion about the monitored set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// The returned bitstring matched the prediction: at most `m` tags
    /// are missing, with the configured confidence.
    Intact,
    /// The evidence is inconsistent with an intact set (bitstring
    /// mismatch, malformed response, or a blown deadline) — raise the
    /// alarm.
    NotIntact,
    /// The bitstring mismatched, but the mismatch is *exactly* explained
    /// by a bounded counter-desynchronization hypothesis (a reader crash
    /// left the mirror behind, or a tag missed downlink announcements) —
    /// inconclusive rather than an alarm. The server holds a pending
    /// resynchronization (see
    /// [`crate::server::MonitorServer::resync_from_hypothesis`]); the
    /// caller should resync and re-challenge with fresh nonces, never
    /// silently accept the set as intact.
    Desynced {
        /// The tags hypothesized to lag the mirror (empty when the
        /// whole population uniformly leads it, e.g. after a reader
        /// crash lost an entire round's advance).
        suspects: Vec<TagId>,
    },
}

impl Verdict {
    /// Whether the set passed verification.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        matches!(self, Verdict::Intact)
    }

    /// Whether the round was inconclusive due to a diagnosed counter
    /// desynchronization (retry after resync, don't page).
    #[must_use]
    pub fn is_desynced(&self) -> bool {
        matches!(self, Verdict::Desynced { .. })
    }

    /// Whether this verdict should page somebody. Only
    /// [`Verdict::NotIntact`] alarms; a desynced round is inconclusive
    /// (the session layer resyncs and retries it), and every layer —
    /// [`MonitorReport::is_alarm`], the session's event predicate —
    /// derives its alarm notion from this one.
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        matches!(self, Verdict::NotIntact)
    }

    /// The desync suspects: the tags hypothesized to lag the counter
    /// mirror. Empty for intact/alarming verdicts *and* for a uniform
    /// mirror lag (where no individual tag is implicated).
    #[must_use]
    pub fn suspects(&self) -> &[TagId] {
        match self {
            Verdict::Desynced { suspects } => suspects,
            _ => &[],
        }
    }

    /// The flattened telemetry counterpart (suspect lists stay here).
    #[must_use]
    pub fn obs_kind(&self) -> tagwatch_obs::VerdictKind {
        match self {
            Verdict::Intact => tagwatch_obs::VerdictKind::Intact,
            Verdict::NotIntact => tagwatch_obs::VerdictKind::NotIntact,
            Verdict::Desynced { .. } => tagwatch_obs::VerdictKind::Desynced,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Intact => write!(f, "intact"),
            Verdict::NotIntact => write!(f, "NOT intact"),
            Verdict::Desynced { suspects } if suspects.is_empty() => {
                write!(f, "DESYNCED (uniform mirror lag)")
            }
            Verdict::Desynced { suspects } => {
                write!(f, "DESYNCED ({} suspect tag(s))", suspects.len())
            }
        }
    }
}

/// Everything the server records about one verification.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorReport {
    /// The protocol that ran.
    pub protocol: ProtocolKind,
    /// The server's conclusion.
    pub verdict: Verdict,
    /// The challenge's frame size (slots — the paper's cost metric).
    pub frame_size: u64,
    /// Slots where the response disagreed with the prediction.
    pub mismatched_slots: usize,
    /// Whether the response missed the deadline (UTRP only; always
    /// `false` for TRP).
    pub late: bool,
    /// The response's reported scanning time, when available.
    pub elapsed: Option<SimDuration>,
}

impl MonitorReport {
    /// Whether this report should page somebody. A
    /// [`Verdict::Desynced`] round is *not* an alarm — it is
    /// inconclusive, and the session layer retries it after
    /// resynchronizing — but it is not intact either, so it never
    /// silently passes.
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        self.verdict.is_alarm()
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} slots, {} mismatched{})",
            self.protocol,
            self.verdict,
            self.frame_size,
            self.mismatched_slots,
            if self.late { ", late" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Intact.is_intact());
        assert!(!Verdict::NotIntact.is_intact());
        let desynced = Verdict::Desynced {
            suspects: vec![TagId::new(7)],
        };
        assert!(!desynced.is_intact());
        assert!(desynced.is_desynced());
        assert!(!Verdict::Intact.is_desynced());
    }

    #[test]
    fn alarm_and_suspect_accessors() {
        assert!(Verdict::NotIntact.is_alarm());
        assert!(!Verdict::Intact.is_alarm());
        let desynced = Verdict::Desynced {
            suspects: vec![TagId::new(7)],
        };
        // Desync is inconclusive, not an alarm — consistent with
        // MonitorReport::is_alarm and the session layer.
        assert!(!desynced.is_alarm());
        assert_eq!(desynced.suspects(), &[TagId::new(7)]);
        assert_eq!(Verdict::Intact.suspects(), &[] as &[TagId]);
        assert_eq!(
            Verdict::Desynced { suspects: vec![] }.suspects(),
            &[] as &[TagId]
        );
    }

    #[test]
    fn desynced_reports_are_inconclusive_not_alarms() {
        let report = MonitorReport {
            protocol: ProtocolKind::Utrp,
            verdict: Verdict::Desynced {
                suspects: vec![TagId::new(3)],
            },
            frame_size: 64,
            mismatched_slots: 2,
            late: false,
            elapsed: None,
        };
        assert!(!report.is_alarm(), "desync must not page");
        assert!(!report.verdict.is_intact(), "desync must not pass");
    }

    #[test]
    fn desynced_display_names_suspect_count() {
        let uniform = Verdict::Desynced { suspects: vec![] };
        assert!(uniform.to_string().contains("uniform"));
        let single = Verdict::Desynced {
            suspects: vec![TagId::new(1)],
        };
        assert!(single.to_string().contains("1 suspect"));
    }

    #[test]
    fn report_alarm_tracks_verdict() {
        let mut report = MonitorReport {
            protocol: ProtocolKind::Trp,
            verdict: Verdict::Intact,
            frame_size: 100,
            mismatched_slots: 0,
            late: false,
            elapsed: None,
        };
        assert!(!report.is_alarm());
        report.verdict = Verdict::NotIntact;
        assert!(report.is_alarm());
    }

    #[test]
    fn display_summarizes() {
        let report = MonitorReport {
            protocol: ProtocolKind::Utrp,
            verdict: Verdict::NotIntact,
            frame_size: 64,
            mismatched_slots: 3,
            late: true,
            elapsed: Some(SimDuration::from_micros(99)),
        };
        let text = report.to_string();
        assert!(text.contains("UTRP"));
        assert!(text.contains("NOT intact"));
        assert!(text.contains("3 mismatched"));
        assert!(text.contains("late"));
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Trp.to_string(), "TRP");
        assert_eq!(ProtocolKind::Utrp.to_string(), "UTRP");
    }
}
