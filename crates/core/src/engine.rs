//! The struct-of-arrays UTRP round engine.
//!
//! [`crate::utrp::SubsetRound`] — the original engine — keeps an
//! array-of-structs `Vec<UtrpParticipant>` and walks it through an
//! index indirection (`active: Vec<usize>`) on every announcement. At
//! million-tag populations that layout is the bottleneck: each probe
//! gathers a 24-byte struct through a second cache line, re-folds the
//! 128-bit tag ID, wraps the counter in a newtype, and ends in a
//! 64-bit hardware division — tens of cycles per tag, hundreds of
//! thousands of tags, re-scanned after *every* reply.
//!
//! [`RoundScratch`] re-states the same round over three contiguous
//! arrays:
//!
//! * `folded[i]` — the tag's ID pre-folded to 64 bits (done **once** at
//!   load, not once per announcement),
//! * `bases[i]` — the tag's pre-round counter as a raw `u64`,
//! * `orig[i]` — the tag's index in the caller's load order (for
//!   attribution and stable reporting).
//!
//! Retired tags are removed by `swap_remove` on all three arrays, so
//! the active set stays dense and every scan is a single linear pass.
//! Two further observations keep the inner loop branch-light:
//!
//! * Counters advance **uniformly** (+1 per announcement heard), so the
//!   effective counter is `base + announcements` — no per-tag writes
//!   mid-round, and when every base is equal (the steady state of a
//!   synced deployment) the whole counter term collapses into the
//!   announcement key: one [`mix64`] per tag instead of two.
//! * The `mod f` reduction uses [`FastMod`] — Lemire's exact remainder
//!   by multiplication — which is bit-identical to `%` (see its docs),
//!   so outcomes, soak digests, and recorded experiments are unchanged.
//!
//! ## Scanner injection
//!
//! The per-announcement minimum scan is expressed as a [`ScanJob`] so
//! the reduction strategy is pluggable without `tagwatch-core` growing
//! a thread-pool dependency: [`sequential_min_scan`] is the default,
//! and `tagwatch-analytics` provides a chunked parallel scanner over
//! the same job (deterministic merge: global minimum slot first, then
//! chunks in index order — member lists come out identical to the
//! sequential scan's, so results are scanner-independent by
//! construction; the differential tests pin it).
//!
//! ## Semantics
//!
//! Byte-identical to [`crate::utrp::simulate_round_reference`], the
//! literal Algs. 6–7 execution: same bitstring, same announcement
//! count, same post-round counters. The differential and property
//! tests in [`crate::utrp`] pin the agreement across population sizes,
//! frame shapes, counter states, and mute subsets.

use tagwatch_sim::hash::{mix64, FastMod};
use tagwatch_sim::{Counter, FrameSize, TagId, TagPopulation};

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::nonce::NonceSequence;
use crate::utrp::UtrpParticipant;

/// One announcement's minimum-slot scan over the active arrays.
///
/// A scanner receives the job plus a member buffer and must return the
/// minimal slot any active tag chose (`None` when no tag is active),
/// filling the buffer with the *active-array indices* of every tag that
/// chose that slot, in ascending index order.
#[derive(Debug)]
pub struct ScanJob<'a> {
    folded: &'a [u64],
    bases: &'a [u64],
    nonce: u64,
    advance: u64,
    uniform_key: Option<u64>,
    frame: FastMod,
}

impl ScanJob<'_> {
    /// Number of active tags in the scan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.folded.len()
    }

    /// Whether no tags are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.folded.is_empty()
    }

    /// The sub-frame reducer (divisor = slots remaining).
    #[must_use]
    pub fn frame(&self) -> FastMod {
        self.frame
    }

    /// Scans `lo..hi` of the active arrays, returning the minimal slot
    /// in that range and pushing the (global) active indices of its
    /// members onto `members` in ascending order. `members` is cleared
    /// first.
    ///
    /// Both the sequential scanner and each chunk of a parallel scanner
    /// bottom out here, so every strategy computes the same per-tag
    /// slots: `mix64(folded ⊕ r ⊕ mix64(base + advance)) mod f`, with
    /// the counter term pre-collapsed into the key when all bases are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is out of bounds for the active arrays.
    pub fn scan_range(&self, lo: usize, hi: usize, members: &mut Vec<u32>) -> Option<u64> {
        let mut stats = ScanStats::default();
        self.scan_range_impl::<false>(lo, hi, members, &mut stats)
    }

    /// [`ScanJob::scan_range`] that additionally accumulates probe
    /// accounting into `stats` — how many per-tag probes ran and how
    /// many the candidate pre-filter skipped. The selection logic is
    /// the *same monomorphized loop* as the plain scan (counting is a
    /// const-generic branch compiled out of the fast path), so results
    /// are bit-identical; only this variant pays for the counters.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is out of bounds for the active arrays.
    pub fn scan_range_counting(
        &self,
        lo: usize,
        hi: usize,
        members: &mut Vec<u32>,
        stats: &mut ScanStats,
    ) -> Option<u64> {
        self.scan_range_impl::<true>(lo, hi, members, stats)
    }

    fn scan_range_impl<const COUNT: bool>(
        &self,
        lo: usize,
        hi: usize,
        members: &mut Vec<u32>,
        stats: &mut ScanStats,
    ) -> Option<u64> {
        members.clear();
        let folded = &self.folded[lo..hi];
        let frame = self.frame;
        let mut best = u64::MAX;
        // Candidate pre-filter: once a best slot exists, a probe whose
        // Lemire fraction exceeds `threshold` is guaranteed to land
        // strictly above it (see `FastMod::candidate_threshold`), so the
        // exact remainder and the best/members bookkeeping are skipped.
        // In a dense frame `best` hits 0 within a handful of probes and
        // the steady-state iteration is just hash → fraction → compare,
        // with a branch that predicts "skip" almost every time. The
        // filter is conservative — sub-threshold probes are verified
        // with the exact remainder — so the scan is bit-identical to
        // the unfiltered one.
        let mut threshold = u128::MAX;
        if COUNT {
            stats.probes += (hi - lo) as u64;
        }
        match self.uniform_key {
            Some(key) => {
                for (j, &fv) in folded.iter().enumerate() {
                    let frac = frame.frac(mix64(fv ^ key));
                    if frac > threshold {
                        if COUNT {
                            stats.filtered += 1;
                        }
                        continue;
                    }
                    let s = frame.rem_of_frac(frac);
                    if s < best {
                        best = s;
                        threshold = frame.candidate_threshold(s);
                        members.clear();
                        members.push((lo + j) as u32);
                    } else if s == best {
                        members.push((lo + j) as u32);
                    }
                }
            }
            None => {
                let bases = &self.bases[lo..hi];
                for (j, (&fv, &bv)) in folded.iter().zip(bases).enumerate() {
                    let ct = mix64(bv.wrapping_add(self.advance));
                    let frac = frame.frac(mix64(fv ^ self.nonce ^ ct));
                    if frac > threshold {
                        if COUNT {
                            stats.filtered += 1;
                        }
                        continue;
                    }
                    let s = frame.rem_of_frac(frac);
                    if s < best {
                        best = s;
                        threshold = frame.candidate_threshold(s);
                        members.clear();
                        members.push((lo + j) as u32);
                    } else if s == best {
                        members.push((lo + j) as u32);
                    }
                }
            }
        }
        // The pre-filter may only skip probes that land strictly above
        // the running best: an unfiltered re-scan must agree on both
        // the minimum slot and the full replier set.
        #[cfg(debug_assertions)]
        {
            let slot_of = |j: usize| -> u64 {
                let fv = self.folded[lo + j];
                match self.uniform_key {
                    Some(key) => frame.rem(mix64(fv ^ key)),
                    None => {
                        let ct = mix64(self.bases[lo + j].wrapping_add(self.advance));
                        frame.rem(mix64(fv ^ self.nonce ^ ct))
                    }
                }
            };
            let brute = (0..hi - lo).map(slot_of).min();
            debug_assert_eq!(
                brute,
                if members.is_empty() { None } else { Some(best) },
                "candidate pre-filter must preserve the exact minimum"
            );
            if let Some(min) = brute {
                let full: Vec<u32> = (0..hi - lo)
                    .filter(|&j| slot_of(j) == min)
                    .map(|j| (lo + j) as u32)
                    .collect();
                debug_assert_eq!(
                    &full, members,
                    "candidate pre-filter must preserve the replier set"
                );
            }
        }
        if members.is_empty() {
            None
        } else {
            Some(best)
        }
    }
}

/// Probe accounting from a counting scan: the raw material for the
/// telemetry layer's probe / candidate-filter hit-rate metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Per-tag slot probes evaluated.
    pub probes: u64,
    /// Probes the candidate pre-filter skipped before the exact
    /// remainder.
    pub filtered: u64,
}

impl ScanStats {
    /// Adds `other`'s counts into `self` (the reduction step when
    /// chunked scans count independently).
    pub fn merge(&mut self, other: ScanStats) {
        self.probes += other.probes;
        self.filtered += other.filtered;
    }
}

/// The default scanner: one linear pass over the whole active set.
pub fn sequential_min_scan(job: &ScanJob<'_>, members: &mut Vec<u32>) -> Option<u64> {
    job.scan_range(0, job.len(), members)
}

/// Reusable round state: the struct-of-arrays active set, the member
/// buffers, and the output bitstring, all retained across rounds so a
/// long monitoring session performs no per-round allocation in steady
/// state (buffers grow to the population size once and stay).
///
/// Typical use:
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::engine::RoundScratch;
/// use tagwatch_core::utrp::UtrpChallenge;
/// use tagwatch_sim::{Counter, FrameSize, TagId, TimingModel};
///
/// # fn main() -> Result<(), tagwatch_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ch = UtrpChallenge::generate(FrameSize::new(64)?, &TimingModel::gen2(), &mut rng);
///
/// let mut scratch = RoundScratch::new();
/// scratch.load_pairs((1..=20u64).map(|i| (TagId::from(i), Counter::ZERO)));
/// let announcements = scratch.run(ch.frame_size(), ch.nonces())?;
/// assert_eq!(scratch.bitstring().len(), 64);
/// assert!(announcements >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoundScratch {
    folded: Vec<u64>,
    bases: Vec<u64>,
    orig: Vec<u32>,
    members: Vec<u32>,
    members_orig: Vec<u32>,
    bitstring: Bitstring,
    announcements: u64,
    uniform_base: Option<u64>,
    loaded: u32,
}

impl Default for RoundScratch {
    fn default() -> Self {
        RoundScratch::new()
    }
}

impl RoundScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        RoundScratch {
            folded: Vec::new(),
            bases: Vec::new(),
            orig: Vec::new(),
            members: Vec::new(),
            members_orig: Vec::new(),
            bitstring: Bitstring::zeros(0),
            announcements: 0,
            uniform_base: None,
            loaded: 0,
        }
    }

    /// Loads the round's participants from `(id, counter, mute)`
    /// triples. Mute tags never enter the active arrays (they cannot
    /// reply) but still occupy a load index, so attribution indices
    /// always refer to the caller's original order.
    pub fn load<I: IntoIterator<Item = (TagId, Counter, bool)>>(&mut self, parts: I) {
        self.folded.clear();
        self.bases.clear();
        self.orig.clear();
        self.loaded = 0;
        let mut uniform = true;
        let mut first_base: Option<u64> = None;
        for (id, ct, mute) in parts {
            let index = self.loaded;
            self.loaded += 1;
            if mute {
                continue;
            }
            let base = ct.get();
            match first_base {
                None => first_base = Some(base),
                Some(b) if b != base => uniform = false,
                Some(_) => {}
            }
            self.folded.push(id.fold64());
            self.bases.push(base);
            self.orig.push(index);
        }
        self.uniform_base = if uniform { first_base } else { None };
    }

    /// Loads from [`UtrpParticipant`]s (counters at pre-round values).
    pub fn load_participants(&mut self, parts: &[UtrpParticipant]) {
        self.load(parts.iter().map(|p| (p.id, p.counter, p.mute)));
    }

    /// Loads from `(id, counter)` pairs — e.g. the server's registry
    /// mirror iterated in place, with no intermediate `Vec`.
    pub fn load_pairs<I: IntoIterator<Item = (TagId, Counter)>>(&mut self, pairs: I) {
        self.load(pairs.into_iter().map(|(id, ct)| (id, ct, false)));
    }

    /// Loads from a physical tag population (detuned tags are mute).
    pub fn load_population(&mut self, population: &TagPopulation) {
        self.load(
            population
                .iter()
                .map(|t| (t.id(), t.counter(), t.is_detuned())),
        );
    }

    /// How many participants the last load saw (including mute ones).
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.loaded as usize
    }

    /// The occupancy bitstring of the last run.
    #[must_use]
    pub fn bitstring(&self) -> &Bitstring {
        &self.bitstring
    }

    /// Moves the last run's bitstring out (the scratch keeps an empty
    /// one and re-grows on the next run — use when the caller needs an
    /// owned artifact, e.g. a reader response).
    #[must_use]
    pub fn take_bitstring(&mut self) -> Bitstring {
        std::mem::replace(&mut self.bitstring, Bitstring::zeros(0))
    }

    /// Announcements made by the last run.
    #[must_use]
    pub fn announcements(&self) -> u64 {
        self.announcements
    }

    /// Runs one UTRP round over the loaded participants with the
    /// default sequential scanner, returning the announcement count.
    /// The bitstring is left in [`RoundScratch::bitstring`].
    ///
    /// Counters are **not** written back anywhere — the round's only
    /// counter effect is uniform (+announcements for every loaded tag,
    /// mute included), which the caller applies to its own store.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run(&mut self, f: FrameSize, nonces: &NonceSequence) -> Result<u64, CoreError> {
        self.run_with(f, nonces, sequential_min_scan)
    }

    /// [`RoundScratch::run`] with an injected scanner (e.g. the chunked
    /// parallel min-reduction in `tagwatch-analytics`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run_with<S>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        scanner: S,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
    {
        self.run_inner(f, nonces, scanner, |_, _| {})
    }

    /// [`RoundScratch::run`] with telemetry: when `obs` is enabled the
    /// round runs through the counting scanner and records probe and
    /// candidate-filter totals; when disabled it is exactly
    /// [`RoundScratch::run`]. Either way the round result is
    /// bit-identical to the uninstrumented one.
    ///
    /// # Errors
    ///
    /// As [`RoundScratch::run`].
    pub fn run_observed(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: &tagwatch_obs::Obs,
    ) -> Result<u64, CoreError> {
        if !obs.enabled() {
            return self.run(f, nonces);
        }
        let mut stats = ScanStats::default();
        let announcements = self.run_with(f, nonces, |job, members| {
            job.scan_range_counting(0, job.len(), members, &mut stats)
        })?;
        obs.add(obs.m.probes_total, stats.probes);
        obs.add(obs.m.probes_filtered, stats.filtered);
        Ok(announcements)
    }

    /// [`RoundScratch::run_with`], invoking `on_reply(global_slot,
    /// orig_indices)` for every occupied slot, with the replying tags'
    /// original load indices in ascending order — the engine behind
    /// slot attribution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run_attributed_with<S, F>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        scanner: S,
        on_reply: F,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
        F: FnMut(u64, &[u32]),
    {
        self.run_inner(f, nonces, scanner, on_reply)
    }

    fn run_inner<S, F>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        mut scanner: S,
        mut on_reply: F,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
        F: FnMut(u64, &[u32]),
    {
        let total = f.get();
        self.bitstring.reset(f.as_usize());
        self.announcements = 0;
        let mut cursor = nonces.cursor();
        let mut subframe_start = 0u64;
        let mut frame = FastMod::new(f);

        // Zero-alloc contract: the active arrays only shrink during a
        // round (swap_remove), so their capacity must never move.
        #[cfg(debug_assertions)]
        let caps = (
            self.folded.capacity(),
            self.bases.capacity(),
            self.orig.capacity(),
        );

        loop {
            let r = cursor.next_nonce()?.as_u64();
            self.announcements += 1;
            let advance = self.announcements;
            let job = ScanJob {
                folded: &self.folded,
                bases: &self.bases,
                nonce: r,
                advance,
                uniform_key: self
                    .uniform_base
                    .map(|base| r ^ mix64(base.wrapping_add(advance))),
                frame,
            };
            let Some(rel) = scanner(&job, &mut self.members) else {
                // No active tag replies: the rest of the frame is
                // silence and the round ends (counters advanced once
                // for this final announcement, as in the reference).
                break;
            };

            let global = subframe_start + rel;
            debug_assert!(global < total);
            self.bitstring.set(global as usize, true)?;

            // Attribution wants original load indices ascending; the
            // member buffer holds active indices (ascending by scanner
            // contract, but active order is scrambled by swap_remove).
            self.members_orig.clear();
            self.members_orig
                .extend(self.members.iter().map(|&i| self.orig[i as usize]));
            self.members_orig.sort_unstable();
            on_reply(global, &self.members_orig);

            // Retire the repliers: swap-remove in descending index
            // order keeps earlier indices valid.
            debug_assert!(
                self.members.windows(2).all(|w| w[0] < w[1]),
                "scanner contract: member indices strictly ascending"
            );
            debug_assert!(
                self.members
                    .last()
                    .is_none_or(|&mi| (mi as usize) < self.folded.len()),
                "scanner contract: member indices within the active arrays"
            );
            for &mi in self.members.iter().rev() {
                let i = mi as usize;
                self.folded.swap_remove(i);
                self.bases.swap_remove(i);
                self.orig.swap_remove(i);
            }
            debug_assert!(
                self.folded.len() == self.bases.len() && self.folded.len() == self.orig.len(),
                "active arrays must retire in lockstep"
            );

            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            frame = FastMod::from_divisor(remaining);
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            caps,
            (
                self.folded.capacity(),
                self.bases.capacity(),
                self.orig.capacity(),
            ),
            "a round must not reallocate the active arrays"
        );
        Ok(self.announcements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utrp::{simulate_round_reference, UtrpChallenge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TimingModel;

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn mixed_parts(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 5));
                p.mute = i % 13 == 0;
                p
            })
            .collect()
    }

    #[test]
    fn scratch_matches_reference_and_reuses_buffers() {
        let mut scratch = RoundScratch::new();
        for (n, f_raw, seed) in [(1u64, 4u64, 1u64), (30, 64, 2), (120, 90, 3), (90, 256, 4)] {
            let ch = challenge(f_raw, seed);
            let parts = mixed_parts(n);
            let mut reference = parts.clone();
            let expected =
                simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();

            scratch.load_participants(&parts);
            let announcements = scratch.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*scratch.bitstring(), expected.bitstring, "n={n} f={f_raw}");
            assert_eq!(announcements, expected.announcements, "n={n} f={f_raw}");
        }
    }

    #[test]
    fn uniform_counter_key_collapse_is_exact() {
        // All-equal bases take the one-mix64 fast path; shifting a
        // single tag's counter forces the general path. Both must agree
        // with the reference bit-for-bit.
        let ch = challenge(128, 7);
        for bump in [0u64, 1] {
            let mut parts: Vec<UtrpParticipant> = (1..=60u64)
                .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(41)))
                .collect();
            parts[17].counter = Counter::new(41 + bump);
            let mut reference = parts.clone();
            let expected =
                simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
            let mut scratch = RoundScratch::new();
            scratch.load_participants(&parts);
            scratch.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*scratch.bitstring(), expected.bitstring, "bump={bump}");
            assert_eq!(scratch.announcements(), expected.announcements);
        }
    }

    #[test]
    fn attribution_reports_orig_indices_ascending() {
        let ch = challenge(50, 9);
        // Dense population so some slots collide.
        let parts: Vec<UtrpParticipant> = (1..=120u64)
            .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
            .collect();
        let mut scratch = RoundScratch::new();
        scratch.load_participants(&parts);
        let mut seen: Vec<u32> = Vec::new();
        let mut slots: Vec<u64> = Vec::new();
        scratch
            .run_attributed_with(
                ch.frame_size(),
                ch.nonces(),
                sequential_min_scan,
                |slot, members| {
                    assert!(!members.is_empty());
                    assert!(members.windows(2).all(|w| w[0] < w[1]), "not ascending");
                    slots.push(slot);
                    seen.extend_from_slice(members);
                },
            )
            .unwrap();
        // Slots strictly increase (each reply ends a sub-frame).
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
        // Every non-mute participant replies exactly once.
        seen.sort_unstable();
        let expected: Vec<u32> = (0..120).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn chunked_scan_merge_equals_sequential() {
        // Simulate a parallel scanner in-process: scan fixed chunks,
        // merge by (min slot, chunk index order). Must equal the
        // sequential scanner on every announcement of a real round.
        let ch = challenge(96, 11);
        let parts = mixed_parts(200);

        let mut seq = RoundScratch::new();
        seq.load_participants(&parts);
        seq.run(ch.frame_size(), ch.nonces()).unwrap();
        let seq_bs = seq.take_bitstring();
        let seq_announced = seq.announcements();

        let mut chunked = RoundScratch::new();
        chunked.load_participants(&parts);
        let mut chunk_members: Vec<u32> = Vec::new();
        chunked
            .run_with(ch.frame_size(), ch.nonces(), |job, members| {
                members.clear();
                let mut best: Option<u64> = None;
                let chunk = 17;
                let mut lo = 0;
                while lo < job.len() {
                    let hi = (lo + chunk).min(job.len());
                    if let Some(m) = job.scan_range(lo, hi, &mut chunk_members) {
                        match best {
                            Some(b) if m > b => {}
                            Some(b) if m == b => members.extend_from_slice(&chunk_members),
                            _ => {
                                best = Some(m);
                                members.clear();
                                members.extend_from_slice(&chunk_members);
                            }
                        }
                    }
                    lo = hi;
                }
                best
            })
            .unwrap();
        assert_eq!(*chunked.bitstring(), seq_bs);
        assert_eq!(chunked.announcements(), seq_announced);
    }

    #[test]
    fn all_mute_or_empty_loads_announce_once() {
        let ch = challenge(16, 5);
        let mut scratch = RoundScratch::new();
        scratch.load_pairs(std::iter::empty());
        assert_eq!(scratch.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(scratch.bitstring().count_ones(), 0);

        let mut muted = mixed_parts(5);
        for p in &mut muted {
            p.mute = true;
        }
        scratch.load_participants(&muted);
        assert_eq!(scratch.loaded(), 5);
        assert_eq!(scratch.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(scratch.bitstring().count_ones(), 0);
    }
}
