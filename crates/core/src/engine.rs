//! The struct-of-arrays UTRP round engine.
//!
//! [`crate::utrp::SubsetRound`] — the original engine — keeps an
//! array-of-structs `Vec<UtrpParticipant>` and walks it through an
//! index indirection (`active: Vec<usize>`) on every announcement. At
//! million-tag populations that layout is the bottleneck: each probe
//! gathers a 24-byte struct through a second cache line, re-folds the
//! 128-bit tag ID, wraps the counter in a newtype, and ends in a
//! 64-bit hardware division — tens of cycles per tag, hundreds of
//! thousands of tags, re-scanned after *every* reply.
//!
//! [`RoundScratch`] re-states the same round over three contiguous
//! arrays:
//!
//! * `folded[i]` — the tag's ID pre-folded to 64 bits (done **once** at
//!   load, not once per announcement),
//! * `bases[i]` — the tag's pre-round counter as a raw `u64`,
//! * `orig[i]` — the tag's index in the caller's load order (for
//!   attribution and stable reporting).
//!
//! Retired tags are removed by `swap_remove` on all three arrays, so
//! the active set stays dense and every scan is a single linear pass.
//! Two further observations keep the inner loop branch-light:
//!
//! * Counters advance **uniformly** (+1 per announcement heard), so the
//!   effective counter is `base + announcements` — no per-tag writes
//!   mid-round, and when every base is equal (the steady state of a
//!   synced deployment) the whole counter term collapses into the
//!   announcement key: one [`mix64`] per tag instead of two.
//! * The `mod f` reduction uses [`FastMod`] — Lemire's exact remainder
//!   by multiplication — which is bit-identical to `%` (see its docs),
//!   so outcomes, soak digests, and recorded experiments are unchanged.
//!
//! ## Scanner injection
//!
//! The per-announcement minimum scan is expressed as a [`ScanJob`] so
//! the reduction strategy is pluggable without `tagwatch-core` growing
//! a thread-pool dependency: [`batched_min_scan`] — the two-pass
//! blocked kernel of [`ScanJob::scan_range_batched`] — is the default,
//! [`sequential_min_scan`] is the element-at-a-time reference, and
//! `tagwatch-analytics` provides chunked parallel scanners plus a
//! persistent-pool `PooledEngine` over the same job (deterministic
//! merge: global minimum slot first, then chunks in index order —
//! member lists come out identical to the sequential scan's, so
//! results are scanner-independent by construction; the differential
//! tests pin it).
//!
//! ## Engine injection
//!
//! One level up, a whole round executor is pluggable through the
//! [`RoundEngine`] trait (load / run / bitstring / announcements):
//! [`RoundScratch`] is the scalar implementation, and the pooled
//! sharded engine in `tagwatch-analytics` implements the same trait
//! bit-identically, so executors, protocols, the server's verify
//! mirror, and sessions never know which engine they drive. The serial
//! skeleton both engines share — nonce order, sub-frame shrinking,
//! uniform-key collapse — lives in [`SubframeCursor`].
//!
//! ## Semantics
//!
//! Byte-identical to [`crate::utrp::simulate_round_reference`], the
//! literal Algs. 6–7 execution: same bitstring, same announcement
//! count, same post-round counters. The differential and property
//! tests in [`crate::utrp`] pin the agreement across population sizes,
//! frame shapes, counter states, and mute subsets.

use tagwatch_sim::hash::{mix64, FastMod};
use tagwatch_sim::{Counter, FrameSize, TagId, TagPopulation};

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::nonce::{NonceCursor, NonceSequence};
use crate::utrp::UtrpParticipant;

/// One announcement's minimum-slot scan over the active arrays.
///
/// A scanner receives the job plus a member buffer and must return the
/// minimal slot any active tag chose (`None` when no tag is active),
/// filling the buffer with the *active-array indices* of every tag that
/// chose that slot, in ascending index order.
#[derive(Debug)]
pub struct ScanJob<'a> {
    folded: &'a [u64],
    bases: &'a [u64],
    nonce: u64,
    advance: u64,
    uniform_key: Option<u64>,
    frame: FastMod,
}

/// One announcement's scan parameters: the nonce, the counter advance,
/// the optional collapsed uniform key, and the sub-frame reducer.
///
/// Produced by [`SubframeCursor::announce`] and consumed by
/// [`ScanJob::new`]. All fields are plain `Copy` data, so a parallel
/// driver can ship a `ScanParams` to worker-owned shards by value and
/// every shard builds the *same* job over its own slice — the basis of
/// the pooled engine's bit-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanParams {
    /// The announcement nonce `r`.
    pub nonce: u64,
    /// The counter advance for this announcement (1-based ordinal).
    pub advance: u64,
    /// The pre-collapsed announcement key when every active base
    /// counter is equal: `r ⊕ mix64(base + advance)`.
    pub uniform_key: Option<u64>,
    /// The sub-frame reducer (divisor = slots remaining).
    pub frame: FastMod,
}

impl<'a> ScanJob<'a> {
    /// Builds a scan job over caller-owned active arrays.
    ///
    /// `folded` and `bases` must be the same length and aligned
    /// (element `i` of both describes the same tag). A sharded driver
    /// passes each worker's own slices here with the `ScanParams` of
    /// the current announcement; because every scanner bottoms out in
    /// the same per-tag probe, shard scans are bit-identical to the
    /// corresponding range of a sequential scan.
    #[must_use]
    pub fn new(folded: &'a [u64], bases: &'a [u64], params: &ScanParams) -> Self {
        debug_assert_eq!(folded.len(), bases.len(), "active arrays must be aligned");
        ScanJob {
            folded,
            bases,
            nonce: params.nonce,
            advance: params.advance,
            uniform_key: params.uniform_key,
            frame: params.frame,
        }
    }
}

impl ScanJob<'_> {
    /// Number of active tags in the scan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.folded.len()
    }

    /// Whether no tags are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.folded.is_empty()
    }

    /// The sub-frame reducer (divisor = slots remaining).
    #[must_use]
    pub fn frame(&self) -> FastMod {
        self.frame
    }

    /// Scans `lo..hi` of the active arrays, returning the minimal slot
    /// in that range and pushing the (global) active indices of its
    /// members onto `members` in ascending order. `members` is cleared
    /// first.
    ///
    /// Both the sequential scanner and each chunk of a parallel scanner
    /// bottom out here, so every strategy computes the same per-tag
    /// slots: `mix64(folded ⊕ r ⊕ mix64(base + advance)) mod f`, with
    /// the counter term pre-collapsed into the key when all bases are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is out of bounds for the active arrays.
    pub fn scan_range(&self, lo: usize, hi: usize, members: &mut Vec<u32>) -> Option<u64> {
        let mut stats = ScanStats::default();
        self.scan_range_impl::<false>(lo, hi, members, &mut stats)
    }

    /// [`ScanJob::scan_range`] that additionally accumulates probe
    /// accounting into `stats` — how many per-tag probes ran and how
    /// many the candidate pre-filter skipped. The selection logic is
    /// the *same monomorphized loop* as the plain scan (counting is a
    /// const-generic branch compiled out of the fast path), so results
    /// are bit-identical; only this variant pays for the counters.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is out of bounds for the active arrays.
    pub fn scan_range_counting(
        &self,
        lo: usize,
        hi: usize,
        members: &mut Vec<u32>,
        stats: &mut ScanStats,
    ) -> Option<u64> {
        self.scan_range_impl::<true>(lo, hi, members, stats)
    }

    /// [`ScanJob::scan_range`] restructured as a batched two-pass
    /// kernel over fixed blocks of [`SCAN_BATCH`] tags, bit-identical
    /// by construction (the debug build cross-checks every call
    /// against [`ScanJob::scan_range`]).
    ///
    /// Pass 1 is a straight-line loop with no data-dependent branches
    /// — `mix64` → Lemire fraction into a stack buffer — which the
    /// compiler can unroll and autovectorize. Pass 2 only runs when a
    /// branch-free reduction finds a fraction at or below the
    /// block-entry candidate threshold; it then replays the exact
    /// element-order selection of the sequential kernel over the
    /// block's buffered fractions.
    ///
    /// Why skipping whole blocks is exact: the candidate threshold
    /// only ever *decreases* (it is updated exactly when a new minimum
    /// is found), so the threshold at block entry is an upper bound on
    /// the threshold the sequential scan would hold at any element of
    /// the block. If every fraction in the block exceeds the entry
    /// threshold, the sequential scan would have filtered every one of
    /// those probes too — and since filtered probes never update
    /// `best`, `members`, or the threshold, dropping the block leaves
    /// the scan state untouched, exactly as the sequential kernel
    /// would. Blocks with at least one candidate take pass 2, which
    /// performs the identical updates in the identical order.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is out of bounds for the active arrays.
    pub fn scan_range_batched(&self, lo: usize, hi: usize, members: &mut Vec<u32>) -> Option<u64> {
        members.clear();
        let frame = self.frame;
        let mut best = u64::MAX;
        let mut threshold = u128::MAX;
        let mut fracs = [0u128; SCAN_BATCH];
        let mut base_j = lo;
        while base_j < hi {
            let block_hi = (base_j + SCAN_BATCH).min(hi);
            let block = &self.folded[base_j..block_hi];
            let n = block.len();
            // Pass 1: hash → fraction, straight-line.
            match self.uniform_key {
                Some(key) => {
                    for (k, &fv) in block.iter().enumerate() {
                        fracs[k] = frame.frac(mix64(fv ^ key));
                    }
                }
                None => {
                    let bases = &self.bases[base_j..block_hi];
                    for (k, (&fv, &bv)) in block.iter().zip(bases).enumerate() {
                        let ct = mix64(bv.wrapping_add(self.advance));
                        fracs[k] = frame.frac(mix64(fv ^ self.nonce ^ ct));
                    }
                }
            }
            // Branch-free candidate detection against the block-entry
            // threshold (a strict upper bound on every element-time
            // threshold; see above).
            let mut any = false;
            for &fr in &fracs[..n] {
                any |= fr <= threshold;
            }
            if any {
                // Pass 2: the sequential kernel's exact selection, in
                // element order, over the buffered fractions.
                for (k, &fr) in fracs[..n].iter().enumerate() {
                    if fr > threshold {
                        continue;
                    }
                    let s = frame.rem_of_frac(fr);
                    if s < best {
                        best = s;
                        threshold = frame.candidate_threshold(s);
                        members.clear();
                        members.push((base_j + k) as u32);
                    } else if s == best {
                        members.push((base_j + k) as u32);
                    }
                }
            }
            base_j = block_hi;
        }
        let result = if members.is_empty() { None } else { Some(best) };
        #[cfg(debug_assertions)]
        {
            let mut check_members = Vec::new();
            let check = self.scan_range(lo, hi, &mut check_members);
            debug_assert_eq!(
                check, result,
                "batched kernel must match the sequential scan"
            );
            debug_assert_eq!(
                &check_members, members,
                "batched kernel must preserve the replier set"
            );
        }
        result
    }

    fn scan_range_impl<const COUNT: bool>(
        &self,
        lo: usize,
        hi: usize,
        members: &mut Vec<u32>,
        stats: &mut ScanStats,
    ) -> Option<u64> {
        members.clear();
        let folded = &self.folded[lo..hi];
        let frame = self.frame;
        let mut best = u64::MAX;
        // Candidate pre-filter: once a best slot exists, a probe whose
        // Lemire fraction exceeds `threshold` is guaranteed to land
        // strictly above it (see `FastMod::candidate_threshold`), so the
        // exact remainder and the best/members bookkeeping are skipped.
        // In a dense frame `best` hits 0 within a handful of probes and
        // the steady-state iteration is just hash → fraction → compare,
        // with a branch that predicts "skip" almost every time. The
        // filter is conservative — sub-threshold probes are verified
        // with the exact remainder — so the scan is bit-identical to
        // the unfiltered one.
        let mut threshold = u128::MAX;
        if COUNT {
            stats.probes += (hi - lo) as u64;
        }
        match self.uniform_key {
            Some(key) => {
                for (j, &fv) in folded.iter().enumerate() {
                    let frac = frame.frac(mix64(fv ^ key));
                    if frac > threshold {
                        if COUNT {
                            stats.filtered += 1;
                        }
                        continue;
                    }
                    let s = frame.rem_of_frac(frac);
                    if s < best {
                        best = s;
                        threshold = frame.candidate_threshold(s);
                        members.clear();
                        members.push((lo + j) as u32);
                    } else if s == best {
                        members.push((lo + j) as u32);
                    }
                }
            }
            None => {
                let bases = &self.bases[lo..hi];
                for (j, (&fv, &bv)) in folded.iter().zip(bases).enumerate() {
                    let ct = mix64(bv.wrapping_add(self.advance));
                    let frac = frame.frac(mix64(fv ^ self.nonce ^ ct));
                    if frac > threshold {
                        if COUNT {
                            stats.filtered += 1;
                        }
                        continue;
                    }
                    let s = frame.rem_of_frac(frac);
                    if s < best {
                        best = s;
                        threshold = frame.candidate_threshold(s);
                        members.clear();
                        members.push((lo + j) as u32);
                    } else if s == best {
                        members.push((lo + j) as u32);
                    }
                }
            }
        }
        // The pre-filter may only skip probes that land strictly above
        // the running best: an unfiltered re-scan must agree on both
        // the minimum slot and the full replier set.
        #[cfg(debug_assertions)]
        {
            let slot_of = |j: usize| -> u64 {
                let fv = self.folded[lo + j];
                match self.uniform_key {
                    Some(key) => frame.rem(mix64(fv ^ key)),
                    None => {
                        let ct = mix64(self.bases[lo + j].wrapping_add(self.advance));
                        frame.rem(mix64(fv ^ self.nonce ^ ct))
                    }
                }
            };
            let brute = (0..hi - lo).map(slot_of).min();
            debug_assert_eq!(
                brute,
                if members.is_empty() { None } else { Some(best) },
                "candidate pre-filter must preserve the exact minimum"
            );
            if let Some(min) = brute {
                let full: Vec<u32> = (0..hi - lo)
                    .filter(|&j| slot_of(j) == min)
                    .map(|j| (lo + j) as u32)
                    .collect();
                debug_assert_eq!(
                    &full, members,
                    "candidate pre-filter must preserve the replier set"
                );
            }
        }
        if members.is_empty() {
            None
        } else {
            Some(best)
        }
    }
}

/// Probe accounting from a counting scan: the raw material for the
/// telemetry layer's probe / candidate-filter hit-rate metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Per-tag slot probes evaluated.
    pub probes: u64,
    /// Probes the candidate pre-filter skipped before the exact
    /// remainder.
    pub filtered: u64,
}

impl ScanStats {
    /// Adds `other`'s counts into `self` (the reduction step when
    /// chunked scans count independently).
    pub fn merge(&mut self, other: ScanStats) {
        self.probes += other.probes;
        self.filtered += other.filtered;
    }
}

/// Block length of the batched probe kernel
/// ([`ScanJob::scan_range_batched`]): fractions for this many tags are
/// buffered on the stack per pass-1 sweep. 64 × 16 bytes = one KiB —
/// comfortably L1-resident — and long enough for the compiler to
/// unroll pass 1 aggressively.
pub const SCAN_BATCH: usize = 64;

/// The reference scanner: one linear pass over the whole active set.
pub fn sequential_min_scan(job: &ScanJob<'_>, members: &mut Vec<u32>) -> Option<u64> {
    job.scan_range(0, job.len(), members)
}

/// The default scanner: the batched two-pass kernel over the whole
/// active set ([`ScanJob::scan_range_batched`]), bit-identical to
/// [`sequential_min_scan`] by construction.
pub fn batched_min_scan(job: &ScanJob<'_>, members: &mut Vec<u32>) -> Option<u64> {
    job.scan_range_batched(0, job.len(), members)
}

/// Per-announcement sub-frame bookkeeping of one UTRP round: nonce
/// consumption order, announcement counting, the uniform-key collapse,
/// the global-slot mapping, and the shrinking sub-frame reducer.
///
/// [`RoundScratch::run`] and the pooled engine in `tagwatch-analytics`
/// both drive their rounds through this one struct, so the serial
/// skeleton of the round — everything *except* the min-scan itself —
/// has a single source of truth and cannot drift between the scalar
/// and sharded implementations.
#[derive(Debug, Clone)]
pub struct SubframeCursor {
    total: u64,
    subframe_start: u64,
    announcements: u64,
    frame: FastMod,
    done: bool,
}

impl SubframeCursor {
    /// Starts a round over frame size `f`: no announcements yet, the
    /// sub-frame is the whole frame.
    #[must_use]
    pub fn new(f: FrameSize) -> Self {
        SubframeCursor {
            total: f.get(),
            subframe_start: 0,
            announcements: 0,
            frame: FastMod::new(f),
            done: false,
        }
    }

    /// Announcements made so far.
    #[must_use]
    pub fn announcements(&self) -> u64 {
        self.announcements
    }

    /// Whether the round is over (frame exhausted or explicit
    /// [`SubframeCursor::finish`]).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Starts the next announcement: consumes a nonce, advances the
    /// announcement count, and returns the scan parameters for the
    /// current sub-frame (collapsing the counter term into the key
    /// when `uniform_base` says every base is equal).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` has
    /// run out.
    pub fn announce(
        &mut self,
        nonces: &mut NonceCursor<'_>,
        uniform_base: Option<u64>,
    ) -> Result<ScanParams, CoreError> {
        let r = nonces.next_nonce()?.as_u64();
        self.announcements += 1;
        let advance = self.announcements;
        Ok(ScanParams {
            nonce: r,
            advance,
            uniform_key: uniform_base.map(|base| r ^ mix64(base.wrapping_add(advance))),
            frame: self.frame,
        })
    }

    /// Records the winning relative slot of the current announcement
    /// and returns the global frame slot. Shrinks the sub-frame to the
    /// slots after the winner; when none remain the round is done.
    pub fn record_reply(&mut self, rel: u64) -> u64 {
        let global = self.subframe_start + rel;
        debug_assert!(global < self.total, "reply slot must lie within the frame");
        let remaining = self.total - (global + 1);
        if remaining == 0 {
            self.done = true;
        } else {
            self.subframe_start = global + 1;
            self.frame = FastMod::from_divisor(remaining);
        }
        global
    }

    /// Ends the round after a silent announcement (no active tag
    /// replied: the rest of the frame is silence).
    pub fn finish(&mut self) {
        self.done = true;
    }
}

/// Reusable round state: the struct-of-arrays active set, the member
/// buffers, and the output bitstring, all retained across rounds so a
/// long monitoring session performs no per-round allocation in steady
/// state (buffers grow to the population size once and stay).
///
/// Typical use:
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::engine::RoundScratch;
/// use tagwatch_core::utrp::UtrpChallenge;
/// use tagwatch_sim::{Counter, FrameSize, TagId, TimingModel};
///
/// # fn main() -> Result<(), tagwatch_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ch = UtrpChallenge::generate(FrameSize::new(64)?, &TimingModel::gen2(), &mut rng);
///
/// let mut scratch = RoundScratch::new();
/// scratch.load_pairs((1..=20u64).map(|i| (TagId::from(i), Counter::ZERO)));
/// let announcements = scratch.run(ch.frame_size(), ch.nonces())?;
/// assert_eq!(scratch.bitstring().len(), 64);
/// assert!(announcements >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoundScratch {
    folded: Vec<u64>,
    bases: Vec<u64>,
    orig: Vec<u32>,
    members: Vec<u32>,
    members_orig: Vec<u32>,
    bitstring: Bitstring,
    announcements: u64,
    uniform_base: Option<u64>,
    loaded: u32,
}

impl Default for RoundScratch {
    fn default() -> Self {
        RoundScratch::new()
    }
}

impl RoundScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        RoundScratch {
            folded: Vec::new(),
            bases: Vec::new(),
            orig: Vec::new(),
            members: Vec::new(),
            members_orig: Vec::new(),
            bitstring: Bitstring::zeros(0),
            announcements: 0,
            uniform_base: None,
            loaded: 0,
        }
    }

    /// Loads the round's participants from `(id, counter, mute)`
    /// triples. Mute tags never enter the active arrays (they cannot
    /// reply) but still occupy a load index, so attribution indices
    /// always refer to the caller's original order.
    pub fn load<I: IntoIterator<Item = (TagId, Counter, bool)>>(&mut self, parts: I) {
        self.folded.clear();
        self.bases.clear();
        self.orig.clear();
        self.loaded = 0;
        let mut uniform = true;
        let mut first_base: Option<u64> = None;
        for (id, ct, mute) in parts {
            let index = self.loaded;
            self.loaded += 1;
            if mute {
                continue;
            }
            let base = ct.get();
            match first_base {
                None => first_base = Some(base),
                Some(b) if b != base => uniform = false,
                Some(_) => {}
            }
            self.folded.push(id.fold64());
            self.bases.push(base);
            self.orig.push(index);
        }
        self.uniform_base = if uniform { first_base } else { None };
    }

    /// Loads from [`UtrpParticipant`]s (counters at pre-round values).
    pub fn load_participants(&mut self, parts: &[UtrpParticipant]) {
        self.load(parts.iter().map(|p| (p.id, p.counter, p.mute)));
    }

    /// Loads from `(id, counter)` pairs — e.g. the server's registry
    /// mirror iterated in place, with no intermediate `Vec`.
    pub fn load_pairs<I: IntoIterator<Item = (TagId, Counter)>>(&mut self, pairs: I) {
        self.load(pairs.into_iter().map(|(id, ct)| (id, ct, false)));
    }

    /// Loads from a physical tag population (detuned tags are mute).
    pub fn load_population(&mut self, population: &TagPopulation) {
        self.load(
            population
                .iter()
                .map(|t| (t.id(), t.counter(), t.is_detuned())),
        );
    }

    /// How many participants the last load saw (including mute ones).
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.loaded as usize
    }

    /// The occupancy bitstring of the last run.
    #[must_use]
    pub fn bitstring(&self) -> &Bitstring {
        &self.bitstring
    }

    /// Moves the last run's bitstring out (the scratch keeps an empty
    /// one and re-grows on the next run — use when the caller needs an
    /// owned artifact, e.g. a reader response).
    #[must_use]
    pub fn take_bitstring(&mut self) -> Bitstring {
        std::mem::replace(&mut self.bitstring, Bitstring::zeros(0))
    }

    /// Announcements made by the last run.
    #[must_use]
    pub fn announcements(&self) -> u64 {
        self.announcements
    }

    /// Runs one UTRP round over the loaded participants with the
    /// default batched kernel ([`batched_min_scan`], bit-identical to
    /// the sequential reference scan), returning the announcement
    /// count. The bitstring is left in [`RoundScratch::bitstring`].
    ///
    /// Counters are **not** written back anywhere — the round's only
    /// counter effect is uniform (+announcements for every loaded tag,
    /// mute included), which the caller applies to its own store.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run(&mut self, f: FrameSize, nonces: &NonceSequence) -> Result<u64, CoreError> {
        self.run_with(f, nonces, batched_min_scan)
    }

    /// [`RoundScratch::run`] with an injected scanner (e.g. the chunked
    /// parallel min-reduction in `tagwatch-analytics`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run_with<S>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        scanner: S,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
    {
        self.run_inner(f, nonces, scanner, |_, _| {})
    }

    /// [`RoundScratch::run`] with telemetry: when `obs` is enabled the
    /// round runs through the counting scanner and records probe and
    /// candidate-filter totals; when disabled it is exactly
    /// [`RoundScratch::run`]. Either way the round result is
    /// bit-identical to the uninstrumented one.
    ///
    /// # Errors
    ///
    /// As [`RoundScratch::run`].
    pub fn run_observed(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: &tagwatch_obs::Obs,
    ) -> Result<u64, CoreError> {
        if !obs.enabled() {
            return self.run(f, nonces);
        }
        let mut stats = ScanStats::default();
        let spans_on = obs.spans_enabled();
        let mut announcement = 0u64;
        let announcements = self.run_with(f, nonces, |job, members| {
            announcement += 1;
            let probes_before = stats.probes;
            let rel = job.scan_range_counting(0, job.len(), members, &mut stats);
            if spans_on {
                // Phase attribution by the cost clock. Slots charged
                // per announcement telescope exactly to the frame size:
                // a reply at relative slot `rel` elapses `rel + 1`
                // slots of its sub-frame; silence elapses the whole
                // remaining sub-frame (the divisor) and ends the round.
                let slots = rel.map_or_else(|| job.frame().divisor(), |r| r + 1);
                let probes = stats.probes - probes_before;
                obs.span_phase(tagwatch_obs::Phase::SubFrameSetup, 0, 0);
                let phase = if announcement == 1 {
                    tagwatch_obs::Phase::MinScan
                } else {
                    tagwatch_obs::Phase::ReSeed
                };
                obs.span_phase(phase, slots, probes);
            }
            rel
        })?;
        obs.add(obs.m.probes_total, stats.probes);
        obs.add(obs.m.probes_filtered, stats.filtered);
        Ok(announcements)
    }

    /// [`RoundScratch::run_with`], invoking `on_reply(global_slot,
    /// orig_indices)` for every occupied slot, with the replying tags'
    /// original load indices in ascending order — the engine behind
    /// slot attribution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    pub fn run_attributed_with<S, F>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        scanner: S,
        on_reply: F,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
        F: FnMut(u64, &[u32]),
    {
        self.run_inner(f, nonces, scanner, on_reply)
    }

    fn run_inner<S, F>(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        mut scanner: S,
        mut on_reply: F,
    ) -> Result<u64, CoreError>
    where
        S: FnMut(&ScanJob<'_>, &mut Vec<u32>) -> Option<u64>,
        F: FnMut(u64, &[u32]),
    {
        self.bitstring.reset(f.as_usize());
        self.announcements = 0;
        let mut cursor = nonces.cursor();
        let mut walk = SubframeCursor::new(f);

        // Zero-alloc contract: the active arrays only shrink during a
        // round (swap_remove), so their capacity must never move.
        #[cfg(debug_assertions)]
        let caps = (
            self.folded.capacity(),
            self.bases.capacity(),
            self.orig.capacity(),
        );

        loop {
            let params = walk.announce(&mut cursor, self.uniform_base)?;
            self.announcements = walk.announcements();
            let job = ScanJob::new(&self.folded, &self.bases, &params);
            let Some(rel) = scanner(&job, &mut self.members) else {
                // No active tag replies: the rest of the frame is
                // silence and the round ends (counters advanced once
                // for this final announcement, as in the reference).
                break;
            };

            let global = walk.record_reply(rel);
            self.bitstring.set(global as usize, true)?;

            // Attribution wants original load indices ascending; the
            // member buffer holds active indices (ascending by scanner
            // contract, but active order is scrambled by swap_remove).
            self.members_orig.clear();
            self.members_orig
                .extend(self.members.iter().map(|&i| self.orig[i as usize]));
            self.members_orig.sort_unstable();
            on_reply(global, &self.members_orig);

            // Retire the repliers: swap-remove in descending index
            // order keeps earlier indices valid.
            debug_assert!(
                self.members.windows(2).all(|w| w[0] < w[1]),
                "scanner contract: member indices strictly ascending"
            );
            debug_assert!(
                self.members
                    .last()
                    .is_none_or(|&mi| (mi as usize) < self.folded.len()),
                "scanner contract: member indices within the active arrays"
            );
            for &mi in self.members.iter().rev() {
                let i = mi as usize;
                self.folded.swap_remove(i);
                self.bases.swap_remove(i);
                self.orig.swap_remove(i);
            }
            debug_assert!(
                self.folded.len() == self.bases.len() && self.folded.len() == self.orig.len(),
                "active arrays must retire in lockstep"
            );

            if walk.is_done() {
                break;
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            caps,
            (
                self.folded.capacity(),
                self.bases.capacity(),
                self.orig.capacity(),
            ),
            "a round must not reallocate the active arrays"
        );
        Ok(self.announcements)
    }
}

/// A pluggable executor of one UTRP round: load an active set, run the
/// round, read back the bitstring and announcement count.
///
/// [`RoundScratch`] is the canonical scalar implementation;
/// `tagwatch-analytics` provides `PooledEngine`, a sharded multi-core
/// implementation over a persistent worker pool. Executors, protocols,
/// the server's verify mirror, and sessions are generic over this
/// trait, which makes parallelism an implementation detail: every
/// implementation must be **bit-identical** to [`RoundScratch`] —
/// same bitstring, same announcement count, same observed probe totals
/// — at any thread count. The differential and property tests pin it.
pub trait RoundEngine {
    /// Loads the round's participants from `(id, counter, mute)`
    /// triples. Mute tags never reply but still occupy a load index,
    /// so attribution indices always refer to the caller's original
    /// order.
    fn load<I: IntoIterator<Item = (TagId, Counter, bool)>>(&mut self, parts: I);

    /// Runs one UTRP round over the loaded participants, returning the
    /// announcement count; the bitstring is left in
    /// [`RoundEngine::bitstring`]. Counters are not written back — the
    /// round's only counter effect is uniform (+announcements per
    /// loaded tag), which the caller applies to its own store.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] if `nonces` is
    /// shorter than the frame.
    fn run(&mut self, f: FrameSize, nonces: &NonceSequence) -> Result<u64, CoreError>;

    /// [`RoundEngine::run`] with telemetry: when `obs` is enabled the
    /// implementation additionally records probe and candidate-filter
    /// totals. The round result must be bit-identical either way, and
    /// the probe total must be chunking- and thread-invariant (it is
    /// `Σ active_i` for any exact engine).
    ///
    /// # Errors
    ///
    /// As [`RoundEngine::run`].
    fn run_observed(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: &tagwatch_obs::Obs,
    ) -> Result<u64, CoreError>;

    /// The occupancy bitstring of the last run.
    fn bitstring(&self) -> &Bitstring;

    /// Moves the last run's bitstring out, leaving an empty one.
    fn take_bitstring(&mut self) -> Bitstring;

    /// Announcements made by the last run.
    fn announcements(&self) -> u64;

    /// Loads from [`UtrpParticipant`]s (counters at pre-round values).
    fn load_participants(&mut self, parts: &[UtrpParticipant]) {
        self.load(parts.iter().map(|p| (p.id, p.counter, p.mute)));
    }

    /// Loads from `(id, counter)` pairs — e.g. the server's registry
    /// mirror iterated in place.
    fn load_pairs<I: IntoIterator<Item = (TagId, Counter)>>(&mut self, pairs: I) {
        self.load(pairs.into_iter().map(|(id, ct)| (id, ct, false)));
    }

    /// Loads from a physical tag population (detuned tags are mute).
    fn load_population(&mut self, population: &TagPopulation) {
        self.load(
            population
                .iter()
                .map(|t| (t.id(), t.counter(), t.is_detuned())),
        );
    }
}

impl RoundEngine for RoundScratch {
    fn load<I: IntoIterator<Item = (TagId, Counter, bool)>>(&mut self, parts: I) {
        RoundScratch::load(self, parts);
    }

    fn run(&mut self, f: FrameSize, nonces: &NonceSequence) -> Result<u64, CoreError> {
        RoundScratch::run(self, f, nonces)
    }

    fn run_observed(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: &tagwatch_obs::Obs,
    ) -> Result<u64, CoreError> {
        RoundScratch::run_observed(self, f, nonces, obs)
    }

    fn bitstring(&self) -> &Bitstring {
        RoundScratch::bitstring(self)
    }

    fn take_bitstring(&mut self) -> Bitstring {
        RoundScratch::take_bitstring(self)
    }

    fn announcements(&self) -> u64 {
        RoundScratch::announcements(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utrp::{simulate_round_reference, UtrpChallenge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TimingModel;

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn mixed_parts(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 5));
                p.mute = i % 13 == 0;
                p
            })
            .collect()
    }

    #[test]
    fn scratch_matches_reference_and_reuses_buffers() {
        let mut scratch = RoundScratch::new();
        for (n, f_raw, seed) in [(1u64, 4u64, 1u64), (30, 64, 2), (120, 90, 3), (90, 256, 4)] {
            let ch = challenge(f_raw, seed);
            let parts = mixed_parts(n);
            let mut reference = parts.clone();
            let expected =
                simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();

            scratch.load_participants(&parts);
            let announcements = scratch.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*scratch.bitstring(), expected.bitstring, "n={n} f={f_raw}");
            assert_eq!(announcements, expected.announcements, "n={n} f={f_raw}");
        }
    }

    #[test]
    fn uniform_counter_key_collapse_is_exact() {
        // All-equal bases take the one-mix64 fast path; shifting a
        // single tag's counter forces the general path. Both must agree
        // with the reference bit-for-bit.
        let ch = challenge(128, 7);
        for bump in [0u64, 1] {
            let mut parts: Vec<UtrpParticipant> = (1..=60u64)
                .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(41)))
                .collect();
            parts[17].counter = Counter::new(41 + bump);
            let mut reference = parts.clone();
            let expected =
                simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
            let mut scratch = RoundScratch::new();
            scratch.load_participants(&parts);
            scratch.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*scratch.bitstring(), expected.bitstring, "bump={bump}");
            assert_eq!(scratch.announcements(), expected.announcements);
        }
    }

    #[test]
    fn attribution_reports_orig_indices_ascending() {
        let ch = challenge(50, 9);
        // Dense population so some slots collide.
        let parts: Vec<UtrpParticipant> = (1..=120u64)
            .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
            .collect();
        let mut scratch = RoundScratch::new();
        scratch.load_participants(&parts);
        let mut seen: Vec<u32> = Vec::new();
        let mut slots: Vec<u64> = Vec::new();
        scratch
            .run_attributed_with(
                ch.frame_size(),
                ch.nonces(),
                sequential_min_scan,
                |slot, members| {
                    assert!(!members.is_empty());
                    assert!(members.windows(2).all(|w| w[0] < w[1]), "not ascending");
                    slots.push(slot);
                    seen.extend_from_slice(members);
                },
            )
            .unwrap();
        // Slots strictly increase (each reply ends a sub-frame).
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
        // Every non-mute participant replies exactly once.
        seen.sort_unstable();
        let expected: Vec<u32> = (0..120).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn chunked_scan_merge_equals_sequential() {
        // Simulate a parallel scanner in-process: scan fixed chunks,
        // merge by (min slot, chunk index order). Must equal the
        // sequential scanner on every announcement of a real round.
        let ch = challenge(96, 11);
        let parts = mixed_parts(200);

        let mut seq = RoundScratch::new();
        seq.load_participants(&parts);
        seq.run(ch.frame_size(), ch.nonces()).unwrap();
        let seq_bs = seq.take_bitstring();
        let seq_announced = seq.announcements();

        let mut chunked = RoundScratch::new();
        chunked.load_participants(&parts);
        let mut chunk_members: Vec<u32> = Vec::new();
        chunked
            .run_with(ch.frame_size(), ch.nonces(), |job, members| {
                members.clear();
                let mut best: Option<u64> = None;
                let chunk = 17;
                let mut lo = 0;
                while lo < job.len() {
                    let hi = (lo + chunk).min(job.len());
                    if let Some(m) = job.scan_range(lo, hi, &mut chunk_members) {
                        match best {
                            Some(b) if m > b => {}
                            Some(b) if m == b => members.extend_from_slice(&chunk_members),
                            _ => {
                                best = Some(m);
                                members.clear();
                                members.extend_from_slice(&chunk_members);
                            }
                        }
                    }
                    lo = hi;
                }
                best
            })
            .unwrap();
        assert_eq!(*chunked.bitstring(), seq_bs);
        assert_eq!(chunked.announcements(), seq_announced);
    }

    #[test]
    fn batched_kernel_matches_sequential_scan() {
        // Full rounds driven by the batched kernel vs the sequential
        // reference, across sizes straddling SCAN_BATCH boundaries
        // (empty tail block, exact multiple, one-over) and both the
        // uniform-key and general counter paths.
        for (n, f_raw, seed) in [
            (1u64, 8u64, 21u64),
            (63, 64, 22),
            (64, 64, 23),
            (65, 96, 24),
            (200, 128, 25),
            (513, 256, 26),
        ] {
            let ch = challenge(f_raw, seed);
            for mixed in [false, true] {
                let parts: Vec<UtrpParticipant> = if mixed {
                    mixed_parts(n)
                } else {
                    (1..=n)
                        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(3)))
                        .collect()
                };
                let mut seq = RoundScratch::new();
                seq.load_participants(&parts);
                seq.run_with(ch.frame_size(), ch.nonces(), sequential_min_scan)
                    .unwrap();
                let mut bat = RoundScratch::new();
                bat.load_participants(&parts);
                bat.run_with(ch.frame_size(), ch.nonces(), batched_min_scan)
                    .unwrap();
                assert_eq!(*bat.bitstring(), *seq.bitstring(), "n={n} mixed={mixed}");
                assert_eq!(bat.announcements(), seq.announcements());
            }
        }
    }

    #[test]
    fn subframe_cursor_replays_reference_bookkeeping() {
        // Drive a round "by hand" through SubframeCursor + ScanJob::new
        // over scratch-owned slices — the exact shape of the pooled
        // driver — and compare to RoundScratch::run.
        let ch = challenge(128, 31);
        let parts = mixed_parts(150);
        let mut expected = RoundScratch::new();
        expected.load_participants(&parts);
        expected.run(ch.frame_size(), ch.nonces()).unwrap();

        // Build each job from announce()'s ScanParams over hand-owned
        // arrays to prove the cursor produces the same parameters
        // run_inner does.
        let mut cursor = ch.nonces().cursor();
        let mut walk = SubframeCursor::new(ch.frame_size());
        let mut bits = Bitstring::zeros(ch.frame_size().as_usize());
        let mut folded: Vec<u64> = (0..150u64)
            .filter(|i| (i + 1) % 13 != 0)
            .map(|i| TagId::from(i + 1).fold64())
            .collect();
        let mut bases: Vec<u64> = (0..150u64)
            .filter(|i| (i + 1) % 13 != 0)
            .map(|i| (i + 1) % 5)
            .collect();
        let mut members = Vec::new();
        loop {
            let params = walk.announce(&mut cursor, None).unwrap();
            let job = ScanJob::new(&folded, &bases, &params);
            let Some(rel) = job.scan_range_batched(0, job.len(), &mut members) else {
                break;
            };
            let global = walk.record_reply(rel);
            bits.set(global as usize, true).unwrap();
            for &mi in members.iter().rev() {
                folded.swap_remove(mi as usize);
                bases.swap_remove(mi as usize);
            }
            if walk.is_done() {
                break;
            }
        }
        assert_eq!(bits, *expected.bitstring());
        assert_eq!(walk.announcements(), expected.announcements());
    }

    #[test]
    fn all_mute_or_empty_loads_announce_once() {
        let ch = challenge(16, 5);
        let mut scratch = RoundScratch::new();
        scratch.load_pairs(std::iter::empty());
        assert_eq!(scratch.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(scratch.bitstring().count_ones(), 0);

        let mut muted = mixed_parts(5);
        for p in &mut muted {
            p.mute = true;
        }
        scratch.load_participants(&muted);
        assert_eq!(scratch.loaded(), 5);
        assert_eq!(scratch.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(scratch.bitstring().count_ones(), 0);
    }
}
