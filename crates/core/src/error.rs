//! Error types for the monitoring protocols.

use std::error::Error;
use std::fmt;

use tagwatch_sim::SimError;

/// Errors produced by the monitoring protocol layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Monitoring parameters failed validation (e.g. `m >= n`, or a
    /// confidence level outside `(0, 1)`).
    InvalidParams {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Two bitstrings of different lengths were combined or compared.
    LengthMismatch {
        /// Length of the left operand in bits.
        left: usize,
        /// Length of the right operand in bits.
        right: usize,
    },
    /// A bit index was outside the bitstring.
    BitOutOfRange {
        /// The rejected index.
        index: usize,
        /// The bitstring length.
        len: usize,
    },
    /// A tag ID was not found in the server's registry.
    UnknownTag {
        /// The unknown ID in canonical form.
        id: String,
    },
    /// The UTRP nonce sequence was exhausted (more re-seeds than
    /// pre-committed nonces — impossible for a protocol-following
    /// reader, so this indicates a protocol violation).
    NonceSequenceExhausted,
    /// The frame-size search could not satisfy the accuracy constraint
    /// within [`tagwatch_sim::FrameSize::MAX`] slots.
    NoFeasibleFrame {
        /// Population size of the failing instance.
        n: u64,
        /// Tolerance of the failing instance.
        m: u64,
    },
    /// A response's bitstring length disagreed with the challenge.
    ResponseShapeMismatch {
        /// Expected number of slots (the challenge's frame size).
        expected: u64,
        /// Received bitstring length.
        received: u64,
    },
    /// The reader's response arrived after the challenge deadline —
    /// treated as a failed proof in UTRP (paper Alg. 5 line 5).
    DeadlineExceeded {
        /// The deadline, microseconds of simulated time.
        deadline_micros: u64,
        /// The actual completion time.
        completed_micros: u64,
    },
    /// A persisted registry snapshot failed to parse.
    ParseSnapshot {
        /// 1-based line number of the offending record (0 for
        /// document-level problems such as a missing policy line).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The server's counter mirror is out of sync with the field tags
    /// (a previous UTRP round failed verification), so UTRP challenges
    /// cannot be issued until a trusted resynchronization.
    CounterDesync,
    /// A hypothesis-based resync was requested but the last verification
    /// did not produce a desync hypothesis (the set verified intact, or
    /// the mismatch was unexplainable and alarmed instead).
    NoResyncHypothesis,
    /// An underlying simulation error.
    Sim(SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams { reason } => {
                write!(f, "invalid monitoring parameters: {reason}")
            }
            CoreError::LengthMismatch { left, right } => {
                write!(f, "bitstring length mismatch: {left} vs {right} bits")
            }
            CoreError::BitOutOfRange { index, len } => {
                write!(f, "bit index {index} outside bitstring of {len} bits")
            }
            CoreError::UnknownTag { id } => write!(f, "tag {id} not in server registry"),
            CoreError::NonceSequenceExhausted => {
                write!(f, "utrp nonce sequence exhausted (protocol violation)")
            }
            CoreError::NoFeasibleFrame { n, m } => write!(
                f,
                "no frame size satisfies the accuracy constraint for n={n}, m={m}"
            ),
            CoreError::ResponseShapeMismatch { expected, received } => write!(
                f,
                "response has {received} slots but the challenge frame has {expected}"
            ),
            CoreError::DeadlineExceeded {
                deadline_micros,
                completed_micros,
            } => write!(
                f,
                "response completed at t={completed_micros}us after deadline t={deadline_micros}us"
            ),
            CoreError::ParseSnapshot { line, reason } => {
                write!(f, "registry snapshot parse error at line {line}: {reason}")
            }
            CoreError::CounterDesync => write!(
                f,
                "server counter mirror is desynchronized; resynchronize before issuing utrp challenges"
            ),
            CoreError::NoResyncHypothesis => write!(
                f,
                "no pending desync hypothesis; a physical audit (resync_counters) is required"
            ),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = CoreError::UnknownTag {
            id: "epc:1".to_owned(),
        };
        assert!(e.to_string().contains("epc:1"));
    }

    #[test]
    fn sim_errors_wrap_with_source() {
        let e = CoreError::from(SimError::EmptyFrame);
        assert!(matches!(e, CoreError::Sim(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CoreError>();
    }
}
