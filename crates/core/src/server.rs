//! The monitoring server.
//!
//! The server owns the ground truth: the registry of tag IDs (and, for
//! UTRP, a mirror of every tag's hardware counter), the monitoring
//! policy `(m, α)`, and the challenge/verify lifecycle. Challenges are
//! consumed by value at verification so no `(f, r)` can be replayed —
//! the paper's freshness requirement enforced by the type system.

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;

use tagwatch_sim::{Counter, FrameSize, TagId, TimingModel};

use crate::bitstring::Bitstring;
use crate::engine::{RoundEngine, RoundScratch};
use crate::error::CoreError;
use crate::frame::{trp_frame_size, utrp_frame_size, UtrpSizing};
use crate::params::MonitorParams;
use crate::trp::{self, TrpChallenge};
use crate::utrp::{attributed_round, expected_round, UtrpChallenge, UtrpResponse};
use crate::verdict::{MonitorReport, ProtocolKind, Verdict};

/// Configuration for a [`MonitorServer`] beyond the core policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Timing model used to derive UTRP deadlines.
    pub timing: TimingModel,
    /// UTRP frame sizing knobs (sync budget `c`, safety pad).
    pub utrp_sizing: UtrpSizing,
    /// How far the desync diagnosis searches (in announcements) when a
    /// UTRP bitstring mismatches: counter leads/lags of `1..=window`
    /// are hypothesized and tested for an exact bitstring match. `0`
    /// (the default) disables diagnosis — every mismatch alarms as
    /// [`Verdict::NotIntact`].
    ///
    /// Diagnosis is deliberately **opt-in**: a colluding reader holding
    /// a stolen tag produces the *same* single-lag signature as a tag
    /// that benignly missed an announcement (the stolen tag genuinely
    /// lags), so enabling a window lets some collusion rounds end
    /// [`Verdict::Desynced`] instead of alarming outright. The verdict
    /// is still a detection — the set is never accepted as intact and
    /// the named suspect fails its physical check — but the paper's
    /// *per-round alarm* rate against colluders only holds at `0`.
    /// Deployments that enable it should pair it with the session
    /// layer's strike/quarantine ladder.
    pub desync_window: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            timing: TimingModel::gen2(),
            utrp_sizing: UtrpSizing::default(),
            desync_window: 0,
        }
    }
}

/// A diagnosed explanation for a mismatched UTRP round, held by the
/// server until [`MonitorServer::resync_from_hypothesis`] applies it
/// (optimistic recovery — the next round confirms or refutes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResyncHypothesis {
    /// Every tag's true counter leads the mirror by `lead` (the mirror
    /// missed a whole round's advance, e.g. the reader crashed after
    /// announcing but before its response was verified).
    UniformLead {
        /// Announcements the mirror is behind by.
        lead: u64,
        /// Announcements of the matching hypothesized round (the field
        /// tags advanced by this much *during* the diagnosed round).
        announcements: u64,
    },
    /// One tag's true counter lags the mirror by `lag` (it missed
    /// downlink announcements in an earlier round).
    SingleLag {
        /// The lagging tag.
        tag: TagId,
        /// Announcements it missed.
        lag: u64,
        /// Announcements of the matching hypothesized round.
        announcements: u64,
    },
}

impl ResyncHypothesis {
    /// The tags this hypothesis singles out (empty for a uniform lead).
    #[must_use]
    pub fn suspects(&self) -> Vec<TagId> {
        match self {
            ResyncHypothesis::UniformLead { .. } => Vec::new(),
            ResyncHypothesis::SingleLag { tag, .. } => vec![*tag],
        }
    }
}

/// The back-end server of the monitoring system.
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::MonitorServer;
/// use tagwatch_sim::TagId;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let ids: Vec<TagId> = (1..=500u64).map(TagId::from).collect();
/// let mut server = MonitorServer::new(ids, 10, 0.95)?;
///
/// let challenge = server.issue_trp_challenge(&mut rng)?;
/// // ... field: reader scans tags, returns a bitstring ...
/// # let bs = tagwatch_core::trp::expected_bitstring(&server.registered_ids(), &challenge);
/// let report = server.verify_trp(challenge, &bs)?;
/// assert!(report.verdict.is_intact());
/// # Ok::<(), tagwatch_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MonitorServer {
    params: MonitorParams,
    config: ServerConfig,
    registry: BTreeMap<TagId, Counter>,
    counters_synced: bool,
    pending_resync: Option<ResyncHypothesis>,
    history: Vec<MonitorReport>,
    // Reusable mirror-simulation state: verify_utrp predicts the
    // expected round into this scratch every tick, so the hot path
    // performs no per-round allocation (buffers grow to the registry
    // size once and stay).
    scratch: RoundScratch,
}

impl MonitorServer {
    /// Creates a server monitoring `ids` with tolerance `m` and
    /// confidence `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for duplicate IDs or an
    /// invalid `(n, m, alpha)` combination (see [`MonitorParams::new`]).
    pub fn new<I: IntoIterator<Item = TagId>>(
        ids: I,
        m: u64,
        alpha: f64,
    ) -> Result<Self, CoreError> {
        Self::with_config(ids, m, alpha, ServerConfig::default())
    }

    /// [`MonitorServer::new`] with explicit timing and sizing knobs.
    ///
    /// # Errors
    ///
    /// Same as [`MonitorServer::new`].
    pub fn with_config<I: IntoIterator<Item = TagId>>(
        ids: I,
        m: u64,
        alpha: f64,
        config: ServerConfig,
    ) -> Result<Self, CoreError> {
        let mut registry = BTreeMap::new();
        for id in ids {
            if registry.insert(id, Counter::ZERO).is_some() {
                return Err(CoreError::InvalidParams {
                    reason: format!("duplicate tag id {id} in registry"),
                });
            }
        }
        let params = MonitorParams::new(registry.len() as u64, m, alpha)?;
        Ok(MonitorServer {
            params,
            config,
            registry,
            counters_synced: true,
            pending_resync: None,
            history: Vec::new(),
            scratch: RoundScratch::new(),
        })
    }

    /// The monitoring policy.
    #[must_use]
    pub fn params(&self) -> MonitorParams {
        self.params
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of registered tags.
    #[must_use]
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the registry is empty (never true for a constructed
    /// server, which requires `n ≥ 1`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// All registered IDs, ascending.
    #[must_use]
    pub fn registered_ids(&self) -> Vec<TagId> {
        self.registry.keys().copied().collect()
    }

    /// The mirrored counter for one tag.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTag`] for unregistered IDs.
    pub fn counter_of(&self, id: TagId) -> Result<Counter, CoreError> {
        self.registry
            .get(&id)
            .copied()
            .ok_or_else(|| CoreError::UnknownTag { id: id.to_string() })
    }

    /// Whether the counter mirror is trusted (see
    /// [`CoreError::CounterDesync`]).
    #[must_use]
    pub fn counters_synced(&self) -> bool {
        self.counters_synced
    }

    /// Every verification this server has performed, in order.
    #[must_use]
    pub fn history(&self) -> &[MonitorReport] {
        &self.history
    }

    /// Reports that raised an alarm.
    #[must_use]
    pub fn alarms(&self) -> Vec<&MonitorReport> {
        self.history.iter().filter(|r| r.is_alarm()).collect()
    }

    // ------------------------------------------------------------------
    // TRP
    // ------------------------------------------------------------------

    /// Issues a fresh TRP challenge: frame sized by Eq. 2, random nonce.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFeasibleFrame`] if sizing fails
    /// (practically unreachable for valid parameters).
    pub fn issue_trp_challenge<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<TrpChallenge, CoreError> {
        let f = trp_frame_size(&self.params)?;
        Ok(TrpChallenge::generate(f, rng))
    }

    /// Issues a TRP challenge with an explicit frame size (experiments
    /// sweeping `f`).
    pub fn issue_trp_challenge_with_frame<R: Rng + ?Sized>(
        &self,
        f: FrameSize,
        rng: &mut R,
    ) -> TrpChallenge {
        TrpChallenge::generate(f, rng)
    }

    /// Verifies a TRP response, consuming the challenge.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResponseShapeMismatch`] if the bitstring
    /// length disagrees with the challenge.
    pub fn verify_trp(
        &mut self,
        challenge: TrpChallenge,
        observed: &Bitstring,
    ) -> Result<MonitorReport, CoreError> {
        let ids = self.registered_ids();
        let report = trp::verify(&ids, challenge, observed)?;
        self.history.push(report.clone());
        Ok(report)
    }

    // ------------------------------------------------------------------
    // UTRP
    // ------------------------------------------------------------------

    /// Issues a fresh UTRP challenge: frame sized by Eq. 3 (plus the
    /// configured pad), a committed nonce sequence, and a deadline.
    ///
    /// # Errors
    ///
    /// * [`CoreError::CounterDesync`] — a previous UTRP round failed, so
    ///   the counter mirror cannot be trusted; call
    ///   [`MonitorServer::resync_counters`] after a physical audit.
    /// * [`CoreError::InvalidParams`] / [`CoreError::NoFeasibleFrame`] —
    ///   sizing failures.
    pub fn issue_utrp_challenge<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<UtrpChallenge, CoreError> {
        let f = utrp_frame_size(&self.params, self.config.utrp_sizing)?;
        self.issue_utrp_challenge_with_frame(f, rng)
    }

    /// Issues a UTRP challenge with an explicit frame size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CounterDesync`] when the mirror is
    /// untrusted.
    pub fn issue_utrp_challenge_with_frame<R: Rng + ?Sized>(
        &self,
        f: FrameSize,
        rng: &mut R,
    ) -> Result<UtrpChallenge, CoreError> {
        if !self.counters_synced {
            return Err(CoreError::CounterDesync);
        }
        Ok(UtrpChallenge::generate(f, &self.config.timing, rng))
    }

    /// Verifies a UTRP response, consuming the challenge.
    ///
    /// The server recomputes the expected round from its registry
    /// mirror. A response is accepted only if it arrived within the
    /// deadline *and* matches bit-for-bit; on success the counter mirror
    /// advances by the round's announcement count.
    ///
    /// A timely mismatch is first run through a bounded desync
    /// diagnosis (see [`ServerConfig::desync_window`]): if the observed
    /// bitstring is *exactly* the round an intact population would have
    /// produced under a hypothesized counter lead/lag, the verdict is
    /// [`Verdict::Desynced`] and the hypothesis is held for
    /// [`MonitorServer::resync_from_hypothesis`]. Either way the mirror
    /// is marked desynchronized — a desynced round never silently
    /// passes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResponseShapeMismatch`] for a wrong-length
    /// bitstring.
    pub fn verify_utrp(
        &mut self,
        challenge: UtrpChallenge,
        response: &UtrpResponse,
    ) -> Result<MonitorReport, CoreError> {
        // Mirror prediction runs in the server's reusable scratch.
        // (Taken out of `self` for the duration to keep the borrow
        // checker happy about the simultaneous registry iteration.)
        let mut scratch = std::mem::take(&mut self.scratch);
        let report = self.verify_utrp_with(challenge, response, &mut scratch);
        self.scratch = scratch;
        report
    }

    /// [`MonitorServer::verify_utrp`] with a caller-owned
    /// [`RoundEngine`] for the mirror prediction — the injection point
    /// that lets the pooled sharded engine serve the verify side too,
    /// so a million-tag mirror round parallelizes exactly like the
    /// field round. Verdicts are engine-independent: every engine is
    /// bit-identical by contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResponseShapeMismatch`] for a wrong-length
    /// bitstring.
    pub fn verify_utrp_with<E: RoundEngine>(
        &mut self,
        challenge: UtrpChallenge,
        response: &UtrpResponse,
        engine: &mut E,
    ) -> Result<MonitorReport, CoreError> {
        let f = challenge.frame_size().get();
        if response.bitstring.len() as u64 != f {
            return Err(CoreError::ResponseShapeMismatch {
                expected: f,
                received: response.bitstring.len() as u64,
            });
        }
        // The registry is streamed straight from the BTreeMap into the
        // engine's arrays — no intermediate Vec, no fresh bitstring.
        engine.load_pairs(self.registry.iter().map(|(&id, &ct)| (id, ct)));
        let announcements = engine.run(challenge.frame_size(), challenge.nonces())?;
        let late = !challenge.timer().accepts(response.elapsed);
        let mismatched = engine.bitstring().hamming_distance(&response.bitstring)?;

        let verdict = if late {
            // A blown deadline is the paper's collusion signal; no
            // counter hypothesis can excuse it.
            self.pending_resync = None;
            Verdict::NotIntact
        } else if mismatched == 0 {
            Verdict::Intact
        } else {
            // Diagnosis is the cold path: only now materialize the
            // registry as a Vec for the hypothesis search.
            let registry: Vec<(TagId, Counter)> =
                self.registry.iter().map(|(&id, &ct)| (id, ct)).collect();
            if let Some(hypothesis) = self.diagnose_desync(
                &registry,
                &challenge,
                engine.bitstring(),
                &response.bitstring,
            )? {
                let suspects = hypothesis.suspects();
                self.pending_resync = Some(hypothesis);
                Verdict::Desynced { suspects }
            } else {
                self.pending_resync = None;
                Verdict::NotIntact
            }
        };

        if verdict.is_intact() {
            for ct in self.registry.values_mut() {
                *ct = Counter::new(ct.get().wrapping_add(announcements));
            }
        } else {
            self.counters_synced = false;
        }

        let report = MonitorReport {
            protocol: ProtocolKind::Utrp,
            verdict,
            frame_size: f,
            mismatched_slots: mismatched,
            late,
            elapsed: Some(response.elapsed),
        };
        self.history.push(report.clone());
        Ok(report)
    }

    /// Searches the bounded hypothesis space for a counter
    /// desynchronization that explains `observed` *exactly*.
    ///
    /// Two shapes are considered, cheapest first:
    ///
    /// 1. **Uniform lead** — every tag's true counter is `d` ahead of
    ///    the mirror (the mirror missed a whole round's advance, e.g.
    ///    the reader crashed between announcing and being verified).
    /// 2. **Single lag** — one tag is `d` behind the mirror (it missed
    ///    `d` downlink announcements). Searched lag-major so the
    ///    smallest (most parsimonious) lag wins; shallow lags try every
    ///    tag, deeper lags only the tags the mirror expected in a slot
    ///    that came back empty (via [`attributed_round`]).
    ///
    /// Requiring an exact bitstring match keeps this fail-safe: a theft
    /// of more than one tag, or any reply the mirror cannot predict,
    /// leaves residual mismatches under every hypothesis and the round
    /// alarms as [`Verdict::NotIntact`].
    fn diagnose_desync(
        &self,
        registry: &[(TagId, Counter)],
        challenge: &UtrpChallenge,
        expected: &Bitstring,
        observed: &Bitstring,
    ) -> Result<Option<ResyncHypothesis>, CoreError> {
        let window = self.config.desync_window;
        if window == 0 {
            return Ok(None);
        }

        // Hypothesis 1: the whole population uniformly leads the mirror.
        for lead in 1..=window {
            let shifted: Vec<(TagId, Counter)> = registry
                .iter()
                .map(|&(id, ct)| (id, Counter::new(ct.get().wrapping_add(lead))))
                .collect();
            let round = expected_round(&shifted, challenge)?;
            if round.bitstring == *observed {
                return Ok(Some(ResyncHypothesis::UniformLead {
                    lead,
                    announcements: round.announcements,
                }));
            }
        }

        // Hypothesis 2: exactly one tag lags the mirror. Only tags the
        // mirror placed in a slot that came back empty can be lagging,
        // so attribute the expected round's slots and collect those.
        let (_, attribution) = attributed_round(registry, challenge)?;
        let mut candidates: Vec<TagId> = Vec::new();
        for slot in expected.iter_dropped_ones(observed)? {
            for &tag in &attribution[slot] {
                if !candidates.contains(&tag) {
                    candidates.push(tag);
                }
            }
        }
        // Lag-major search: the smallest lag that explains the round
        // wins. A wrong tag can collide into an exact match by chance
        // at some deep lag (the hash takes arbitrary counter values),
        // so testing every tag at lag 1 before anyone at lag 2 keeps
        // the true, parsimonious hypothesis ahead of such flukes.
        //
        // At shallow lags (<= 4) every tag is tried — a lagging tag
        // whose expected slot was shared leaves no empty slot to
        // attribute. Deeper lags only test the attributed candidates.
        const SHALLOW: u64 = 4;
        for lag in 1..=window {
            for &(tag, _) in registry {
                if lag > SHALLOW && !candidates.contains(&tag) {
                    continue;
                }
                let shifted: Vec<(TagId, Counter)> = registry
                    .iter()
                    .map(|&(id, ct)| {
                        if id == tag {
                            (id, Counter::new(ct.get().wrapping_sub(lag)))
                        } else {
                            (id, ct)
                        }
                    })
                    .collect();
                let round = expected_round(&shifted, challenge)?;
                if round.bitstring == *observed {
                    return Ok(Some(ResyncHypothesis::SingleLag {
                        tag,
                        lag,
                        announcements: round.announcements,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// The desync hypothesis held from the last [`Verdict::Desynced`]
    /// round, if any.
    #[must_use]
    pub fn pending_resync(&self) -> Option<&ResyncHypothesis> {
        self.pending_resync.as_ref()
    }

    /// Applies the pending desync hypothesis to the counter mirror and
    /// marks it synchronized, returning the suspect tags (empty for a
    /// uniform lead).
    ///
    /// This is *optimistic* recovery: the mirror is corrected to what
    /// the hypothesis says the field looks like, and the next UTRP
    /// round (with fresh nonces) confirms or refutes it. A wrong
    /// hypothesis mismatches again and re-desyncs — the set is never
    /// silently accepted as intact on the strength of a hypothesis
    /// alone.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoResyncHypothesis`] when the last round was
    /// not diagnosed as a desync (use [`MonitorServer::resync_counters`]
    /// with a physical audit instead).
    pub fn resync_from_hypothesis(&mut self) -> Result<Vec<TagId>, CoreError> {
        let hypothesis = self
            .pending_resync
            .take()
            .ok_or(CoreError::NoResyncHypothesis)?;
        let suspects = hypothesis.suspects();
        match hypothesis {
            ResyncHypothesis::UniformLead {
                lead,
                announcements,
            } => {
                // Catch the mirror up by the missed lead, then apply
                // the diagnosed round's advance that verify_utrp
                // withheld when it refused to pass the round.
                for ct in self.registry.values_mut() {
                    *ct = Counter::new(ct.get().wrapping_add(lead).wrapping_add(announcements));
                }
            }
            ResyncHypothesis::SingleLag {
                tag,
                lag,
                announcements,
            } => {
                for (&id, ct) in &mut self.registry {
                    let base = if id == tag {
                        ct.get().wrapping_sub(lag)
                    } else {
                        ct.get()
                    };
                    *ct = Counter::new(base.wrapping_add(announcements));
                }
            }
        }
        self.counters_synced = true;
        Ok(suspects)
    }

    /// Captures a durable image of the server's state (see
    /// [`crate::registry`]).
    #[must_use]
    pub fn snapshot(&self) -> crate::registry::RegistrySnapshot {
        crate::registry::RegistrySnapshot {
            tolerance: self.params.tolerance(),
            alpha: self.params.confidence(),
            counters_synced: self.counters_synced,
            entries: self.registry.iter().map(|(&id, &ct)| (id, ct)).collect(),
        }
    }

    /// Restores a server from a snapshot (verification history is not
    /// persisted; it restarts empty).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if the snapshot's policy or
    /// ID set fails validation.
    pub fn from_snapshot(
        snapshot: crate::registry::RegistrySnapshot,
        config: ServerConfig,
    ) -> Result<Self, CoreError> {
        let mut server = MonitorServer::with_config(
            snapshot.entries.iter().map(|&(id, _)| id),
            snapshot.tolerance,
            snapshot.alpha,
            config,
        )?;
        for (id, ct) in snapshot.entries {
            *server
                .registry
                .get_mut(&id)
                // lint:allow(s2-panic): every id was inserted into the registry by the with_config call directly above; the two loops iterate the same snapshot entries
                .expect("ids inserted just above") = ct;
        }
        server.counters_synced = snapshot.counters_synced;
        Ok(server)
    }

    /// Restores the counter mirror from a trusted physical audit and
    /// marks it synchronized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTag`] if the audit mentions an
    /// unregistered tag; registered tags absent from the audit keep
    /// their current mirror value.
    pub fn resync_counters<I: IntoIterator<Item = (TagId, Counter)>>(
        &mut self,
        audited: I,
    ) -> Result<(), CoreError> {
        for (id, ct) in audited {
            match self.registry.get_mut(&id) {
                Some(slot) => *slot = ct,
                None => {
                    return Err(CoreError::UnknownTag { id: id.to_string() });
                }
            }
        }
        // The audit supersedes any diagnosed hypothesis.
        self.pending_resync = None;
        self.counters_synced = true;
        Ok(())
    }
}

impl fmt::Display for MonitorServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "monitor server: {} tags, {}, {} verifications, {} alarms",
            self.registry.len(),
            self.params,
            self.history.len(),
            self.alarms().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trp::observed_bitstring;
    use crate::utrp::run_honest_reader;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TagPopulation;

    fn ids(n: u64) -> Vec<TagId> {
        (1..=n).map(TagId::from).collect()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(MonitorServer::new(ids(100), 5, 0.95).is_ok());
        assert!(MonitorServer::new(ids(5), 5, 0.95).is_err());
        let dup = vec![TagId::new(1), TagId::new(1)];
        assert!(matches!(
            MonitorServer::new(dup, 0, 0.9),
            Err(CoreError::InvalidParams { .. })
        ));
    }

    #[test]
    fn trp_round_trip_intact() {
        let mut server = MonitorServer::new(ids(300), 5, 0.95).unwrap();
        let mut r = rng(1);
        let ch = server.issue_trp_challenge(&mut r).unwrap();
        let bs = observed_bitstring(&server.registered_ids(), &ch);
        let report = server.verify_trp(ch, &bs).unwrap();
        assert!(report.verdict.is_intact());
        assert_eq!(server.history().len(), 1);
        assert!(server.alarms().is_empty());
    }

    #[test]
    fn trp_detects_theft_beyond_tolerance() {
        let mut server = MonitorServer::new(ids(300), 5, 0.95).unwrap();
        let mut detected = 0;
        let trials = 300;
        for seed in 0..trials {
            let mut r = rng(seed);
            let ch = server.issue_trp_challenge(&mut r).unwrap();
            let mut pop = TagPopulation::with_sequential_ids(300);
            pop.remove_random(6, &mut r).unwrap();
            let bs = observed_bitstring(&pop.ids(), &ch);
            let report = server.verify_trp(ch, &bs).unwrap();
            if report.is_alarm() {
                detected += 1;
            }
        }
        assert!(
            detected as f64 / trials as f64 > 0.9,
            "detected {detected}/{trials}"
        );
    }

    #[test]
    fn utrp_round_trip_intact_advances_mirror() {
        let mut server = MonitorServer::new(ids(100), 5, 0.95).unwrap();
        let mut r = rng(2);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(100);
        let response = run_honest_reader(&mut pop, &ch, &server.config().timing.clone()).unwrap();
        let report = server.verify_utrp(ch, &response).unwrap();
        assert!(report.verdict.is_intact(), "{report}");
        assert!(server.counters_synced());
        // Mirror matches the field counters exactly.
        for tag in pop.iter() {
            assert_eq!(server.counter_of(tag.id()).unwrap(), tag.counter());
        }
        assert_eq!(
            response.announcements,
            server.counter_of(TagId::new(1)).unwrap().get()
        );
    }

    #[test]
    fn consecutive_utrp_rounds_stay_synced() {
        let mut server = MonitorServer::new(ids(60), 3, 0.9).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(60);
        let timing = server.config().timing;
        for seed in 0..5u64 {
            let mut r = rng(100 + seed);
            let ch = server.issue_utrp_challenge(&mut r).unwrap();
            let response = run_honest_reader(&mut pop, &ch, &timing).unwrap();
            let report = server.verify_utrp(ch, &response).unwrap();
            assert!(report.verdict.is_intact(), "round {seed}: {report}");
        }
        assert_eq!(server.history().len(), 5);
    }

    #[test]
    fn utrp_failure_desyncs_and_blocks_until_resync() {
        let mut server = MonitorServer::new(ids(100), 5, 0.95).unwrap();
        let mut r = rng(3);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();

        // Steal 6 tags (> m): honest scan of the remainder must fail.
        let mut pop = TagPopulation::with_sequential_ids(100);
        pop.split_random(6, &mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch, &server.config().timing.clone()).unwrap();
        let report = server.verify_utrp(ch, &response).unwrap();
        assert!(report.is_alarm());
        assert!(!server.counters_synced());

        // Further UTRP challenges blocked...
        assert!(matches!(
            server.issue_utrp_challenge(&mut r),
            Err(CoreError::CounterDesync)
        ));
        // ...until a physical audit resyncs the mirror.
        server
            .resync_counters(pop.iter().map(|t| (t.id(), t.counter())))
            .unwrap();
        assert!(server.issue_utrp_challenge(&mut r).is_ok());
    }

    #[test]
    fn late_utrp_response_is_rejected() {
        let mut server = MonitorServer::new(ids(50), 3, 0.9).unwrap();
        let mut r = rng(4);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(50);
        let mut response =
            run_honest_reader(&mut pop, &ch, &server.config().timing.clone()).unwrap();
        // Correct bitstring, blown deadline.
        response.elapsed = ch.timer().deadline() + tagwatch_sim::SimDuration::from_micros(1);
        let report = server.verify_utrp(ch, &response).unwrap();
        assert!(report.is_alarm());
        assert!(report.late);
        assert_eq!(report.mismatched_slots, 0);
    }

    #[test]
    fn wrong_shape_utrp_response_errors() {
        let mut server = MonitorServer::new(ids(50), 3, 0.9).unwrap();
        let mut r = rng(5);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let response = UtrpResponse {
            bitstring: Bitstring::zeros(1),
            elapsed: tagwatch_sim::SimDuration::ZERO,
            announcements: 1,
        };
        assert!(matches!(
            server.verify_utrp(ch, &response),
            Err(CoreError::ResponseShapeMismatch { .. })
        ));
    }

    #[test]
    fn resync_rejects_unknown_tags() {
        let mut server = MonitorServer::new(ids(10), 1, 0.9).unwrap();
        let err = server
            .resync_counters([(TagId::new(999), Counter::ZERO)])
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownTag { .. }));
    }

    #[test]
    fn counter_of_unknown_tag_errors() {
        let server = MonitorServer::new(ids(10), 1, 0.9).unwrap();
        assert!(server.counter_of(TagId::new(11)).is_err());
        assert_eq!(server.counter_of(TagId::new(10)).unwrap(), Counter::ZERO);
    }

    #[test]
    fn snapshot_round_trip_preserves_counters_and_policy() {
        let mut server = MonitorServer::new(ids(40), 3, 0.9).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(40);
        let mut r = rng(31);
        // Advance state with a real round so counters are non-trivial.
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch, &server.config().timing.clone()).unwrap();
        server.verify_utrp(ch, &response).unwrap();

        let text = server.snapshot().to_text();
        let restored = MonitorServer::from_snapshot(
            crate::registry::RegistrySnapshot::from_text(&text).unwrap(),
            *server.config(),
        )
        .unwrap();
        assert_eq!(restored.params(), server.params());
        assert_eq!(restored.counters_synced(), server.counters_synced());
        for id in server.registered_ids() {
            assert_eq!(
                restored.counter_of(id).unwrap(),
                server.counter_of(id).unwrap()
            );
        }
        // The restored server verifies the field exactly like the old one.
        let ch = restored.issue_utrp_challenge(&mut r).unwrap();
        let mut restored = restored;
        let response = run_honest_reader(&mut pop, &ch, &restored.config().timing.clone()).unwrap();
        assert!(restored
            .verify_utrp(ch, &response)
            .unwrap()
            .verdict
            .is_intact());
    }

    #[test]
    fn snapshot_preserves_desync_state() {
        let mut server = MonitorServer::new(ids(30), 2, 0.9).unwrap();
        let mut r = rng(32);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let mut robbed = TagPopulation::with_sequential_ids(30);
        robbed.remove_random(3, &mut r).unwrap();
        let response =
            run_honest_reader(&mut robbed, &ch, &server.config().timing.clone()).unwrap();
        server.verify_utrp(ch, &response).unwrap();
        assert!(!server.counters_synced());

        let restored = MonitorServer::from_snapshot(server.snapshot(), *server.config()).unwrap();
        assert!(!restored.counters_synced());
        assert!(matches!(
            restored.issue_utrp_challenge(&mut r),
            Err(CoreError::CounterDesync)
        ));
    }

    #[test]
    fn display_summarizes_state() {
        let server = MonitorServer::new(ids(10), 1, 0.9).unwrap();
        let text = server.to_string();
        assert!(text.contains("10 tags"));
        assert!(text.contains("0 alarms"));
    }

    // ------------------------------------------------------------------
    // Desync diagnosis and recovery
    // ------------------------------------------------------------------

    fn wide_window_config(window: u64) -> ServerConfig {
        ServerConfig {
            desync_window: window,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn uniform_lead_after_lost_round_is_diagnosed_and_recovered() {
        let mut server =
            MonitorServer::with_config(ids(30), 2, 0.9, wide_window_config(64)).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(30);
        let timing = server.config().timing;
        let mut r = rng(41);

        // Round 0 runs in the field but its response never reaches the
        // server (reader crashed after the frame): every tag advanced,
        // the mirror did not.
        let ch0 = server.issue_utrp_challenge(&mut r).unwrap();
        let lost = run_honest_reader(&mut pop, &ch0, &timing).unwrap();
        assert!(lost.announcements > 0);

        // Round 1 mismatches, but is exactly an intact population
        // leading the mirror uniformly.
        let ch1 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch1, &timing).unwrap();
        let report = server.verify_utrp(ch1, &response).unwrap();
        assert_eq!(report.verdict, Verdict::Desynced { suspects: vec![] });
        assert!(!report.is_alarm());
        assert!(!server.counters_synced());
        assert!(matches!(
            server.pending_resync(),
            Some(ResyncHypothesis::UniformLead { lead, .. }) if *lead == lost.announcements
        ));

        // Optimistic recovery: apply the hypothesis, no suspects.
        assert_eq!(server.resync_from_hypothesis().unwrap(), vec![]);
        assert!(server.counters_synced());
        for tag in pop.iter() {
            assert_eq!(server.counter_of(tag.id()).unwrap(), tag.counter());
        }

        // The next round confirms it.
        let ch2 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch2, &timing).unwrap();
        assert!(server
            .verify_utrp(ch2, &response)
            .unwrap()
            .verdict
            .is_intact());
    }

    #[test]
    fn single_lag_after_missed_announcement_is_diagnosed_and_recovered() {
        let mut server =
            MonitorServer::with_config(ids(25), 2, 0.9, wide_window_config(8)).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(25);
        let timing = server.config().timing;
        let mut r = rng(42);

        // Round 1: pick the tag that replies in the first occupied slot
        // and script away the round's LAST announcement for it — the
        // bitstring is untouched (it already replied) but its counter
        // ends one short of everyone else's.
        let ch1 = server.issue_utrp_challenge(&mut r).unwrap();
        let registry: Vec<(TagId, Counter)> = server
            .registered_ids()
            .into_iter()
            .map(|id| (id, Counter::ZERO))
            .collect();
        let (dry, attribution) = attributed_round(&registry, &ch1).unwrap();
        let first_slot = dry.bitstring.iter_ones().next().unwrap();
        let victim = attribution[first_slot][0];
        assert!(dry.announcements >= 2, "need a re-seed after the victim");
        let plan =
            tagwatch_sim::FaultPlan::new().lose_announcement(dry.announcements - 1, [victim]);

        let response = crate::faulty::run_honest_reader_with(
            &mut pop,
            &ch1,
            &timing,
            &tagwatch_sim::Channel::ideal(),
            &plan,
            &mut r,
        )
        .unwrap();
        let report = server.verify_utrp(ch1, &response).unwrap();
        assert!(
            report.verdict.is_intact(),
            "missed announcement is invisible this round"
        );
        // ...but the mirror now silently overstates the victim by one.
        let field_victim = pop.iter().find(|t| t.id() == victim).unwrap().counter();
        assert_eq!(
            server.counter_of(victim).unwrap().get(),
            field_victim.get() + 1
        );

        // Round 2: the stale counter surfaces as a mismatch that is
        // exactly one lagging tag.
        let ch2 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch2, &timing).unwrap();
        let report = server.verify_utrp(ch2, &response).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Desynced {
                suspects: vec![victim]
            },
            "round 2: {report}"
        );
        assert!(matches!(
            server.pending_resync(),
            Some(ResyncHypothesis::SingleLag { tag, lag: 1, .. }) if *tag == victim
        ));

        // Recover and confirm.
        assert_eq!(server.resync_from_hypothesis().unwrap(), vec![victim]);
        for tag in pop.iter() {
            assert_eq!(server.counter_of(tag.id()).unwrap(), tag.counter());
        }
        let ch3 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch3, &timing).unwrap();
        assert!(server
            .verify_utrp(ch3, &response)
            .unwrap()
            .verdict
            .is_intact());
    }

    #[test]
    fn theft_is_not_misdiagnosed_as_desync() {
        let mut server =
            MonitorServer::with_config(ids(100), 5, 0.95, wide_window_config(8)).unwrap();
        let mut r = rng(43);
        let ch = server.issue_utrp_challenge(&mut r).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(100);
        pop.remove_random(6, &mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch, &server.config().timing.clone()).unwrap();
        let report = server.verify_utrp(ch, &response).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::NotIntact,
            "theft must alarm: {report}"
        );
        assert!(server.pending_resync().is_none());
        assert!(matches!(
            server.resync_from_hypothesis(),
            Err(CoreError::NoResyncHypothesis)
        ));
    }

    #[test]
    fn zero_window_disables_diagnosis() {
        let mut server =
            MonitorServer::with_config(ids(30), 2, 0.9, wide_window_config(0)).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(30);
        let timing = server.config().timing;
        let mut r = rng(44);
        let ch0 = server.issue_utrp_challenge(&mut r).unwrap();
        run_honest_reader(&mut pop, &ch0, &timing).unwrap(); // lost round
        let ch1 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch1, &timing).unwrap();
        let report = server.verify_utrp(ch1, &response).unwrap();
        assert_eq!(report.verdict, Verdict::NotIntact);
        assert!(server.pending_resync().is_none());
    }

    #[test]
    fn physical_audit_supersedes_pending_hypothesis() {
        let mut server =
            MonitorServer::with_config(ids(30), 2, 0.9, wide_window_config(64)).unwrap();
        let mut pop = TagPopulation::with_sequential_ids(30);
        let timing = server.config().timing;
        let mut r = rng(45);
        let ch0 = server.issue_utrp_challenge(&mut r).unwrap();
        run_honest_reader(&mut pop, &ch0, &timing).unwrap(); // lost round
        let ch1 = server.issue_utrp_challenge(&mut r).unwrap();
        let response = run_honest_reader(&mut pop, &ch1, &timing).unwrap();
        assert!(server
            .verify_utrp(ch1, &response)
            .unwrap()
            .verdict
            .is_desynced());
        assert!(server.pending_resync().is_some());

        server
            .resync_counters(pop.iter().map(|t| (t.id(), t.counter())))
            .unwrap();
        assert!(server.pending_resync().is_none());
        assert!(matches!(
            server.resync_from_hypothesis(),
            Err(CoreError::NoResyncHypothesis)
        ));
    }

    #[test]
    fn explicit_frame_challenge_honors_the_requested_size() {
        // `issue_trp_challenge_with_frame` exists for experiments that
        // sweep f away from Eq. 2's optimum: the challenge must carry
        // exactly the requested frame, not the sized one.
        let server = MonitorServer::new(ids(300), 5, 0.95).unwrap();
        let sized = server.issue_trp_challenge(&mut rng(7)).unwrap();
        let f = FrameSize::new(64).unwrap();
        let ch = server.issue_trp_challenge_with_frame(f, &mut rng(7));
        assert_eq!(ch.frame_size(), f);
        assert_ne!(
            ch.frame_size(),
            sized.frame_size(),
            "sweep frame accidentally equals the Eq. 2 optimum; pick another"
        );
    }
}
