//! Multi-group monitoring (paper contribution #4).
//!
//! The paper contrasts itself with generalized yoking proofs, whose
//! per-group on-chip timers make group sizes inflexible: "our technique
//! is more flexible than prior research in that we can accommodate
//! different sized groups of tags" (§1). This module makes that claim
//! concrete: a [`GroupedMonitor`] manages many named tag groups — a
//! pallet, a shelf, a truckload — each with its **own** size, tolerance
//! and confidence, each sized independently by Eq. 2, and audited in
//! one sweep.
//!
//! Tag IDs are globally unique across groups (a physical tag sits in
//! exactly one pallet), which the monitor enforces at registration.

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;

use tagwatch_sim::TagId;

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::server::{MonitorServer, ServerConfig};
use crate::trp::TrpChallenge;
use crate::verdict::MonitorReport;

/// A challenge per group, issued together as one audit sweep.
///
/// Consumed by [`GroupedMonitor::verify_audit`]; like single-group
/// challenges, an audit cannot be replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedAudit {
    challenges: BTreeMap<String, TrpChallenge>,
}

impl GroupedAudit {
    /// The challenge for one group.
    #[must_use]
    pub fn challenge(&self, group: &str) -> Option<&TrpChallenge> {
        self.challenges.get(group)
    }

    /// Group names covered by the audit, ascending.
    pub fn groups(&self) -> impl Iterator<Item = &str> {
        self.challenges.keys().map(String::as_str)
    }

    /// Total slots the audit will cost across all groups — directly
    /// comparable against one big collect-all.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.challenges.values().map(|c| c.frame_size().get()).sum()
    }
}

/// Per-group outcome of an audit.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedReport {
    /// Individual verification reports, keyed by group name. Groups the
    /// responder skipped are reported as alarms (a missing pallet is at
    /// least as bad as a missing tag).
    pub per_group: BTreeMap<String, MonitorReport>,
    /// Names of groups with no response.
    pub unanswered: Vec<String>,
}

impl GroupedReport {
    /// Whether every group verified intact.
    #[must_use]
    pub fn all_intact(&self) -> bool {
        self.unanswered.is_empty() && self.per_group.values().all(|r| !r.is_alarm())
    }

    /// Names of groups that alarmed (including unanswered ones).
    #[must_use]
    pub fn alarmed_groups(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .per_group
            .iter()
            .filter(|(_, r)| r.is_alarm())
            .map(|(k, _)| k.as_str())
            .collect();
        out.extend(self.unanswered.iter().map(String::as_str));
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A monitor over many independently-sized tag groups.
///
/// ```rust
/// use rand::SeedableRng;
/// use tagwatch_core::groups::GroupedMonitor;
/// use tagwatch_sim::TagId;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut monitor = GroupedMonitor::new();
/// // A big pallet with a loose policy, a small case with a strict one.
/// monitor.add_group("pallet-a", (1..=500u64).map(TagId::from), 10, 0.95)?;
/// monitor.add_group("case-7", (501..=520u64).map(TagId::from), 0, 0.99)?;
///
/// let audit = monitor.issue_audit(&mut rng)?;
/// assert_eq!(audit.groups().count(), 2);
/// # Ok::<(), tagwatch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroupedMonitor {
    groups: BTreeMap<String, MonitorServer>,
    owner_of: BTreeMap<TagId, String>,
    config: ServerConfig,
}

impl GroupedMonitor {
    /// Creates an empty monitor with default server configuration.
    #[must_use]
    pub fn new() -> Self {
        GroupedMonitor::default()
    }

    /// Creates an empty monitor with an explicit configuration applied
    /// to every group added later.
    #[must_use]
    pub fn with_config(config: ServerConfig) -> Self {
        GroupedMonitor {
            config,
            ..GroupedMonitor::default()
        }
    }

    /// Registers a group. Group sizes, tolerances and confidences are
    /// fully independent — the flexibility the paper claims over
    /// fixed-size yoking proofs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a duplicate group name,
    /// a tag already owned by another group, or invalid `(m, alpha)`.
    pub fn add_group<I: IntoIterator<Item = TagId>>(
        &mut self,
        name: &str,
        ids: I,
        m: u64,
        alpha: f64,
    ) -> Result<(), CoreError> {
        if self.groups.contains_key(name) {
            return Err(CoreError::InvalidParams {
                reason: format!("group `{name}` already exists"),
            });
        }
        let ids: Vec<TagId> = ids.into_iter().collect();
        for &id in &ids {
            if let Some(owner) = self.owner_of.get(&id) {
                return Err(CoreError::InvalidParams {
                    reason: format!("tag {id} already belongs to group `{owner}`"),
                });
            }
        }
        let server = MonitorServer::with_config(ids.clone(), m, alpha, self.config)?;
        for id in ids {
            self.owner_of.insert(id, name.to_owned());
        }
        self.groups.insert(name.to_owned(), server);
        Ok(())
    }

    /// Removes a group, releasing its tags. Returns whether it existed.
    pub fn remove_group(&mut self, name: &str) -> bool {
        if self.groups.remove(name).is_none() {
            return false;
        }
        self.owner_of.retain(|_, owner| owner != name);
        true
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total tags across all groups.
    #[must_use]
    pub fn total_tags(&self) -> usize {
        self.owner_of.len()
    }

    /// Shared access to one group's server.
    #[must_use]
    pub fn group(&self, name: &str) -> Option<&MonitorServer> {
        self.groups.get(name)
    }

    /// The group owning a tag.
    #[must_use]
    pub fn owner_of(&self, id: TagId) -> Option<&str> {
        self.owner_of.get(&id).map(String::as_str)
    }

    /// Group names, ascending.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(String::as_str)
    }

    /// Issues one TRP challenge per group, each frame sized by that
    /// group's own `(n, m, α)` via Eq. 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when no groups are
    /// registered, or propagates sizing failures.
    pub fn issue_audit<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<GroupedAudit, CoreError> {
        if self.groups.is_empty() {
            return Err(CoreError::InvalidParams {
                reason: "no groups registered".to_owned(),
            });
        }
        let mut challenges = BTreeMap::new();
        for (name, server) in &self.groups {
            challenges.insert(name.clone(), server.issue_trp_challenge(rng)?);
        }
        Ok(GroupedAudit { challenges })
    }

    /// Verifies a full audit: one bitstring per group. Groups without a
    /// response are alarmed as unanswered.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResponseShapeMismatch`] if any supplied
    /// bitstring disagrees with its group's frame (no partial state is
    /// recorded in that case for the offending group).
    pub fn verify_audit(
        &mut self,
        audit: GroupedAudit,
        responses: &BTreeMap<String, Bitstring>,
    ) -> Result<GroupedReport, CoreError> {
        let mut per_group = BTreeMap::new();
        let mut unanswered = Vec::new();
        for (name, challenge) in audit.challenges {
            let server = self
                .groups
                .get_mut(&name)
                .ok_or_else(|| CoreError::InvalidParams {
                    reason: format!("audit group `{name}` does not belong to this monitor"),
                })?;
            match responses.get(&name) {
                Some(bs) => {
                    let report = server.verify_trp(challenge, bs)?;
                    per_group.insert(name, report);
                }
                None => unanswered.push(name),
            }
        }
        Ok(GroupedReport {
            per_group,
            unanswered,
        })
    }
}

impl GroupedMonitor {
    /// Serializes every group to a sectioned text format (one
    /// [`crate::registry`] snapshot per group):
    ///
    /// ```text
    /// tagwatch-groups v1
    /// group pallet-a
    /// tagwatch-registry v1
    /// policy m=10 alpha=0.95
    /// …
    /// group case-7
    /// …
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("tagwatch-groups v1\n");
        for (name, server) in &self.groups {
            out.push_str("group ");
            out.push_str(name);
            out.push('\n');
            out.push_str(&server.snapshot().to_text());
        }
        out
    }

    /// Restores a grouped monitor from [`GroupedMonitor::to_text`]
    /// output, applying `config` to every group.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParseSnapshot`] for format violations
    /// (wrong magic, group names containing whitespace, duplicate
    /// groups or cross-group tag ownership conflicts surface as
    /// [`CoreError::InvalidParams`]).
    pub fn from_text(text: &str, config: ServerConfig) -> Result<Self, CoreError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("tagwatch-groups v1") {
            return Err(CoreError::ParseSnapshot {
                line: 1,
                reason: "bad magic line (expected `tagwatch-groups v1`)".to_owned(),
            });
        }
        let mut monitor = GroupedMonitor::with_config(config);
        let mut current: Option<(String, String)> = None;

        let flush = |monitor: &mut GroupedMonitor,
                     section: Option<(String, String)>|
         -> Result<(), CoreError> {
            let Some((name, body)) = section else {
                return Ok(());
            };
            let snapshot = crate::registry::RegistrySnapshot::from_text(&body)?;
            let server = MonitorServer::from_snapshot(snapshot, config)?;
            // Route through add_group for name/ownership validation,
            // then restore counters and the sync flag by replacing the
            // freshly-built server.
            monitor.add_group(
                &name,
                server.registered_ids(),
                server.params().tolerance(),
                server.params().confidence(),
            )?;
            monitor.groups.insert(name, server);
            Ok(())
        };

        for raw in lines {
            if let Some(name) = raw.strip_prefix("group ") {
                let name = name.trim();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    return Err(CoreError::ParseSnapshot {
                        line: 0,
                        reason: format!("bad group name `{name}`"),
                    });
                }
                flush(&mut monitor, current.take())?;
                current = Some((name.to_owned(), String::new()));
            } else if let Some((_, body)) = current.as_mut() {
                body.push_str(raw);
                body.push('\n');
            } else if !raw.trim().is_empty() {
                return Err(CoreError::ParseSnapshot {
                    line: 0,
                    reason: "content before the first group section".to_owned(),
                });
            }
        }
        flush(&mut monitor, current.take())?;
        Ok(monitor)
    }
}

impl fmt::Display for GroupedMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grouped monitor: {} groups, {} tags",
            self.groups.len(),
            self.owner_of.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trp::observed_bitstring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TagPopulation;

    fn ids(range: std::ops::RangeInclusive<u64>) -> Vec<TagId> {
        range.map(TagId::from).collect()
    }

    fn monitor_with_two_groups() -> GroupedMonitor {
        let mut m = GroupedMonitor::new();
        m.add_group("pallet", ids(1..=300), 5, 0.95).unwrap();
        m.add_group("case", ids(301..=320), 0, 0.99).unwrap();
        m
    }

    #[test]
    fn groups_of_different_sizes_coexist() {
        let m = monitor_with_two_groups();
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_tags(), 320);
        assert_eq!(m.group("pallet").unwrap().len(), 300);
        assert_eq!(m.group("case").unwrap().len(), 20);
        assert_eq!(m.owner_of(TagId::new(301)), Some("case"));
        assert_eq!(m.owner_of(TagId::new(999)), None);
    }

    #[test]
    fn group_names_iterate_in_ascending_order() {
        let m = monitor_with_two_groups();
        let names: Vec<&str> = m.group_names().collect();
        // BTreeMap-backed: deterministic ascending order, so exports
        // that walk groups never depend on registration order.
        assert_eq!(names, ["case", "pallet"]);
    }

    #[test]
    fn duplicate_names_and_shared_tags_are_rejected() {
        let mut m = monitor_with_two_groups();
        assert!(m.add_group("pallet", ids(400..=410), 1, 0.9).is_err());
        // Tag 300 already owned by "pallet".
        assert!(m.add_group("other", ids(300..=305), 1, 0.9).is_err());
        assert_eq!(m.len(), 2, "failed registrations must not half-apply");
    }

    #[test]
    fn frames_are_sized_per_group_policy() {
        let m = monitor_with_two_groups();
        let mut rng = StdRng::seed_from_u64(1);
        let audit = m.issue_audit(&mut rng).unwrap();
        let pallet_f = audit.challenge("pallet").unwrap().frame_size().get();
        let case_f = audit.challenge("case").unwrap().frame_size().get();
        // Strictness dominates size: the 20-tag case at (m=0, α=0.99)
        // needs a *larger* frame than the 300-tag pallet at (m=5,
        // α=0.95) — detecting a single missing tag requires its slot to
        // be empty of all peers, i.e. f ≈ (n−1)/ln(1/α). The per-group
        // sizing must reflect each policy, not the group size.
        assert!(case_f > pallet_f, "{case_f} vs {pallet_f}");
        assert_eq!(audit.total_slots(), pallet_f + case_f);

        // Same tag count, looser policy → smaller frame.
        let mut relaxed = GroupedMonitor::new();
        relaxed.add_group("case", ids(301..=320), 2, 0.9).unwrap();
        let audit2 = relaxed.issue_audit(&mut rng).unwrap();
        let relaxed_f = audit2.challenge("case").unwrap().frame_size().get();
        assert!(relaxed_f < case_f, "{relaxed_f} vs {case_f}");
    }

    #[test]
    fn intact_audit_passes_all_groups() {
        let mut m = monitor_with_two_groups();
        let mut rng = StdRng::seed_from_u64(2);
        let audit = m.issue_audit(&mut rng).unwrap();

        let mut responses = BTreeMap::new();
        for name in ["pallet", "case"] {
            let ch = audit.challenge(name).unwrap();
            let group_ids = m.group(name).unwrap().registered_ids();
            responses.insert(name.to_owned(), observed_bitstring(&group_ids, ch));
        }
        let report = m.verify_audit(audit, &responses).unwrap();
        assert!(report.all_intact());
        assert!(report.alarmed_groups().is_empty());
    }

    #[test]
    fn theft_localizes_to_the_right_group() {
        let mut m = monitor_with_two_groups();
        let mut rng = StdRng::seed_from_u64(3);
        let audit = m.issue_audit(&mut rng).unwrap();

        // The case (m = 0) loses one tag; the pallet is intact.
        let mut case_floor = TagPopulation::from_ids(ids(301..=320)).unwrap();
        case_floor.remove_random(1, &mut rng).unwrap();

        let mut responses = BTreeMap::new();
        responses.insert(
            "pallet".to_owned(),
            observed_bitstring(
                &m.group("pallet").unwrap().registered_ids(),
                audit.challenge("pallet").unwrap(),
            ),
        );
        responses.insert(
            "case".to_owned(),
            observed_bitstring(&case_floor.ids(), audit.challenge("case").unwrap()),
        );
        let report = m.verify_audit(audit, &responses).unwrap();
        // m = 0 and a 20-tag group with a 0.99-sized frame: detection is
        // near-certain; the pallet must stay quiet.
        assert_eq!(report.alarmed_groups(), vec!["case"]);
        assert!(!report.per_group["pallet"].is_alarm());
    }

    #[test]
    fn unanswered_groups_alarm() {
        let mut m = monitor_with_two_groups();
        let mut rng = StdRng::seed_from_u64(4);
        let audit = m.issue_audit(&mut rng).unwrap();
        let mut responses = BTreeMap::new();
        responses.insert(
            "pallet".to_owned(),
            observed_bitstring(
                &m.group("pallet").unwrap().registered_ids(),
                audit.challenge("pallet").unwrap(),
            ),
        );
        // "case" never responds.
        let report = m.verify_audit(audit, &responses).unwrap();
        assert!(!report.all_intact());
        assert_eq!(report.unanswered, vec!["case".to_owned()]);
        assert_eq!(report.alarmed_groups(), vec!["case"]);
    }

    #[test]
    fn removing_a_group_releases_its_tags() {
        let mut m = monitor_with_two_groups();
        assert!(m.remove_group("case"));
        assert!(!m.remove_group("case"));
        assert_eq!(m.total_tags(), 300);
        // The freed tags can join a new group.
        m.add_group("case-v2", ids(301..=320), 1, 0.9).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_monitor_cannot_audit() {
        let m = GroupedMonitor::new();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(m.issue_audit(&mut rng).is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn grouped_text_round_trip_preserves_everything() {
        let mut m = monitor_with_two_groups();
        // Advance some state: a UTRP round on the small group so its
        // counters are non-zero.
        let mut rng = StdRng::seed_from_u64(9);
        let ch = m
            .group("case")
            .unwrap()
            .issue_utrp_challenge(&mut rng)
            .unwrap();
        let mut floor = TagPopulation::from_ids(ids(301..=320)).unwrap();
        let timing = m.group("case").unwrap().config().timing;
        let response = crate::utrp::run_honest_reader(&mut floor, &ch, &timing).unwrap();
        m.groups
            .get_mut("case")
            .unwrap()
            .verify_utrp(ch, &response)
            .unwrap();

        let text = m.to_text();
        let restored =
            GroupedMonitor::from_text(&text, crate::server::ServerConfig::default()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.total_tags(), 320);
        for name in ["pallet", "case"] {
            let a = m.group(name).unwrap();
            let b = restored.group(name).unwrap();
            assert_eq!(a.params(), b.params(), "{name}");
            assert_eq!(a.counters_synced(), b.counters_synced(), "{name}");
            for id in a.registered_ids() {
                assert_eq!(
                    a.counter_of(id).unwrap(),
                    b.counter_of(id).unwrap(),
                    "{name}/{id}"
                );
            }
        }
        assert_eq!(restored.owner_of(TagId::new(301)), Some("case"));
    }

    #[test]
    fn grouped_text_rejects_malformed_input() {
        let cfg = crate::server::ServerConfig::default();
        assert!(GroupedMonitor::from_text("", cfg).is_err());
        assert!(GroupedMonitor::from_text("wrong magic", cfg).is_err());
        assert!(
            GroupedMonitor::from_text("tagwatch-groups v1\ntag before any group", cfg).is_err()
        );
        assert!(GroupedMonitor::from_text("tagwatch-groups v1\ngroup bad name\n", cfg).is_err());
        // Duplicate group names.
        let dup = "tagwatch-groups v1\n\
             group a\ntagwatch-registry v1\npolicy m=0 alpha=0.9\ntag 01 0\n\
             group a\ntagwatch-registry v1\npolicy m=0 alpha=0.9\ntag 02 0\n";
        assert!(GroupedMonitor::from_text(dup, cfg).is_err());
    }

    #[test]
    fn empty_grouped_monitor_round_trips() {
        let m = GroupedMonitor::new();
        let restored =
            GroupedMonitor::from_text(&m.to_text(), crate::server::ServerConfig::default())
                .unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn display_counts_groups_and_tags() {
        let m = monitor_with_two_groups();
        let text = m.to_string();
        assert!(text.contains("2 groups"));
        assert!(text.contains("320 tags"));
    }
}
