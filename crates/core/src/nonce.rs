//! Pre-committed nonce sequences for UTRP.
//!
//! In UTRP the server issues the frame size together with `f` random
//! numbers, `(f, r₁, …, r_f)` (Alg. 5 line 1). The reader must consume
//! them *in order*, one per re-seed; since every re-seed is triggered by
//! a reply slot and a frame has `f` slots, `f` nonces always suffice.
//! Because the sequence is fixed by the server in advance, a dishonest
//! reader cannot steer the re-randomization — it can only follow the
//! script or return a wrong bitstring.

use rand::Rng;

use tagwatch_sim::{FrameSize, Nonce};

use crate::error::CoreError;

/// An ordered, server-chosen sequence of nonces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NonceSequence {
    nonces: Vec<Nonce>,
}

impl NonceSequence {
    /// Draws a sequence of `len` nonces from `rng`.
    pub fn generate<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        NonceSequence {
            nonces: (0..len).map(|_| Nonce::new(rng.gen())).collect(),
        }
    }

    /// A sequence sized for one UTRP round over frame `f` (one nonce per
    /// potential re-seed plus the initial announcement).
    pub fn for_frame<R: Rng + ?Sized>(f: FrameSize, rng: &mut R) -> Self {
        NonceSequence::generate(f.as_usize(), rng)
    }

    /// Builds a sequence from explicit nonces (tests, replay analysis).
    #[must_use]
    pub fn from_nonces(nonces: Vec<Nonce>) -> Self {
        NonceSequence { nonces }
    }

    /// Number of nonces in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nonces.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nonces.is_empty()
    }

    /// The `k`-th nonce (0-based), if present.
    #[must_use]
    pub fn get(&self, k: usize) -> Option<Nonce> {
        self.nonces.get(k).copied()
    }

    /// Iterates over the nonces in order.
    pub fn iter(&self) -> impl Iterator<Item = Nonce> + '_ {
        self.nonces.iter().copied()
    }

    /// An in-order consumer over this sequence.
    #[must_use]
    pub fn cursor(&self) -> NonceCursor<'_> {
        NonceCursor {
            sequence: self,
            next: 0,
        }
    }
}

/// An in-order consumer over a [`NonceSequence`].
///
/// Protocol code takes nonces only through a cursor, which makes
/// "use each random number only once, in the given order" (paper §5.3)
/// a structural property rather than a convention.
#[derive(Debug, Clone)]
pub struct NonceCursor<'a> {
    sequence: &'a NonceSequence,
    next: usize,
}

impl NonceCursor<'_> {
    /// Takes the next nonce in order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonceSequenceExhausted`] when the sequence
    /// has run out — which a protocol-following reader can never hit.
    pub fn next_nonce(&mut self) -> Result<Nonce, CoreError> {
        let nonce = self
            .sequence
            .get(self.next)
            .ok_or(CoreError::NonceSequenceExhausted)?;
        self.next += 1;
        Ok(nonce)
    }

    /// How many nonces have been consumed.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// How many nonces remain.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.sequence.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_produces_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = NonceSequence::generate(10, &mut rng);
        assert_eq!(seq.len(), 10);
        assert!(!seq.is_empty());
    }

    #[test]
    fn for_frame_sizes_one_nonce_per_slot() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FrameSize::new(37).unwrap();
        assert_eq!(NonceSequence::for_frame(f, &mut rng).len(), 37);
    }

    #[test]
    fn generation_is_seed_reproducible() {
        let a = NonceSequence::generate(8, &mut StdRng::seed_from_u64(7));
        let b = NonceSequence::generate(8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = NonceSequence::generate(8, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn nonces_are_distinct_with_overwhelming_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq = NonceSequence::generate(1000, &mut rng);
        let distinct: std::collections::HashSet<_> = seq.iter().collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn cursor_consumes_in_order() {
        let seq = NonceSequence::from_nonces(vec![Nonce::new(5), Nonce::new(9)]);
        let mut cur = seq.cursor();
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.next_nonce().unwrap(), Nonce::new(5));
        assert_eq!(cur.next_nonce().unwrap(), Nonce::new(9));
        assert_eq!(cur.consumed(), 2);
        assert_eq!(
            cur.next_nonce().unwrap_err(),
            CoreError::NonceSequenceExhausted
        );
    }

    #[test]
    fn independent_cursors_do_not_interfere() {
        let seq = NonceSequence::from_nonces(vec![Nonce::new(1), Nonce::new(2)]);
        let mut a = seq.cursor();
        let mut b = seq.cursor();
        assert_eq!(a.next_nonce().unwrap(), Nonce::new(1));
        assert_eq!(b.next_nonce().unwrap(), Nonce::new(1));
    }

    #[test]
    fn get_is_bounds_checked() {
        let seq = NonceSequence::from_nonces(vec![Nonce::new(1)]);
        assert_eq!(seq.get(0), Some(Nonce::new(1)));
        assert_eq!(seq.get(1), None);
    }
}
