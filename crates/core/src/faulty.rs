//! Fault-aware UTRP round execution.
//!
//! The executors in [`crate::utrp`] assume the paper's ideal model:
//! every tag hears every announcement, every reply reaches the reader,
//! and the reader survives the whole frame. This module runs the same
//! round under a lossy channel ([`Channel`]) and/or a scripted
//! [`FaultPlan`], covering the failure modes a deployment faces:
//!
//! * **uplink reply loss** (probabilistic per reply, or scripted per
//!   slot) — the tags transmitted and stay silent afterwards, but the
//!   reader neither records the bit nor re-seeds;
//! * **downlink announcement loss** (probabilistic per tag, or
//!   scripted) — the tag's counter stops advancing and it keeps the
//!   reply slot from the last announcement it heard: the canonical
//!   counter-desynchronization source;
//! * **phantom replies** — interference reads as an occupied slot,
//!   triggering a spurious re-seed every real tag still counts;
//! * **reader crash** — announcements and listening stop mid-frame;
//! * **response truncation** and **clock skew** — transport-level
//!   corruption of what the server receives.
//!
//! With an ideal channel and an empty plan, every executor here
//! delegates to its fault-free counterpart, so the outputs are
//! byte-identical and the caller's RNG is never consumed — the
//! three-implementation agreement tests in [`crate::utrp`] hold
//! unchanged.

use rand::Rng;

use tagwatch_sim::hash::slot_for_counted;
use tagwatch_sim::tag::{SlotMode, TagReply};
use tagwatch_sim::{
    Channel, Counter, FaultInjector, FaultPlan, FrameSize, TagId, TagPopulation, TimingModel,
};

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::nonce::NonceSequence;
use crate::utrp::{
    round_duration, run_device_round, run_honest_reader, simulate_round, RoundOutcome,
    UtrpParticipant, UtrpResponse,
};

/// Whether the combination of channel and plan can alter anything.
fn is_faultless(channel: &Channel, plan: &FaultPlan) -> bool {
    channel.is_ideal() && plan.is_empty()
}

/// Runs one UTRP round over `participants` under `channel` and `plan`,
/// advancing each participant's counter by the announcements *it
/// actually heard* (faults make counters diverge per tag, unlike the
/// uniform advance of [`simulate_round`]).
///
/// With an ideal channel and empty plan this delegates to
/// [`simulate_round`] (byte-identical result, no RNG consumption).
///
/// The returned [`RoundOutcome`]'s `announcements` counts what the
/// *reader* broadcast; individual tags may have heard fewer.
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] if the sequence is too
/// short, and propagates invalid fault-plan/channel scalars as
/// [`CoreError::InvalidParams`].
pub fn simulate_round_with<R: Rng + ?Sized>(
    participants: &mut [UtrpParticipant],
    f: FrameSize,
    nonces: &NonceSequence,
    channel: &Channel,
    plan: &FaultPlan,
    rng: &mut R,
) -> Result<RoundOutcome, CoreError> {
    if is_faultless(channel, plan) {
        return simulate_round(participants, f, nonces);
    }
    plan.validate().map_err(|e| CoreError::InvalidParams {
        reason: format!("invalid fault plan: {e}"),
    })?;

    let total = f.get();
    let downlink_loss = channel.config().downlink_loss_prob;
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut cursor = nonces.cursor();
    let mut injector = FaultInjector::new(plan);

    let mut replied = vec![false; participants.len()];
    // Absolute slot each tag will transmit in, per its *own* view of the
    // frame (None until it hears an announcement).
    let mut scheduled: Vec<Option<u64>> = vec![None; participants.len()];

    // Broadcast (f_sub, r) as announcement `idx`: each tag that hears it
    // advances its counter and recomputes its reply slot relative to
    // `subframe_start`; tags that miss it keep their stale counter AND
    // their stale absolute slot.
    let mut announce = |participants: &mut [UtrpParticipant],
                        replied: &[bool],
                        scheduled: &mut [Option<u64>],
                        injector: &mut FaultInjector<'_>,
                        f_sub: FrameSize,
                        subframe_start: u64,
                        rng: &mut R|
     -> Result<(), CoreError> {
        let r = cursor.next_nonce()?;
        let idx = injector.next_announcement();
        for (i, p) in participants.iter_mut().enumerate() {
            let hears =
                injector.hears(idx, p.id) && !(downlink_loss > 0.0 && rng.gen_bool(downlink_loss));
            if !hears {
                continue;
            }
            p.counter.increment();
            if !replied[i] && !p.mute {
                let rel = slot_for_counted(p.id, r, p.counter, f_sub);
                scheduled[i] = Some(subframe_start + rel);
            }
        }
        Ok(())
    };

    let mut subframe_start = 0u64;
    announce(
        participants,
        &replied,
        &mut scheduled,
        &mut injector,
        f,
        subframe_start,
        rng,
    )?;

    let mut transmissions: Vec<TagReply> = Vec::new();
    for global in 0..total {
        transmissions.clear();
        for (i, p) in participants.iter().enumerate() {
            if replied[i] || p.mute || scheduled[i] != Some(global) {
                continue;
            }
            // The tag transmits and considers itself done, whether or
            // not the reader hears it.
            replied[i] = true;
            transmissions.push(TagReply::Presence { bits: 0 });
        }
        if plan.reply_lost_at(global) {
            transmissions.clear();
        }
        let occupied = if channel.is_ideal() {
            !transmissions.is_empty()
        } else {
            channel.resolve_slot(&transmissions, rng).is_occupied()
        };

        if occupied {
            bs.set(global as usize, true)?;
        }
        if injector.crashed_after(global) {
            // Reader dies: no further announcements or listening. Bits
            // past this point stay 0; tags freeze at current counters.
            break;
        }
        if occupied {
            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            announce(
                participants,
                &replied,
                &mut scheduled,
                &mut injector,
                f_sub,
                subframe_start,
                rng,
            )?;
        }
    }

    Ok(RoundOutcome {
        bitstring: bs,
        announcements: injector.announcements(),
    })
}

/// Shapes a raw round outcome into the response the server receives:
/// truncates the bitstring and skews the elapsed clock as scripted.
fn shape_response(outcome: RoundOutcome, timing: &TimingModel, plan: &FaultPlan) -> UtrpResponse {
    let elapsed = plan.skewed(round_duration(timing, &outcome));
    let bitstring = match plan.truncation() {
        Some(len) if (len as usize) < outcome.bitstring.len() => {
            Bitstring::from_bools(&outcome.bitstring.to_bools()[..len as usize])
        }
        _ => outcome.bitstring,
    };
    UtrpResponse {
        bitstring,
        elapsed,
        announcements: outcome.announcements,
    }
}

/// [`run_honest_reader`] under a lossy channel and scripted faults:
/// runs the round via [`simulate_round_with`], advances each field
/// tag's counter by the announcements it actually heard, and applies
/// response-level faults (truncation, clock skew) to what the server
/// will see.
///
/// # Errors
///
/// Propagates [`simulate_round_with`] errors.
pub fn run_honest_reader_with<R: Rng + ?Sized>(
    population: &mut TagPopulation,
    challenge: &crate::utrp::UtrpChallenge,
    timing: &TimingModel,
    channel: &Channel,
    plan: &FaultPlan,
    rng: &mut R,
) -> Result<UtrpResponse, CoreError> {
    if is_faultless(channel, plan) {
        return run_honest_reader(population, challenge, timing);
    }
    let mut participants: Vec<UtrpParticipant> = population
        .iter()
        .map(|t| UtrpParticipant {
            id: t.id(),
            counter: t.counter(),
            mute: t.is_detuned(),
        })
        .collect();
    let before: Vec<Counter> = participants.iter().map(|p| p.counter).collect();
    let outcome = simulate_round_with(
        &mut participants,
        challenge.frame_size(),
        challenge.nonces(),
        channel,
        plan,
        rng,
    )?;
    for ((tag, part), before) in population.iter_mut().zip(&participants).zip(&before) {
        tag.advance_counter(part.counter.get().wrapping_sub(before.get()));
    }
    Ok(shape_response(outcome, timing, plan))
}

/// [`run_device_round`] under a lossy channel and scripted faults —
/// drives the actual [`tagwatch_sim::Tag`] state machines, skipping
/// `on_frame` for tags that miss an announcement. Because a stale tag's
/// pending slot is relative to the *last announcement it heard*, the
/// loop tracks a per-tag subframe base to poll each device in its own
/// frame of reference.
///
/// Under the same seed this agrees exactly with
/// [`simulate_round_with`]; the fault-path triangle test asserts it.
///
/// # Errors
///
/// Propagates [`CoreError::NonceSequenceExhausted`] on a malformed
/// challenge.
pub fn run_device_round_with<R: Rng + ?Sized>(
    population: &mut TagPopulation,
    challenge: &crate::utrp::UtrpChallenge,
    timing: &TimingModel,
    channel: &Channel,
    plan: &FaultPlan,
    rng: &mut R,
) -> Result<UtrpResponse, CoreError> {
    if is_faultless(channel, plan) {
        return run_device_round(population, challenge, timing);
    }
    plan.validate().map_err(|e| CoreError::InvalidParams {
        reason: format!("invalid fault plan: {e}"),
    })?;

    let f = challenge.frame_size();
    let total = f.get();
    let downlink_loss = channel.config().downlink_loss_prob;
    let mut cursor = challenge.nonces().cursor();
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut injector = FaultInjector::new(plan);
    let mut replied: std::collections::BTreeSet<TagId> = std::collections::BTreeSet::new();
    // Subframe start at each tag's last heard announcement: its pending
    // slot is relative to this base.
    let mut base: std::collections::BTreeMap<TagId, u64> = std::collections::BTreeMap::new();

    let mut announce = |population: &mut TagPopulation,
                        injector: &mut FaultInjector<'_>,
                        base: &mut std::collections::BTreeMap<TagId, u64>,
                        f_sub: FrameSize,
                        subframe_start: u64,
                        rng: &mut R|
     -> Result<(), CoreError> {
        let r = cursor.next_nonce()?;
        let idx = injector.next_announcement();
        for tag in population.iter_mut() {
            let hears = injector.hears(idx, tag.id())
                && !(downlink_loss > 0.0 && rng.gen_bool(downlink_loss));
            if !hears {
                continue;
            }
            tag.on_frame(f_sub, r, SlotMode::Counted);
            base.insert(tag.id(), subframe_start);
        }
        Ok(())
    };

    let mut subframe_start = 0u64;
    announce(population, &mut injector, &mut base, f, subframe_start, rng)?;

    let mut transmissions: Vec<TagReply> = Vec::new();
    for global in 0..total {
        transmissions.clear();
        for tag in population.iter_mut() {
            if replied.contains(&tag.id()) || tag.is_detuned() {
                continue;
            }
            let Some(rel) = base.get(&tag.id()).map(|&b| global - b) else {
                continue; // never heard an announcement; stays silent
            };
            if tag.on_slot(rel, false).is_some() {
                replied.insert(tag.id());
                transmissions.push(TagReply::Presence { bits: 0 });
            }
        }
        if plan.reply_lost_at(global) {
            transmissions.clear();
        }
        let occupied = if channel.is_ideal() {
            !transmissions.is_empty()
        } else {
            channel.resolve_slot(&transmissions, rng).is_occupied()
        };

        if occupied {
            bs.set(global as usize, true)?;
        }
        if injector.crashed_after(global) {
            break;
        }
        if occupied {
            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            announce(
                population,
                &mut injector,
                &mut base,
                f_sub,
                subframe_start,
                rng,
            )?;
        }
    }

    let outcome = RoundOutcome {
        bitstring: bs,
        announcements: injector.announcements(),
    };
    Ok(shape_response(outcome, timing, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utrp::{simulate_round_reference, UtrpChallenge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::ChannelConfig;

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn participants(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
            .collect()
    }

    #[test]
    fn faultless_path_is_byte_identical_and_rng_free() {
        // With all knobs at zero the fault-aware executor must agree
        // with BOTH fault-free engines exactly and never touch the RNG.
        for (n, f_raw, seed) in [(10u64, 32u64, 1u64), (60, 200, 2), (120, 90, 3)] {
            let ch = challenge(f_raw, seed);
            let mut plain = participants(n);
            let mut reference = plain.clone();
            let mut faulty = plain.clone();
            let a = simulate_round(&mut plain, ch.frame_size(), ch.nonces()).unwrap();
            let b = simulate_round_reference(&mut reference, ch.frame_size(), ch.nonces()).unwrap();
            let mut rng = StdRng::seed_from_u64(999);
            let c = simulate_round_with(
                &mut faulty,
                ch.frame_size(),
                ch.nonces(),
                &Channel::ideal(),
                &FaultPlan::new(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(plain, faulty);
            use rand::Rng as _;
            let mut fresh = StdRng::seed_from_u64(999);
            assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>(), "RNG was consumed");
        }
    }

    #[test]
    fn device_and_participant_fault_paths_agree() {
        // The fault-path triangle: under the same seed, scripted faults
        // and a lossy channel produce identical bitstrings,
        // announcement counts, and per-tag counters in both engines.
        for (n, f_raw, seed) in [(20usize, 64u64, 5u64), (50, 150, 6)] {
            let ch = challenge(f_raw, seed);
            let plan = FaultPlan::new()
                .lose_replies_at(3)
                .lose_announcement(1, [TagId::new(4), TagId::new(9)])
                .lose_announcement(2, [TagId::new(4)]);
            let channel = Channel::with_config(ChannelConfig {
                downlink_loss_prob: 0.05,
                ..ChannelConfig::default()
            })
            .unwrap();

            let mut pop = TagPopulation::with_sequential_ids(n);
            let mut parts: Vec<UtrpParticipant> = pop
                .iter()
                .map(|t| UtrpParticipant {
                    id: t.id(),
                    counter: t.counter(),
                    mute: t.is_detuned(),
                })
                .collect();

            let mut rng_dev = StdRng::seed_from_u64(seed ^ 0xdead);
            let device = run_device_round_with(
                &mut pop,
                &ch,
                &TimingModel::gen2(),
                &channel,
                &plan,
                &mut rng_dev,
            )
            .unwrap();

            let mut rng_part = StdRng::seed_from_u64(seed ^ 0xdead);
            let part = simulate_round_with(
                &mut parts,
                ch.frame_size(),
                ch.nonces(),
                &channel,
                &plan,
                &mut rng_part,
            )
            .unwrap();

            assert_eq!(device.bitstring, part.bitstring, "n={n} f={f_raw}");
            assert_eq!(device.announcements, part.announcements);
            for (tag, p) in pop.iter().zip(parts.iter()) {
                assert_eq!(tag.counter(), p.counter, "counter of {}", tag.id());
            }
        }
    }

    #[test]
    fn scripted_reply_loss_clears_the_slot_and_silences_the_tags() {
        // Blacking out the first occupied slot: the reader records
        // nothing there and never re-seeds for it, and the transmitting
        // tags stay silent for the rest of the round.
        let ch = challenge(64, 7);
        let mut baseline = participants(12);
        let base_out = simulate_round(&mut baseline, ch.frame_size(), ch.nonces()).unwrap();
        let first = base_out.bitstring.iter_ones().next().unwrap() as u64;

        let plan = FaultPlan::new().lose_replies_at(first);
        let mut parts = participants(12);
        let mut rng = StdRng::seed_from_u64(0);
        let out = simulate_round_with(
            &mut parts,
            ch.frame_size(),
            ch.nonces(),
            &Channel::ideal(),
            &plan,
            &mut rng,
        )
        .unwrap();
        assert!(!out.bitstring.get(first as usize).unwrap());
        // At least one tag transmitted into the void and stays silent,
        // so the round records at most n - 1 occupied slots.
        assert!(out.bitstring.count_ones() <= 11);
    }

    #[test]
    fn missed_announcement_freezes_the_counter() {
        let ch = challenge(64, 8);
        let victim = TagId::new(3);
        // Victim misses every announcement: counter never advances.
        let plan = (0..64).fold(FaultPlan::new(), |p, a| p.lose_announcement(a, [victim]));
        let mut parts = participants(10);
        let mut rng = StdRng::seed_from_u64(0);
        let out = simulate_round_with(
            &mut parts,
            ch.frame_size(),
            ch.nonces(),
            &Channel::ideal(),
            &plan,
            &mut rng,
        )
        .unwrap();
        for p in &parts {
            if p.id == victim {
                assert_eq!(p.counter, Counter::ZERO);
            } else {
                assert_eq!(p.counter.get(), out.announcements);
            }
        }
        // The victim never heard announcement 0, so it never replied.
        assert!(out.bitstring.count_ones() < 10);
    }

    #[test]
    fn reader_crash_freezes_the_frame() {
        let ch = challenge(128, 9);
        let crash_at = 20u64;
        let plan = FaultPlan::new().crash_after_slot(crash_at);
        let mut parts = participants(40);
        let mut rng = StdRng::seed_from_u64(0);
        let out = simulate_round_with(
            &mut parts,
            ch.frame_size(),
            ch.nonces(),
            &Channel::ideal(),
            &plan,
            &mut rng,
        )
        .unwrap();
        // Bitstring keeps frame length but is empty past the crash.
        assert_eq!(out.bitstring.len(), 128);
        for slot in (crash_at as usize + 1)..128 {
            assert!(
                !out.bitstring.get(slot).unwrap(),
                "bit {slot} set after crash"
            );
        }
        // Tags froze at the announcements broadcast before the crash.
        assert!(parts.iter().all(|p| p.counter.get() == out.announcements));
        assert!(out.announcements < 40);
    }

    #[test]
    fn truncation_and_skew_shape_the_response() {
        let ch = challenge(64, 10);
        let plan = FaultPlan::new().truncate_response(10).skew_clock(3.0);
        let mut pop = TagPopulation::with_sequential_ids(10);
        let mut rng = StdRng::seed_from_u64(0);
        let timing = TimingModel::gen2();
        let faulty =
            run_honest_reader_with(&mut pop, &ch, &timing, &Channel::ideal(), &plan, &mut rng)
                .unwrap();
        assert_eq!(faulty.bitstring.len(), 10);

        let mut clean_pop = TagPopulation::with_sequential_ids(10);
        let clean = run_honest_reader(&mut clean_pop, &ch, &timing).unwrap();
        assert_eq!(faulty.elapsed.as_micros(), clean.elapsed.as_micros() * 3);
    }

    #[test]
    fn downlink_loss_desynchronizes_some_counters() {
        let ch = challenge(256, 11);
        let channel = Channel::with_config(ChannelConfig {
            downlink_loss_prob: 0.2,
            ..ChannelConfig::default()
        })
        .unwrap();
        let mut parts = participants(50);
        let mut rng = StdRng::seed_from_u64(21);
        let out = simulate_round_with(
            &mut parts,
            ch.frame_size(),
            ch.nonces(),
            &channel,
            &FaultPlan::new(),
            &mut rng,
        )
        .unwrap();
        // With 20% downlink loss and dozens of announcements, some tag
        // must have missed at least one.
        assert!(out.announcements > 5);
        assert!(
            parts.iter().any(|p| p.counter.get() < out.announcements),
            "no counter fell behind"
        );
    }
}
