//! State snapshot traits: the capture/restore vocabulary the durable
//! layer (`tagwatch-store` + `analytics::durable`) builds on.
//!
//! The contract is the *warm-restart identity*: for any component at a
//! tick boundary, capturing its state, rebuilding it from that state,
//! and continuing must be behaviorally indistinguishable from never
//! having stopped. [`MonitorServer`] satisfies it through
//! [`RegistrySnapshot`] (counters, tolerance, confidence, sync flag);
//! higher layers compose their own state on top and serialize the
//! whole into checkpoint documents.

use crate::error::CoreError;
use crate::registry::RegistrySnapshot;
use crate::server::{MonitorServer, ServerConfig};

/// Components that can capture their durable state at a tick boundary.
pub trait StateCapture {
    /// The captured state type.
    type State;

    /// Captures the component's durable state.
    ///
    /// The capture must be *complete* for warm restart: every field
    /// that influences future behavior is included; purely diagnostic
    /// state (histories, scratch buffers) may be omitted when its loss
    /// is behaviorally inert.
    fn capture_state(&self) -> Self::State;
}

/// Components that can be rebuilt from captured state.
pub trait StateRestore: Sized {
    /// The captured state type (matches the [`StateCapture`] side).
    type State;
    /// Non-durable construction context (configuration that is derived
    /// from the run setup rather than checkpointed).
    type Context;
    /// Restore failure type.
    type Error;

    /// Rebuilds the component so that continuing from it is
    /// indistinguishable from the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Implementations reject state that could not have been captured
    /// from a valid component (recovery feeds them parsed checkpoint
    /// bytes, which corruption may have mangled upstream).
    fn restore_state(state: Self::State, context: Self::Context) -> Result<Self, Self::Error>;
}

impl StateCapture for MonitorServer {
    type State = RegistrySnapshot;

    fn capture_state(&self) -> RegistrySnapshot {
        self.snapshot()
    }
}

impl StateRestore for MonitorServer {
    type State = RegistrySnapshot;
    type Context = ServerConfig;
    type Error = CoreError;

    fn restore_state(state: RegistrySnapshot, context: ServerConfig) -> Result<Self, CoreError> {
        MonitorServer::from_snapshot(state, context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::TagId;

    #[test]
    fn server_capture_restore_is_a_warm_restart() {
        let ids: Vec<TagId> = (1..=50u64).map(TagId::from).collect();
        let server = MonitorServer::new(ids.clone(), 2, 0.95).unwrap();
        // Advance some counters so the state is non-trivial.
        let mut rng = StdRng::seed_from_u64(3);
        let _ = server.issue_utrp_challenge(&mut rng).unwrap();

        let state = server.capture_state();
        let restored =
            MonitorServer::restore_state(state.clone(), ServerConfig::default()).unwrap();

        // The restored server captures back to the identical state,
        // and issues the identical next challenge for the same RNG.
        assert_eq!(restored.capture_state(), state);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        let ca = server.issue_utrp_challenge(&mut ra).unwrap();
        let cb = restored.issue_utrp_challenge(&mut rb).unwrap();
        assert_eq!(format!("{ca:?}"), format!("{cb:?}"));
    }
}
