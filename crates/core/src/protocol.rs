//! Protocol-generic round execution.
//!
//! TRP and UTRP share a lifecycle — issue a challenge, run the round in
//! the field through a [`RoundExecutor`], verify the response — but the
//! concrete calls differ per protocol, and before this module every
//! consumer (the session layer, the CLI scenarios, the soak driver)
//! spelled both arms out by hand. [`Protocol`] captures the lifecycle
//! once; [`Trp`] and [`Utrp`] are its two implementations, and callers
//! like `MonitoringSession` dispatch statically on them.
//!
//! One deliberate semantic lives here rather than in the server: a
//! response so malformed that verification *errors* with
//! [`CoreError::ResponseShapeMismatch`] (e.g. scripted truncation in
//! transit) is reported as a [`Verdict::NotIntact`] alarm instead of
//! propagating the error. The challenge is already spent, so field
//! counters may have advanced while the mirror did not — exactly the
//! fail-safe posture the fault matrix expects: transport corruption may
//! cost a false alarm, never a silent false "intact". Faultless
//! executors can never produce a shape mismatch, so the mapping is
//! unobservable on the fault-free path.

use rand::Rng;

use tagwatch_obs::{Obs, ObsEvent};
use tagwatch_sim::TagPopulation;

use crate::engine::RoundEngine;
use crate::error::CoreError;
use crate::executor::RoundExecutor;
use crate::server::MonitorServer;
use crate::verdict::{MonitorReport, ProtocolKind, Verdict};

/// One monitoring protocol's challenge → field round → verify cycle.
///
/// The `run_round` method is generic over the RNG, so the trait is not
/// object-safe; consumers dispatch statically (e.g. by matching a
/// protocol-kind enum), which also keeps the hot Monte-Carlo paths
/// monomorphized.
pub trait Protocol {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// Runs one full round: issue a challenge from `server`, execute it
    /// over `floor` through `executor`, verify, and return the report.
    ///
    /// `scratch` is the caller's reusable round engine (a
    /// [`RoundScratch`](crate::engine::RoundScratch) or the pooled sharded engine in
    /// `tagwatch-analytics`): long-running drivers pass the same
    /// engine every tick so rounds stop churning the allocator, and
    /// UTRP rounds drive both the field simulation and the server's
    /// mirror prediction through it. It never affects semantics — a
    /// fresh engine, a reused one, and any thread count produce
    /// byte-identical rounds. TRP rounds carry no re-seed state and
    /// leave it untouched.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors other than the response-shape mapping
    /// described in the module docs (e.g. [`CoreError::CounterDesync`]
    /// when issuing a UTRP challenge over an untrusted mirror).
    fn run_round<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        scratch: &mut E,
        rng: &mut R,
    ) -> Result<MonitorReport, CoreError>;

    /// [`Protocol::run_round`] with telemetry: the field round runs
    /// through the executor's observed variant and the verification
    /// outcome is recorded (verdict counters, hamming-distance
    /// histogram, a `verified` flight event, and an automatic flight
    /// dump on a [`Verdict::Desynced`] outcome). The report is
    /// identical to the uninstrumented round's; with a disabled `obs`
    /// the added cost is a handful of untaken branches.
    ///
    /// # Errors
    ///
    /// Same as [`Protocol::run_round`].
    fn run_round_observed<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        scratch: &mut E,
        rng: &mut R,
        obs: &Obs,
    ) -> Result<MonitorReport, CoreError>;
}

/// Records one verification outcome into the registry and flight
/// ring. A desynced verdict is a dump trigger: the mirror disagreed
/// with the field, and the event window leading up to it is exactly
/// what a postmortem needs.
fn record_report(obs: &Obs, report: &MonitorReport) {
    if !obs.enabled() {
        return;
    }
    match &report.verdict {
        Verdict::Intact => obs.inc(obs.m.verify_intact),
        Verdict::NotIntact => obs.inc(obs.m.verify_alarm),
        Verdict::Desynced { .. } => obs.inc(obs.m.verify_desynced),
    }
    // Verification re-walks the mirror frame slot by slot, so the
    // phase's deterministic cost is the frame size; it issues no
    // scan-engine probes.
    obs.span_phase(tagwatch_obs::Phase::Verify, report.frame_size, 0);
    obs.observe(obs.m.hamming_distance, report.mismatched_slots as f64);
    obs.emit(ObsEvent::Verified {
        proto: report.protocol.obs_kind(),
        verdict: report.verdict.obs_kind(),
        mismatched: report.mismatched_slots as u64,
        late: report.late,
    });
    if report.verdict.is_desynced() {
        obs.capture_dump("desync");
    }
}

/// A malformed response (wrong bitstring length) is an alarm, not an
/// error: the fail-safe mapping described in the module docs.
fn alarm_on_shape_mismatch(
    result: Result<MonitorReport, CoreError>,
    protocol: ProtocolKind,
    frame_size: u64,
) -> Result<MonitorReport, CoreError> {
    match result {
        Err(CoreError::ResponseShapeMismatch { .. }) => Ok(MonitorReport {
            protocol,
            verdict: Verdict::NotIntact,
            frame_size,
            mismatched_slots: 0,
            late: false,
            elapsed: None,
        }),
        other => other,
    }
}

/// The Trusted Reader Protocol (paper §4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Trp;

impl Protocol for Trp {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Trp
    }

    fn run_round<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        _scratch: &mut E,
        rng: &mut R,
    ) -> Result<MonitorReport, CoreError> {
        let challenge = server.issue_trp_challenge(rng)?;
        let f = challenge.frame_size().get();
        let bs = executor.run_trp(floor, &challenge, rng)?;
        alarm_on_shape_mismatch(server.verify_trp(challenge, &bs), ProtocolKind::Trp, f)
    }

    fn run_round_observed<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        _scratch: &mut E,
        rng: &mut R,
        obs: &Obs,
    ) -> Result<MonitorReport, CoreError> {
        // The round span brackets challenge, field round and verify so
        // phase costs inside attribute to it; close on error paths too.
        obs.span_open(tagwatch_obs::SpanKind::Round);
        let result = (|| {
            let challenge = server.issue_trp_challenge(rng)?;
            let f = challenge.frame_size().get();
            let bs = executor.run_trp_observed(floor, &challenge, rng, obs)?;
            let report =
                alarm_on_shape_mismatch(server.verify_trp(challenge, &bs), ProtocolKind::Trp, f)?;
            record_report(obs, &report);
            Ok(report)
        })();
        obs.span_close();
        result
    }
}

/// The Untrusted Reader Protocol (paper §5), with an honest reader in
/// the field (the adversarial-reader analysis lives in `tagwatch-attack`
/// and the Monte-Carlo harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Utrp;

impl Protocol for Utrp {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Utrp
    }

    fn run_round<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        scratch: &mut E,
        rng: &mut R,
    ) -> Result<MonitorReport, CoreError> {
        let timing = server.config().timing;
        let challenge = server.issue_utrp_challenge(rng)?;
        let f = challenge.frame_size().get();
        let response = executor.run_utrp_scratch(floor, &challenge, &timing, rng, scratch)?;
        alarm_on_shape_mismatch(
            server.verify_utrp_with(challenge, &response, scratch),
            ProtocolKind::Utrp,
            f,
        )
    }

    fn run_round_observed<E: RoundEngine, R: Rng + ?Sized>(
        &self,
        server: &mut MonitorServer,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        scratch: &mut E,
        rng: &mut R,
        obs: &Obs,
    ) -> Result<MonitorReport, CoreError> {
        obs.span_open(tagwatch_obs::SpanKind::Round);
        let result = (|| {
            let timing = server.config().timing;
            let challenge = server.issue_utrp_challenge(rng)?;
            let f = challenge.frame_size().get();
            let response = executor
                .run_utrp_scratch_observed(floor, &challenge, &timing, rng, scratch, obs)?;
            let report = alarm_on_shape_mismatch(
                server.verify_utrp_with(challenge, &response, scratch),
                ProtocolKind::Utrp,
                f,
            )?;
            record_report(obs, &report);
            Ok(report)
        })();
        obs.span_close();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoundScratch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::{Channel, FaultPlan};

    fn setup(n: usize, m: u64) -> (MonitorServer, TagPopulation) {
        let floor = TagPopulation::with_sequential_ids(n);
        let server = MonitorServer::new(floor.ids(), m, 0.95).unwrap();
        (server, floor)
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(Trp.kind(), ProtocolKind::Trp);
        assert_eq!(Utrp.kind(), ProtocolKind::Utrp);
    }

    #[test]
    fn trp_round_over_ideal_executor_matches_manual_flow() {
        let (mut manual_server, floor) = setup(120, 4);
        let (mut protocol_server, mut protocol_floor) = setup(120, 4);

        // Manual flow (the pre-refactor call sequence)...
        let mut rng_a = StdRng::seed_from_u64(9);
        let challenge = manual_server.issue_trp_challenge(&mut rng_a).unwrap();
        let bs = crate::trp::observed_bitstring(&floor.ids(), &challenge);
        let manual = manual_server.verify_trp(challenge, &bs).unwrap();

        // ...and the protocol-generic flow under the same seed.
        let mut rng_b = StdRng::seed_from_u64(9);
        let generic = Trp
            .run_round(
                &mut protocol_server,
                &mut protocol_floor,
                &RoundExecutor::ideal(),
                &mut RoundScratch::new(),
                &mut rng_b,
            )
            .unwrap();
        assert_eq!(manual, generic);
        assert!(generic.verdict.is_intact());
    }

    #[test]
    fn utrp_round_maintains_the_mirror() {
        let (mut server, mut floor) = setup(80, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3 {
            let report = Utrp
                .run_round(
                    &mut server,
                    &mut floor,
                    &RoundExecutor::ideal(),
                    &mut RoundScratch::new(),
                    &mut rng,
                )
                .unwrap();
            assert!(report.verdict.is_intact());
        }
        for tag in floor.iter() {
            assert_eq!(server.counter_of(tag.id()).unwrap(), tag.counter());
        }
    }

    #[test]
    fn truncated_response_is_an_alarm_not_an_error() {
        use crate::server::ServerConfig;
        let mut floor = TagPopulation::with_sequential_ids(50);
        // Diagnosis needs a window covering a whole lost round's
        // announcement advance (up to ~n).
        let config = ServerConfig {
            desync_window: 128,
            ..ServerConfig::default()
        };
        let mut server = MonitorServer::with_config(floor.ids(), 2, 0.95, config).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let executor = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().truncate_response(8)),
        );
        let report = Utrp
            .run_round(
                &mut server,
                &mut floor,
                &executor,
                &mut RoundScratch::new(),
                &mut rng,
            )
            .unwrap();
        assert!(report.is_alarm());
        assert!(report.verdict.is_alarm());
        // The challenge was spent against the field but never verified:
        // the field advanced while the mirror did not, so the *next*
        // clean round is diagnosed as a uniform mirror lag.
        let next = Utrp
            .run_round(
                &mut server,
                &mut floor,
                &RoundExecutor::ideal(),
                &mut RoundScratch::new(),
                &mut rng,
            )
            .unwrap();
        assert!(
            matches!(&next.verdict, Verdict::Desynced { suspects } if suspects.is_empty()),
            "{next:?}"
        );

        let trp_report = Trp
            .run_round(
                &mut server,
                &mut floor,
                &executor,
                &mut RoundScratch::new(),
                &mut rng,
            )
            .unwrap();
        assert!(trp_report.is_alarm(), "TRP truncation must alarm too");
    }

    #[test]
    fn theft_beyond_tolerance_alarms() {
        let (mut server, mut floor) = setup(200, 3);
        let mut rng = StdRng::seed_from_u64(2);
        floor.remove_random(4, &mut rng).unwrap();
        let report = Trp
            .run_round(
                &mut server,
                &mut floor,
                &RoundExecutor::ideal(),
                &mut RoundScratch::new(),
                &mut rng,
            )
            .unwrap();
        assert!(report.is_alarm());
    }
}
