//! TRP — the Trusted Reader Protocol (paper §4).
//!
//! One frame, one pass: the server picks `(f, r)` with `f` sized by
//! Eq. 2, the reader broadcasts it, every tag answers its hash-chosen
//! slot with a short burst, and the reader returns the occupancy
//! bitstring `bs`. The server — knowing every ID — has already computed
//! the bitstring an intact set must produce; any missing bit is
//! evidence, and with probability `> α` at least one of `m + 1` missing
//! tags lands in a slot no present tag covers.
//!
//! Two execution paths are provided and tested to agree:
//!
//! * [`run_reader`] — the *reference* path: drives real
//!   [`Tag`](tagwatch_sim::Tag) device models through a
//!   [`tagwatch_sim::Reader`] over a [`Channel`], including
//!   failure injection.
//! * [`observed_bitstring`] — the *fast* path for Monte-Carlo sweeps:
//!   pure hashing over the present IDs (exactly what an ideal-channel
//!   execution observes).

use rand::Rng;

use tagwatch_sim::aloha::{predicted_occupancy, FramePlan};
use tagwatch_sim::{Channel, FrameSize, Nonce, Reader, TagId, TagPopulation};

use crate::bitstring::Bitstring;
use crate::error::CoreError;
use crate::verdict::{MonitorReport, ProtocolKind, Verdict};

/// A single-use TRP challenge: the `(f, r)` pair the reader must
/// broadcast.
///
/// Verification consumes the challenge by value, so a bitstring can
/// never be replayed against the same `(f, r)` — the server's first
/// line of defence (§5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrpChallenge {
    plan: FramePlan,
}

impl TrpChallenge {
    /// Creates a challenge with an explicit plan (tests; servers use
    /// [`TrpChallenge::generate`]).
    #[must_use]
    pub fn new(plan: FramePlan) -> Self {
        TrpChallenge { plan }
    }

    /// Draws a fresh random nonce for a frame of the given size.
    pub fn generate<R: Rng + ?Sized>(f: FrameSize, rng: &mut R) -> Self {
        TrpChallenge {
            plan: FramePlan::new(f, Nonce::new(rng.gen())),
        }
    }

    /// The frame plan to broadcast.
    #[must_use]
    pub fn plan(&self) -> FramePlan {
        self.plan
    }

    /// The challenge's frame size.
    #[must_use]
    pub fn frame_size(&self) -> FrameSize {
        self.plan.frame_size()
    }
}

/// The bitstring an *intact* set must produce for this challenge — the
/// server's prediction from its ID registry (§4.1).
#[must_use]
pub fn expected_bitstring(ids: &[TagId], challenge: &TrpChallenge) -> Bitstring {
    Bitstring::from_bools(&predicted_occupancy(
        ids,
        challenge.plan.nonce(),
        challenge.plan.frame_size(),
    ))
}

/// The bitstring an ideal-channel execution over exactly `present_ids`
/// produces — the Monte-Carlo fast path. Identical math to
/// [`expected_bitstring`]; the distinct name marks *which side* of the
/// comparison a call sits on.
#[must_use]
pub fn observed_bitstring(present_ids: &[TagId], challenge: &TrpChallenge) -> Bitstring {
    expected_bitstring(present_ids, challenge)
}

/// Runs the full reference protocol (Algs. 1–3): the reader broadcasts
/// the challenge to the population over `channel` and assembles `bs`.
///
/// # Errors
///
/// Propagates simulation errors from the substrate.
pub fn run_reader(
    reader: &mut Reader,
    challenge: &TrpChallenge,
    tags: &TagPopulation,
    channel: &Channel,
) -> Result<Bitstring, CoreError> {
    let execution = reader.run_presence_frame(&challenge.plan, tags, channel)?;
    Ok(Bitstring::from_bools(&execution.occupancy_bits()))
}

/// Server-side verification: compares the reader's bitstring with the
/// prediction and issues a verdict.
///
/// Any disagreement — a missing `1` (a tag that should have answered)
/// or a spurious `1` (energy where none was predicted, impossible for
/// an intact set on an ideal channel and suspicious on any) — fails the
/// set.
///
/// # Errors
///
/// Returns [`CoreError::ResponseShapeMismatch`] if the bitstring length
/// differs from the challenge frame.
pub fn verify(
    ids: &[TagId],
    challenge: TrpChallenge,
    observed: &Bitstring,
) -> Result<MonitorReport, CoreError> {
    let f = challenge.frame_size().get();
    if observed.len() as u64 != f {
        return Err(CoreError::ResponseShapeMismatch {
            expected: f,
            received: observed.len() as u64,
        });
    }
    let expected = expected_bitstring(ids, &challenge);
    let mismatched = expected.hamming_distance(observed)?;
    Ok(MonitorReport {
        protocol: ProtocolKind::Trp,
        verdict: if mismatched == 0 {
            Verdict::Intact
        } else {
            Verdict::NotIntact
        },
        frame_size: f,
        mismatched_slots: mismatched,
        late: false,
        elapsed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::ReaderConfig;

    fn challenge(f: u64, r: u64) -> TrpChallenge {
        TrpChallenge::new(FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r)))
    }

    #[test]
    fn intact_set_verifies() {
        let pop = TagPopulation::with_sequential_ids(200);
        let ch = challenge(400, 12345);
        let observed = observed_bitstring(&pop.ids(), &ch);
        let report = verify(&pop.ids(), ch, &observed).unwrap();
        assert_eq!(report.verdict, Verdict::Intact);
        assert_eq!(report.mismatched_slots, 0);
    }

    #[test]
    fn reference_reader_matches_fast_path() {
        let pop = TagPopulation::with_sequential_ids(150);
        let ch = challenge(256, 777);
        let mut reader = Reader::new(ReaderConfig::default());
        let via_reader = run_reader(&mut reader, &ch, &pop, &Channel::ideal()).unwrap();
        let via_hash = observed_bitstring(&pop.ids(), &ch);
        assert_eq!(via_reader, via_hash);
    }

    #[test]
    fn missing_tags_usually_detected_with_sized_frame() {
        // Size the frame by Eq. 2 and steal m + 1 tags: detection must
        // comfortably exceed alpha over repeated trials.
        use crate::frame::trp_frame_size;
        use crate::params::MonitorParams;

        let params = MonitorParams::new(300, 5, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        let mut detected = 0;
        let trials = 400;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t);
            let mut pop = TagPopulation::with_sequential_ids(300);
            let all_ids = pop.ids();
            pop.remove_random(6, &mut rng).unwrap();
            let ch = TrpChallenge::generate(f, &mut rng);
            let observed = observed_bitstring(&pop.ids(), &ch);
            let report = verify(&all_ids, ch, &observed).unwrap();
            if report.verdict == Verdict::NotIntact {
                detected += 1;
            }
        }
        let rate = detected as f64 / trials as f64;
        assert!(rate > 0.90, "detection rate {rate} too low");
    }

    #[test]
    fn spurious_energy_fails_verification() {
        // A bit set where no tag was predicted is suspicious (phantom
        // energy or a fabricated response) — fail safe.
        let pop = TagPopulation::with_sequential_ids(10);
        let ch = challenge(64, 5);
        let mut observed = observed_bitstring(&pop.ids(), &ch);
        let expected = expected_bitstring(&pop.ids(), &ch);
        let free_slot = (0..64usize)
            .find(|&i| !expected.get(i).unwrap())
            .expect("64 slots, 10 tags: an empty slot exists");
        observed.set(free_slot, true).unwrap();
        let report = verify(&pop.ids(), ch, &observed).unwrap();
        assert_eq!(report.verdict, Verdict::NotIntact);
    }

    #[test]
    fn wrong_length_response_is_rejected() {
        let pop = TagPopulation::with_sequential_ids(10);
        let ch = challenge(64, 5);
        let short = Bitstring::zeros(63);
        assert!(matches!(
            verify(&pop.ids(), ch, &short),
            Err(CoreError::ResponseShapeMismatch {
                expected: 64,
                received: 63
            })
        ));
    }

    #[test]
    fn replayed_bitstring_fails_fresh_challenge() {
        // §5.1: a new (f, r) invalidates previously collected
        // bitstrings. Capture bs under r₁, replay it against r₂.
        let pop = TagPopulation::with_sequential_ids(100);
        let old = challenge(256, 111);
        let replayed = observed_bitstring(&pop.ids(), &old);
        let fresh = challenge(256, 222);
        let report = verify(&pop.ids(), fresh, &replayed).unwrap();
        assert_eq!(report.verdict, Verdict::NotIntact);
    }

    #[test]
    fn generate_draws_distinct_nonces() {
        let f = FrameSize::new(64).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let a = TrpChallenge::generate(f, &mut rng);
        let b = TrpChallenge::generate(f, &mut rng);
        assert_ne!(a.plan().nonce(), b.plan().nonce());
    }

    #[test]
    fn detuned_tag_reads_as_missing() {
        // A physically blocked tag produces exactly the same evidence
        // as a stolen one — the reason tolerance m exists.
        let mut pop = TagPopulation::with_sequential_ids(50);
        let ids = pop.ids();
        pop.get_mut(ids[7]).unwrap().set_detuned(true);
        let ch = challenge(256, 42);
        let mut reader = Reader::new(ReaderConfig::default());
        let observed = run_reader(&mut reader, &ch, &pop, &Channel::ideal()).unwrap();
        let report = verify(&ids, ch, &observed).unwrap();
        // The detuned tag's slot may be covered by another tag, so
        // NotIntact is likely but not certain; what must hold is that
        // verification never *errors* and mismatches are bounded by 1.
        assert!(report.mismatched_slots <= 1);
    }
}
