//! Property-based tests for the baseline protocols.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_protocols::collect_all::{collect_all, CollectAllConfig, FramePolicy};
use tagwatch_protocols::estimate::{estimate_cardinality, EstimateConfig};
use tagwatch_protocols::query_tree::query_tree_inventory;
use tagwatch_sim::{Channel, FrameSize, Reader, ReaderConfig, TagPopulation, TimingModel};

proptest! {
    // Keep case counts moderate: each case runs a full protocol.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn collect_all_is_complete_and_duplicate_free(n in 1usize..250, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig::default());
        let mut pop = TagPopulation::with_sequential_ids(n);
        let run = collect_all(
            &mut reader,
            &mut pop,
            &Channel::ideal(),
            &CollectAllConfig::paper(n as u64, 0),
            &mut rng,
        )
        .unwrap();
        prop_assert_eq!(run.collected.len(), n);
        let distinct: std::collections::HashSet<_> = run.collected.iter().collect();
        prop_assert_eq!(distinct.len(), n);
        prop_assert!(!run.truncated);
        // Cost sanity: at least one slot per tag, at most a generous
        // constant factor.
        prop_assert!(run.total_slots >= n as u64);
        prop_assert!(run.total_slots <= 8 * n as u64 + 64);
    }

    #[test]
    fn collect_all_tolerance_never_costs_more(n in 20usize..200, m in 0u64..15, seed in any::<u64>()) {
        let run = |tol: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reader = Reader::new(ReaderConfig::default());
            let mut pop = TagPopulation::with_sequential_ids(n);
            collect_all(
                &mut reader,
                &mut pop,
                &Channel::ideal(),
                &CollectAllConfig::paper(n as u64, tol),
                &mut rng,
            )
            .unwrap()
            .total_slots
        };
        let strict = run(0);
        let tolerant = run(m.min(n as u64 - 1));
        prop_assert!(tolerant <= strict, "tolerance increased cost: {tolerant} > {strict}");
    }

    #[test]
    fn query_tree_identifies_arbitrary_id_sets(ids in prop::collection::hash_set(any::<u128>(), 0..120)) {
        let pop = TagPopulation::from_ids(
            ids.iter().map(|&raw| tagwatch_sim::TagId::new(raw)),
        );
        // HashSet of u128 may collide after 96-bit masking; skip then.
        let Ok(pop) = pop else { return Ok(()); };
        let run = query_tree_inventory(&pop, &TimingModel::uniform_slots());
        let found: std::collections::HashSet<_> = run.collected.iter().copied().collect();
        let expected: std::collections::HashSet<_> = pop.ids().into_iter().collect();
        prop_assert_eq!(found, expected);
        // Structural identity of the binary trie walk.
        prop_assert_eq!(run.total_queries, 1 + 2 * run.collisions);
    }

    #[test]
    fn estimator_is_unbiased_enough(n in 20usize..400, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig::default());
        let pop = TagPopulation::with_sequential_ids(n);
        let outcome = estimate_cardinality(
            &mut reader,
            &pop,
            &Channel::ideal(),
            &EstimateConfig {
                frame_size: FrameSize::new((4 * n) as u64).unwrap(),
                rounds: 8,
            },
            &mut rng,
        )
        .unwrap();
        prop_assert!(!outcome.saturated);
        let rel = (outcome.estimate - n as f64).abs() / n as f64;
        // 8 rounds at f = 4n: generous 35% bound holds with huge margin
        // for any seed (typical error is ~5%).
        prop_assert!(rel < 0.35, "n = {n}, estimate = {}", outcome.estimate);
    }

    #[test]
    fn fixed_policy_slot_accounting(n in 1usize..150, f in 1u64..256, rounds in 1u32..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reader = Reader::new(ReaderConfig::default());
        let mut pop = TagPopulation::with_sequential_ids(n);
        let run = collect_all(
            &mut reader,
            &mut pop,
            &Channel::ideal(),
            &CollectAllConfig {
                expected_tags: n as u64,
                tolerance: 0,
                policy: FramePolicy::Fixed(f),
                max_rounds: rounds,
            },
            &mut rng,
        )
        .unwrap();
        prop_assert_eq!(run.total_slots, u64::from(run.rounds) * f);
        prop_assert!(run.rounds <= rounds);
    }
}
