//! Probabilistic cardinality estimation (in the spirit of Kodialam &
//! Nandagopal \[6\]).
//!
//! The related-work family the paper builds on: estimate *how many* tags
//! are present — without identifying any — from the statistics of a
//! presence frame. With `n` tags hashing uniformly into `f` slots, the
//! expected number of empty slots is `f·e^{−n/f}`, so observing `N₀`
//! empty slots yields the **zero estimator**
//!
//! ```text
//! n̂ = f · ln(f / N₀).
//! ```
//!
//! Averaging over `k` independently seeded frames tightens the estimate
//! by `√k`. The estimator saturates when a frame comes back with no
//! empty slots (`N₀ = 0`), which the caller sees via
//! [`EstimateOutcome::saturated`] — the fix is a bigger frame.
//!
//! This module doubles as a self-check of the simulation substrate: if
//! the estimator converges to the true `n`, the slot-occupancy process
//! matches the binomial model the monitoring analysis assumes.

use rand::Rng;

use tagwatch_sim::aloha::FramePlan;
use tagwatch_sim::{Channel, FrameSize, Nonce, Reader, SimError, TagPopulation};

/// Configuration for a cardinality estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EstimateConfig {
    /// Frame size per round. Rule of thumb: at least the expected `n`
    /// (an `f ≈ n` frame keeps `N₀` comfortably away from zero).
    pub frame_size: FrameSize,
    /// Number of independent rounds to average.
    pub rounds: u32,
}

impl EstimateConfig {
    /// A sensible default for an expected population around `n`:
    /// `f = max(n, 16)` and 8 rounds.
    ///
    /// # Errors
    ///
    /// Propagates frame-size validation errors for absurd `n`.
    pub fn for_expected(n: u64) -> Result<Self, SimError> {
        Ok(EstimateConfig {
            frame_size: FrameSize::new(n.max(16))?,
            rounds: 8,
        })
    }
}

/// The result of a cardinality estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateOutcome {
    /// The averaged point estimate `n̂`.
    pub estimate: f64,
    /// Per-round estimates (for dispersion diagnostics).
    pub per_round: Vec<f64>,
    /// Total slots spent across all rounds.
    pub total_slots: u64,
    /// Whether any round saturated (`N₀ = 0`); the estimate is then a
    /// lower bound and the frame should be enlarged.
    pub saturated: bool,
}

impl EstimateOutcome {
    /// Sample standard deviation of the per-round estimates (0 for a
    /// single round).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let k = self.per_round.len();
        if k < 2 {
            return 0.0;
        }
        let mean = self.estimate;
        let var = self
            .per_round
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        var.sqrt()
    }
}

/// Estimates the number of present, tuned tags in `population`.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn estimate_cardinality<R: Rng + ?Sized>(
    reader: &mut Reader,
    population: &TagPopulation,
    channel: &Channel,
    config: &EstimateConfig,
    rng: &mut R,
) -> Result<EstimateOutcome, SimError> {
    let f = config.frame_size;
    let f_float = f.get() as f64;
    let mut per_round = Vec::with_capacity(config.rounds as usize);
    let mut saturated = false;

    for _ in 0..config.rounds.max(1) {
        let plan = FramePlan::new(f, Nonce::new(rng.gen()));
        let execution = reader.run_presence_frame(&plan, population, channel)?;
        let empty = execution.stats().empty;
        if empty == 0 {
            saturated = true;
            // Lower-bound surrogate: pretend half a slot was empty.
            per_round.push(f_float * (f_float / 0.5).ln());
        } else {
            per_round.push(f_float * (f_float / empty as f64).ln());
        }
    }

    let estimate = per_round.iter().sum::<f64>() / per_round.len() as f64;
    Ok(EstimateOutcome {
        estimate,
        total_slots: f.get() * u64::from(config.rounds.max(1)),
        per_round,
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::ReaderConfig;

    fn run(n: usize, f: u64, rounds: u32, seed: u64) -> EstimateOutcome {
        let mut reader = Reader::new(ReaderConfig::default());
        let pop = TagPopulation::with_sequential_ids(n);
        let mut rng = StdRng::seed_from_u64(seed);
        estimate_cardinality(
            &mut reader,
            &pop,
            &Channel::ideal(),
            &EstimateConfig {
                frame_size: FrameSize::new(f).unwrap(),
                rounds,
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn estimate_converges_to_truth() {
        let outcome = run(500, 1024, 16, 7);
        assert!(!outcome.saturated);
        let rel_err = (outcome.estimate - 500.0).abs() / 500.0;
        assert!(
            rel_err < 0.10,
            "estimate {} off by {rel_err}",
            outcome.estimate
        );
    }

    #[test]
    fn estimate_handles_small_populations() {
        let outcome = run(10, 64, 16, 8);
        assert!(
            (outcome.estimate - 10.0).abs() < 6.0,
            "{}",
            outcome.estimate
        );
    }

    #[test]
    fn more_rounds_reduce_dispersion() {
        let few = run(300, 512, 2, 9);
        let many = run(300, 512, 32, 9);
        // Not a strict guarantee per-seed, but with 16× the rounds the
        // sample std-dev of the *mean* shrinks enormously; compare the
        // mean absolute error instead, which is robust.
        let err_few = (few.estimate - 300.0).abs();
        let err_many = (many.estimate - 300.0).abs();
        assert!(
            err_many <= err_few + 15.0,
            "many-round error {err_many} much worse than few-round {err_few}"
        );
    }

    #[test]
    fn undersized_frame_saturates() {
        let outcome = run(2000, 16, 4, 10);
        assert!(outcome.saturated);
        // Saturated estimates are still finite and positive.
        assert!(outcome.estimate.is_finite() && outcome.estimate > 0.0);
    }

    #[test]
    fn zero_population_estimates_zero() {
        let mut reader = Reader::new(ReaderConfig::default());
        let pop = TagPopulation::new();
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = estimate_cardinality(
            &mut reader,
            &pop,
            &Channel::ideal(),
            &EstimateConfig {
                frame_size: FrameSize::new(64).unwrap(),
                rounds: 4,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.estimate, 0.0);
    }

    #[test]
    fn slot_budget_is_accounted() {
        let outcome = run(100, 256, 4, 12);
        assert_eq!(outcome.total_slots, 1024);
        assert_eq!(outcome.per_round.len(), 4);
    }

    #[test]
    fn std_dev_zero_for_single_round() {
        let outcome = run(100, 256, 1, 13);
        assert_eq!(outcome.std_dev(), 0.0);
    }

    #[test]
    fn for_expected_builds_reasonable_config() {
        let cfg = EstimateConfig::for_expected(500).unwrap();
        assert!(cfg.frame_size.get() >= 500);
        assert!(cfg.rounds >= 1);
        let tiny = EstimateConfig::for_expected(0).unwrap();
        assert!(tiny.frame_size.get() >= 16);
    }

    #[test]
    fn estimation_never_reveals_ids() {
        // The estimator's entire input is slot occupancy — structurally
        // incapable of leaking IDs. Assert the outcome type carries no
        // TagId anywhere (compile-time shape check via Debug output).
        let outcome = run(50, 128, 2, 14);
        let debug = format!("{outcome:?}");
        assert!(!debug.contains("epc:"));
    }
}
