//! A query-tree anti-collision baseline (cited family \[2, 3\]).
//!
//! The query-tree protocol is the deterministic alternative to ALOHA:
//! the reader broadcasts an ID *prefix*; every tag whose ID starts with
//! that prefix answers with its full ID. On a collision the reader
//! pushes both one-bit extensions of the prefix; on a single reply it
//! records the ID; on silence the branch is dead. The protocol is
//! memoryless for tags (they only match prefixes), needs no frame-size
//! estimation, and its query count adapts to the ID distribution — but
//! every query is a full slot, and like every identification protocol
//! it is Ω(n), which is exactly the bound the paper's monitoring
//! approach escapes.
//!
//! IDs are walked most-significant bit first over the 96-bit EPC space.

use tagwatch_sim::{SimDuration, TagId, TagPopulation, TimingModel};

/// Metrics from one query-tree inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTreeRun {
    /// Collected IDs in discovery order.
    pub collected: Vec<TagId>,
    /// Total queries broadcast (the protocol's slot count).
    pub total_queries: u64,
    /// Queries that collided (≥ 2 matching tags).
    pub collisions: u64,
    /// Queries that went unanswered.
    pub idle: u64,
    /// Air time: every query is billed as an ID slot (tags answer with
    /// full IDs) plus command overhead under the given timing model.
    pub duration: SimDuration,
}

impl QueryTreeRun {
    /// Queries that decoded exactly one tag.
    #[must_use]
    pub fn singletons(&self) -> u64 {
        self.total_queries - self.collisions - self.idle
    }
}

/// Runs a query-tree inventory over the *present, tuned* tags of
/// `population` and bills air time under `timing`.
///
/// Detuned tags never answer, exactly as on the air; silenced state is
/// ignored (the query tree has its own notion of "already identified").
#[must_use]
pub fn query_tree_inventory(population: &TagPopulation, timing: &TimingModel) -> QueryTreeRun {
    let ids: Vec<u128> = population
        .iter()
        .filter(|t| !t.is_detuned())
        .map(|t| t.id().as_u128())
        .collect();

    let mut run = QueryTreeRun {
        collected: Vec::with_capacity(ids.len()),
        total_queries: 0,
        collisions: 0,
        idle: 0,
        duration: SimDuration::ZERO,
    };

    // A prefix is (bits, len): the top `len` bits of the 96-bit space.
    // Depth-first, LIFO stack — 0-branch explored first.
    let mut stack: Vec<(u128, u32)> = vec![(0, 0)];
    while let Some((prefix, len)) = stack.pop() {
        run.total_queries += 1;
        run.duration += timing.frame_announce + timing.slot_broadcast;

        let matching: Vec<u128> = ids
            .iter()
            .copied()
            .filter(|&id| matches_prefix(id, prefix, len))
            .collect();
        match matching.len() {
            0 => {
                run.idle += 1;
                run.duration += timing.empty_slot;
            }
            1 => {
                run.collected.push(TagId::new(matching[0]));
                run.duration += timing.id_reply;
            }
            _ => {
                run.collisions += 1;
                run.duration += timing.id_reply;
                debug_assert!(len < TagId::BITS, "distinct ids must split before 96 bits");
                // Push 1-branch first so the 0-branch pops first.
                stack.push((prefix | (1u128 << (TagId::BITS - 1 - len)), len + 1));
                stack.push((prefix, len + 1));
            }
        }
    }
    run
}

/// Whether `id`'s top `len` bits equal `prefix`'s top `len` bits.
fn matches_prefix(id: u128, prefix: u128, len: u32) -> bool {
    if len == 0 {
        return true;
    }
    let shift = TagId::BITS - len;
    (id >> shift) == (prefix >> shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform() -> TimingModel {
        TimingModel::uniform_slots()
    }

    #[test]
    fn collects_every_tuned_tag_exactly_once() {
        let pop = TagPopulation::with_sequential_ids(300);
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.collected.len(), 300);
        let distinct: std::collections::HashSet<_> = run.collected.iter().collect();
        assert_eq!(distinct.len(), 300);
    }

    #[test]
    fn collects_random_ids() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = TagPopulation::with_random_ids(128, &mut rng);
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.collected.len(), 128);
    }

    #[test]
    fn query_accounting_balances() {
        let pop = TagPopulation::with_sequential_ids(100);
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(
            run.total_queries,
            run.collisions + run.idle + run.singletons()
        );
        assert_eq!(run.singletons(), 100);
        // Binary-tree identity: internal (collision) nodes of a trie
        // with L leaves, where every query splits into exactly two
        // children, satisfy queries = 1 + 2·collisions.
        assert_eq!(run.total_queries, 1 + 2 * run.collisions);
    }

    #[test]
    fn query_count_is_at_least_linear() {
        // Identification cannot beat n queries — the bound the paper's
        // monitoring protocols escape.
        for n in [50usize, 200, 800] {
            let pop = TagPopulation::with_sequential_ids(n);
            let run = query_tree_inventory(&pop, &uniform());
            assert!(run.total_queries as usize >= n);
            // ...and for sane ID distributions it stays O(n) too.
            assert!(run.total_queries as usize <= 6 * n + 100);
        }
    }

    #[test]
    fn empty_population_costs_one_query() {
        let pop = TagPopulation::new();
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.total_queries, 1);
        assert_eq!(run.idle, 1);
        assert!(run.collected.is_empty());
    }

    #[test]
    fn single_tag_costs_one_query() {
        let pop = TagPopulation::with_sequential_ids(1);
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.total_queries, 1);
        assert_eq!(run.collected.len(), 1);
        assert_eq!(run.collisions, 0);
    }

    #[test]
    fn detuned_tags_are_invisible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pop = TagPopulation::with_sequential_ids(40);
        pop.detune_random(15, &mut rng).unwrap();
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.collected.len(), 25);
    }

    #[test]
    fn adjacent_ids_force_deep_splits() {
        // IDs 2k and 2k+1 share 95 bits: the trie must descend to the
        // last bit, and still terminates correctly.
        let pop = TagPopulation::from_ids([TagId::new(2), TagId::new(3)]).unwrap();
        let run = query_tree_inventory(&pop, &uniform());
        assert_eq!(run.collected.len(), 2);
        assert!(run.collisions >= 94, "collisions = {}", run.collisions);
    }

    #[test]
    fn duration_dominated_by_id_replies() {
        let pop = TagPopulation::with_sequential_ids(64);
        let run = query_tree_inventory(&pop, &TimingModel::gen2());
        let id_floor = TimingModel::gen2().id_reply * 64;
        assert!(run.duration >= id_floor);
    }
}
