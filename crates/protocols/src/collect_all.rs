//! The collect-all baseline (paper §1, §6 / Fig. 4).
//!
//! Collect-all is the classical monitoring strategy: inventory *every*
//! tag ID and diff against the registry. It is exactly what TRP is
//! designed to beat, so the reproduction needs a faithful, competitive
//! implementation: dynamic framed-slotted ALOHA (DFSA) where the reader
//! re-frames after every round, with frame sizes per Lee et al. \[7\]
//! ("the optimal frame size is equal to the number of unidentified
//! tags"). Following §6, a run with tolerance `m` stops once `n − m`
//! tags have been collected.

use rand::Rng;

use tagwatch_sim::aloha::FramePlan;
use tagwatch_sim::{
    Channel, FrameSize, Nonce, Reader, SimDuration, SimError, TagId, TagPopulation,
};

/// How the reader picks the next frame size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FramePolicy {
    /// Lee et al. \[7\]: frame size = expected number of unidentified
    /// tags (the paper's Fig. 4 configuration: `f₁ = n`, then the
    /// remainder).
    #[default]
    LeeOptimal,
    /// A fixed frame size every round (for ablations).
    Fixed(u64),
    /// Double the frame after a collision-heavy round, halve after an
    /// idle-heavy one (a classic Q-style adaptive ablation), starting
    /// from the given size.
    Adaptive(u64),
}

/// Collect-all configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectAllConfig {
    /// The registry size `n` the server expects.
    pub expected_tags: u64,
    /// Tolerance `m`: stop once `expected_tags − m` IDs are in hand.
    pub tolerance: u64,
    /// Frame-sizing policy.
    pub policy: FramePolicy,
    /// Hard cap on rounds, a safety net against pathological policies
    /// (e.g. `Fixed(1)` with thousands of tags).
    pub max_rounds: u32,
}

impl CollectAllConfig {
    /// The paper's configuration for a population of `n` with tolerance
    /// `m`.
    #[must_use]
    pub fn paper(n: u64, m: u64) -> Self {
        CollectAllConfig {
            expected_tags: n,
            tolerance: m,
            policy: FramePolicy::LeeOptimal,
            max_rounds: 10_000,
        }
    }
}

/// The result of a collect-all inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectAllRun {
    /// Every collected ID, in decode order.
    pub collected: Vec<TagId>,
    /// Total slots across all rounds — the paper's Fig. 4 metric
    /// ("the final number of slots is the sum of all the fs used in
    /// each round").
    pub total_slots: u64,
    /// Number of rounds (frames) used.
    pub rounds: u32,
    /// Total air time under the reader's timing model (IDs are long;
    /// this is where collect-all loses even harder than in slots).
    pub duration: SimDuration,
    /// Whether the run hit `max_rounds` before reaching its target.
    pub truncated: bool,
}

impl CollectAllRun {
    /// Whether the target count was reached.
    #[must_use]
    pub fn reached_target(&self, config: &CollectAllConfig) -> bool {
        self.collected.len() as u64 >= config.expected_tags.saturating_sub(config.tolerance)
    }
}

/// Runs a collect-all inventory over `population`.
///
/// Stops when `expected_tags − tolerance` IDs are collected, when every
/// *present* tag has been collected (fewer tags than expected may be in
/// range), or at `max_rounds`.
///
/// # Errors
///
/// Propagates substrate errors (e.g. an invalid fixed frame size).
pub fn collect_all<R: Rng + ?Sized>(
    reader: &mut Reader,
    population: &mut TagPopulation,
    channel: &Channel,
    config: &CollectAllConfig,
    rng: &mut R,
) -> Result<CollectAllRun, SimError> {
    let present = population.len() as u64;
    let target = config
        .expected_tags
        .saturating_sub(config.tolerance)
        .min(present);

    population.reset_inventory();
    let mut collected: Vec<TagId> = Vec::with_capacity(target as usize);
    let mut total_slots = 0u64;
    let mut duration = SimDuration::ZERO;
    let mut rounds = 0u32;
    let mut truncated = false;
    let mut adaptive_f = match config.policy {
        FramePolicy::Adaptive(f0) => f0.max(1),
        _ => 0,
    };

    while (collected.len() as u64) < target {
        if rounds >= config.max_rounds {
            truncated = true;
            break;
        }
        let remaining = target - collected.len() as u64;
        // All still-ready tags contend, including the ones beyond the
        // target count — the reader cannot tell tags apart in advance.
        let contending = present - collected.len() as u64;
        let f_raw = match config.policy {
            // Lee: size for the number of unidentified tags. Round 1
            // sizes for the full expectation (f₁ = n).
            FramePolicy::LeeOptimal => contending.max(1),
            FramePolicy::Fixed(f) => f,
            FramePolicy::Adaptive(_) => adaptive_f,
        };
        let f = FrameSize::new(f_raw)?;
        let plan = FramePlan::new(f, Nonce::new(rng.gen()));
        let round = reader.run_collection_frame(&plan, population, channel)?;
        total_slots += f.get();
        duration += round.execution.duration();
        rounds += 1;

        if let FramePolicy::Adaptive(_) = config.policy {
            let stats = round.execution.stats();
            if stats.collisions > stats.empty {
                adaptive_f = (adaptive_f * 2).min(FrameSize::MAX);
            } else if stats.empty > stats.collisions && adaptive_f > 1 {
                adaptive_f = (adaptive_f / 2).max(1);
            }
        }

        let newly = round.collected.len() as u64;
        collected.extend(round.collected);
        // No progress and nobody left contending: every remaining tag is
        // detuned or absent; further rounds cannot help.
        if newly == 0
            && population
                .iter()
                .all(|t| t.state() == tagwatch_sim::TagState::Silenced || t.is_detuned())
        {
            break;
        }
        let _ = remaining;
    }

    Ok(CollectAllRun {
        collected,
        total_slots,
        rounds,
        duration,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_sim::{ReaderConfig, TimingModel};

    fn rig() -> (Reader, Channel, StdRng) {
        (
            Reader::new(ReaderConfig::default()),
            Channel::ideal(),
            StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn collects_every_tag_with_zero_tolerance() {
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(200);
        let config = CollectAllConfig::paper(200, 0);
        let run = collect_all(&mut reader, &mut pop, &channel, &config, &mut rng).unwrap();
        assert_eq!(run.collected.len(), 200);
        assert!(run.reached_target(&config));
        assert!(!run.truncated);
        // Every collected ID is distinct and real.
        let distinct: std::collections::HashSet<_> = run.collected.iter().collect();
        assert_eq!(distinct.len(), 200);
    }

    #[test]
    fn tolerance_stops_early() {
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(200);
        let full = collect_all(
            &mut reader,
            &mut pop,
            &channel,
            &CollectAllConfig::paper(200, 0),
            &mut rng,
        )
        .unwrap();

        let (mut reader2, channel2, mut rng2) = rig();
        let mut pop2 = TagPopulation::with_sequential_ids(200);
        let tolerant = collect_all(
            &mut reader2,
            &mut pop2,
            &channel2,
            &CollectAllConfig::paper(200, 30),
            &mut rng2,
        )
        .unwrap();

        assert!(tolerant.collected.len() >= 170);
        assert!(
            tolerant.total_slots < full.total_slots,
            "tolerance should save slots: {} vs {}",
            tolerant.total_slots,
            full.total_slots
        );
    }

    #[test]
    fn slot_cost_scales_linearly_with_population() {
        // Fig. 4: collect-all slots grow linearly in n at roughly e·n
        // for the Lee policy (each round clears a 1/e fraction).
        let mut costs = Vec::new();
        for n in [250usize, 500, 1000] {
            let (mut reader, channel, mut rng) = rig();
            let mut pop = TagPopulation::with_sequential_ids(n);
            let run = collect_all(
                &mut reader,
                &mut pop,
                &channel,
                &CollectAllConfig::paper(n as u64, 0),
                &mut rng,
            )
            .unwrap();
            costs.push(run.total_slots as f64 / n as f64);
        }
        for &per_tag in &costs {
            assert!(
                (1.8..=3.6).contains(&per_tag),
                "slots per tag {per_tag} outside the DFSA ballpark"
            );
        }
    }

    #[test]
    fn missing_tags_do_not_hang_the_run() {
        // 50 of 200 expected tags were stolen: the run must terminate by
        // collecting all 150 present.
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(200);
        pop.split_random(50, &mut rng).unwrap();
        let config = CollectAllConfig::paper(200, 0);
        let run = collect_all(&mut reader, &mut pop, &channel, &config, &mut rng).unwrap();
        assert_eq!(run.collected.len(), 150);
        assert!(!run.reached_target(&config));
    }

    #[test]
    fn detuned_tags_do_not_hang_the_run() {
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(60);
        pop.detune_random(10, &mut rng).unwrap();
        let run = collect_all(
            &mut reader,
            &mut pop,
            &channel,
            &CollectAllConfig::paper(60, 0),
            &mut rng,
        )
        .unwrap();
        assert_eq!(run.collected.len(), 50);
    }

    #[test]
    fn fixed_policy_respects_round_cap() {
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(500);
        let config = CollectAllConfig {
            expected_tags: 500,
            tolerance: 0,
            policy: FramePolicy::Fixed(2),
            max_rounds: 10,
        };
        let run = collect_all(&mut reader, &mut pop, &channel, &config, &mut rng).unwrap();
        assert!(run.truncated);
        assert_eq!(run.rounds, 10);
        assert_eq!(run.total_slots, 20);
    }

    #[test]
    fn adaptive_policy_converges() {
        let (mut reader, channel, mut rng) = rig();
        let mut pop = TagPopulation::with_sequential_ids(300);
        let config = CollectAllConfig {
            expected_tags: 300,
            tolerance: 0,
            policy: FramePolicy::Adaptive(16),
            max_rounds: 10_000,
        };
        let run = collect_all(&mut reader, &mut pop, &channel, &config, &mut rng).unwrap();
        assert_eq!(run.collected.len(), 300);
        assert!(!run.truncated);
    }

    #[test]
    fn gen2_timing_bills_id_lengths() {
        let mut reader = Reader::new(ReaderConfig {
            timing: TimingModel::gen2(),
            ..ReaderConfig::default()
        });
        let channel = Channel::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pop = TagPopulation::with_sequential_ids(100);
        let run = collect_all(
            &mut reader,
            &mut pop,
            &channel,
            &CollectAllConfig::paper(100, 0),
            &mut rng,
        )
        .unwrap();
        // 100 ID replies at 2.4 ms each: at least 240 ms of air time.
        assert!(run.duration.as_micros() >= 240_000);
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let run = |seed: u64| {
            let mut reader = Reader::new(ReaderConfig::default());
            let channel = Channel::ideal();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pop = TagPopulation::with_sequential_ids(150);
            collect_all(
                &mut reader,
                &mut pop,
                &channel,
                &CollectAllConfig::paper(150, 5),
                &mut rng,
            )
            .unwrap()
            .total_slots
        };
        assert_eq!(run(9), run(9));
    }
}
