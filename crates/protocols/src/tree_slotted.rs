//! Tree Slotted ALOHA (TSA) — the cited anti-collision protocol of
//! Bonuccelli, Lonetti & Martelli \[2\].
//!
//! TSA organizes the inventory as a tree of frames: an initial root
//! frame is followed, for **each collided slot**, by a dedicated child
//! frame in which only the tags that collided in that slot retransmit.
//! Because a child frame's contender set is exactly the colliders of
//! one slot (typically 2–3 tags), small child frames clear them with
//! very few wasted slots, and the expected total cost undercuts flat
//! re-framing DFSA.
//!
//! Mechanically, tags track which node of the frame tree they belong
//! to: a tag that collided in slot `s` of frame `k` participates
//! exactly in the child frame spawned for `(k, s)`, picking a new slot
//! with a fresh nonce. We simulate the tree walk breadth-first with the
//! substrate's hashing so runs are deterministic per seed.

use rand::Rng;

use tagwatch_sim::hash::slot_for;
use tagwatch_sim::{FrameSize, Nonce, SimDuration, TagId, TagPopulation, TimingModel};

/// Configuration for a TSA inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TsaConfig {
    /// Root frame size. The classic choice is the expected tag count.
    pub root_frame: FrameSize,
    /// Child frame size per collided slot. Colliding groups are small,
    /// so tiny frames (the paper family uses sizes near the expected
    /// collider count + 1) work best.
    pub child_frame: FrameSize,
    /// Safety cap on tree depth (a collision among identical… cannot
    /// happen with distinct IDs and fresh nonces, but the cap bounds
    /// adversarial inputs).
    pub max_depth: u32,
}

impl TsaConfig {
    /// The standard configuration for an expected population of `n`:
    /// root frame `n`, child frames of 4 slots.
    ///
    /// # Errors
    ///
    /// Propagates frame-size validation (only for `n = 0`, which yields
    /// the minimum root frame of 1).
    pub fn for_expected(n: u64) -> Result<Self, tagwatch_sim::SimError> {
        Ok(TsaConfig {
            root_frame: FrameSize::new(n.max(1))?,
            child_frame: FrameSize::new(4)?,
            max_depth: 64,
        })
    }
}

/// Metrics from one TSA inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct TsaRun {
    /// Collected IDs in decode order.
    pub collected: Vec<TagId>,
    /// Total slots across the whole frame tree.
    pub total_slots: u64,
    /// Number of frames (root + children).
    pub frames: u64,
    /// Deepest tree level reached (root = 0).
    pub depth_reached: u32,
    /// Air time under the given timing model (collection mode: IDs).
    pub duration: SimDuration,
    /// Whether the depth cap stopped unresolved collisions (never on
    /// distinct IDs with fresh nonces, barring astronomically unlikely
    /// repeated hash ties).
    pub truncated: bool,
}

/// Runs a TSA inventory over the present, tuned tags of `population`.
pub fn tree_slotted_inventory<R: Rng + ?Sized>(
    population: &TagPopulation,
    config: &TsaConfig,
    timing: &TimingModel,
    rng: &mut R,
) -> TsaRun {
    let contenders: Vec<TagId> = population
        .iter()
        .filter(|t| !t.is_detuned())
        .map(|t| t.id())
        .collect();

    let mut run = TsaRun {
        collected: Vec::with_capacity(contenders.len()),
        total_slots: 0,
        frames: 0,
        depth_reached: 0,
        duration: SimDuration::ZERO,
        truncated: false,
    };

    // Breadth-first queue of (contender-group, depth).
    let mut queue: std::collections::VecDeque<(Vec<TagId>, u32)> =
        std::collections::VecDeque::new();
    if !contenders.is_empty() {
        queue.push_back((contenders, 0));
    }

    while let Some((group, depth)) = queue.pop_front() {
        let f = if depth == 0 {
            config.root_frame
        } else {
            config.child_frame
        };
        let r = Nonce::new(rng.gen());
        run.frames += 1;
        run.total_slots += f.get();
        run.depth_reached = run.depth_reached.max(depth);
        run.duration += timing.frame_announce + timing.slot_broadcast * f.get();

        // Bucket the group's slot choices.
        let mut buckets: Vec<Vec<TagId>> = vec![Vec::new(); f.as_usize()];
        for &id in &group {
            buckets[slot_for(id, r, f) as usize].push(id);
        }
        for bucket in buckets {
            match bucket.len() {
                0 => run.duration += timing.empty_slot,
                1 => {
                    run.duration += timing.id_reply;
                    run.collected.push(bucket[0]);
                }
                _ => {
                    run.duration += timing.id_reply; // garbled full-length burst
                    if depth + 1 >= config.max_depth {
                        run.truncated = true;
                    } else {
                        queue.push_back((bucket, depth + 1));
                    }
                }
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(n: usize, seed: u64) -> TsaRun {
        let pop = TagPopulation::with_sequential_ids(n);
        let mut rng = StdRng::seed_from_u64(seed);
        tree_slotted_inventory(
            &pop,
            &TsaConfig::for_expected(n as u64).unwrap(),
            &TimingModel::uniform_slots(),
            &mut rng,
        )
    }

    #[test]
    fn collects_every_tag_exactly_once() {
        let tsa = run(400, 1);
        assert_eq!(tsa.collected.len(), 400);
        let distinct: std::collections::HashSet<_> = tsa.collected.iter().collect();
        assert_eq!(distinct.len(), 400);
        assert!(!tsa.truncated);
    }

    #[test]
    fn cost_is_linear_with_modest_constant() {
        for n in [100usize, 400, 1000] {
            let tsa = run(n, 2);
            let per_tag = tsa.total_slots as f64 / n as f64;
            assert!(
                (1.0..=4.0).contains(&per_tag),
                "n={n}: {per_tag} slots per tag"
            );
        }
    }

    #[test]
    fn beats_or_matches_flat_dfsa_on_slots() {
        // TSA's selling point versus flat re-framing: resolving each
        // collided slot with a tiny dedicated frame wastes less than
        // re-framing all unresolved tags together.
        use crate::collect_all::{collect_all, CollectAllConfig};
        use tagwatch_sim::{Channel, Reader, ReaderConfig};

        let mut tsa_total = 0u64;
        let mut dfsa_total = 0u64;
        for seed in 0..10u64 {
            tsa_total += run(500, seed).total_slots;

            let mut rng = StdRng::seed_from_u64(seed);
            let mut reader = Reader::new(ReaderConfig::default());
            let mut pop = TagPopulation::with_sequential_ids(500);
            dfsa_total += collect_all(
                &mut reader,
                &mut pop,
                &Channel::ideal(),
                &CollectAllConfig::paper(500, 0),
                &mut rng,
            )
            .unwrap()
            .total_slots;
        }
        assert!(
            tsa_total < dfsa_total + dfsa_total / 10,
            "tsa {tsa_total} much worse than dfsa {dfsa_total}"
        );
    }

    #[test]
    fn empty_population_costs_nothing() {
        let pop = TagPopulation::new();
        let mut rng = StdRng::seed_from_u64(3);
        let tsa = tree_slotted_inventory(
            &pop,
            &TsaConfig::for_expected(0).unwrap(),
            &TimingModel::uniform_slots(),
            &mut rng,
        );
        assert_eq!(tsa.total_slots, 0);
        assert_eq!(tsa.frames, 0);
        assert!(tsa.collected.is_empty());
    }

    #[test]
    fn detuned_tags_are_invisible() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pop = TagPopulation::with_sequential_ids(60);
        pop.detune_random(20, &mut rng).unwrap();
        let tsa = tree_slotted_inventory(
            &pop,
            &TsaConfig::for_expected(60).unwrap(),
            &TimingModel::uniform_slots(),
            &mut rng,
        );
        assert_eq!(tsa.collected.len(), 40);
    }

    #[test]
    fn dense_collisions_recurse_but_terminate() {
        // Tiny root frame over many tags: heavy recursion, still total.
        let pop = TagPopulation::with_sequential_ids(300);
        let mut rng = StdRng::seed_from_u64(5);
        let tsa = tree_slotted_inventory(
            &pop,
            &TsaConfig {
                root_frame: FrameSize::new(4).unwrap(),
                child_frame: FrameSize::new(4).unwrap(),
                max_depth: 64,
            },
            &TimingModel::uniform_slots(),
            &mut rng,
        );
        assert_eq!(tsa.collected.len(), 300);
        assert!(tsa.depth_reached > 1);
        assert!(!tsa.truncated);
    }

    #[test]
    fn depth_cap_truncates_gracefully() {
        let pop = TagPopulation::with_sequential_ids(300);
        let mut rng = StdRng::seed_from_u64(6);
        let tsa = tree_slotted_inventory(
            &pop,
            &TsaConfig {
                root_frame: FrameSize::new(2).unwrap(),
                child_frame: FrameSize::new(2).unwrap(),
                max_depth: 2,
            },
            &TimingModel::uniform_slots(),
            &mut rng,
        );
        assert!(tsa.truncated);
        assert!(tsa.collected.len() < 300);
    }

    #[test]
    fn runs_are_seed_reproducible() {
        assert_eq!(run(200, 9).total_slots, run(200, 9).total_slots);
        assert_eq!(run(200, 9).collected, run(200, 9).collected);
    }
}
