//! # tagwatch-protocols
//!
//! Baseline RFID inventory protocols that the paper's evaluation
//! compares against (or cites as alternatives):
//!
//! * [`collect_all`](mod@collect_all) — the **collect-all** strategy the paper's
//!   introduction names and Fig. 4 benchmarks: dynamic framed-slotted
//!   ALOHA that keeps re-framing until (almost) every tag has delivered
//!   its ID. Frame sizing follows Lee et al. \[7\]: the optimal frame
//!   equals the number of still-unidentified tags.
//! * [`query_tree`] — a deterministic **query-tree** anti-collision
//!   protocol (cited family \[3\]): the reader walks a binary prefix
//!   trie of the ID space, splitting on collisions.
//! * [`tree_slotted`] — **Tree Slotted ALOHA** (cited \[2\]): collided
//!   slots spawn dedicated child frames, beating flat re-framing.
//! * [`estimate`] — probabilistic **cardinality estimation** in the
//!   spirit of Kodialam & Nandagopal \[6\]: estimate *how many* tags are
//!   present from empty-slot counts, without identifying anybody.
//!
//! All three run on the `tagwatch-sim` substrate, so their slot counts
//! are directly comparable with TRP/UTRP's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect_all;
pub mod estimate;
pub mod query_tree;
pub mod tree_slotted;

pub use collect_all::{collect_all, CollectAllConfig, CollectAllRun, FramePolicy};
pub use estimate::{estimate_cardinality, EstimateConfig, EstimateOutcome};
pub use query_tree::{query_tree_inventory, QueryTreeRun};
pub use tree_slotted::{tree_slotted_inventory, TsaConfig, TsaRun};
