//! # tagwatch-store
//!
//! Crash-safe durable state for the tagwatch monitoring stack: a
//! length-prefixed, FNV-checksummed **write-ahead log** ([`wal`]), a
//! deterministic sectioned **checkpoint document** ([`checkpoint`]),
//! and a **recovery manager** ([`recovery`]) that scans a possibly
//! damaged log back to its longest intact prefix and says exactly what
//! it had to drop.
//!
//! The design contract, shared with `docs/DURABILITY.md`:
//!
//! * **Replayability** — a WAL plus the run configuration is
//!   sufficient to reproduce the uninterrupted run byte-for-byte:
//!   warm restart = load the last checkpoint + replay the tick tail,
//!   and the resumed run's report digest must equal the never-crashed
//!   baseline's.
//! * **No silent false intact** — a torn write, flipped bit, or
//!   truncated tail is always *detected* (per-record checksums plus
//!   framing) and always *surfaced* as an attributable
//!   [`recovery::RecoveryNote`]; recovery may cost
//!   re-execution of lost ticks, never an unreported gap.
//! * **Determinism** — encoding is fully specified (little-endian
//!   framing, text checkpoints); the same state always produces the
//!   same bytes, so WALs themselves can be diffed and digested in CI.
//!
//! File I/O is quarantined in [`io`] — the rest of the crate works on
//! byte slices, which is what keeps the fault-injection tests (and the
//! `s4-io` lint rule confining filesystem access) honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod error;
pub mod io;
pub mod recovery;
pub mod wal;

pub use checkpoint::CheckpointDoc;
pub use error::StoreError;
pub use recovery::{recover, CorruptionKind, Recovered, RecoveryNote};
pub use wal::{Record, RecordKind, WalWriter, MIN_RECORD_LEN, WAL_HEADER_LEN};
