//! The write-ahead log format: header plus length-prefixed,
//! FNV-checksummed records.
//!
//! ## Framing
//!
//! A WAL is a 5-byte header followed by zero or more records:
//!
//! ```text
//! header  := "TWAL" version:u8                         (5 bytes)
//! record  := payload_len:u32le  kind:u8  payload:[u8; payload_len]
//!            checksum:u64le                            (13 + payload_len bytes)
//! ```
//!
//! The checksum is FNV-1a over the kind byte followed by the payload —
//! the same hash family (same constants, re-exported by
//! `tagwatch-obs`) that digests metric snapshots and soak reports, so
//! one hash implementation covers every integrity check in the
//! workspace. The length prefix is *not* covered by the checksum; a
//! corrupted length manifests as a record that overruns the remaining
//! bytes (a torn record) or as a checksum landing in the wrong place,
//! both of which the [recovery scanner](crate::recovery) detects.
//!
//! Records carry one of four [`RecordKind`]s, mirroring the
//! flight-recorder vocabulary: the run *configuration*, periodic state
//! *checkpoints*, one *tick* event line per monitoring tick, and
//! *recovery notes* stamped into a log that was itself recovered.

use crate::error::StoreError;
use tagwatch_obs::{FNV_OFFSET_BASIS, FNV_PRIME};

/// The 4-byte magic plus 1-byte format version.
pub const WAL_HEADER_LEN: usize = 5;

/// Magic bytes opening every WAL.
pub const WAL_MAGIC: [u8; 4] = *b"TWAL";

/// Current format version.
pub const WAL_VERSION: u8 = 1;

/// Smallest possible record: empty payload (4 length + 1 kind +
/// 8 checksum bytes).
pub const MIN_RECORD_LEN: usize = 13;

/// What a WAL record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// The serialized run configuration (always the first record, so a
    /// WAL is self-contained for replay).
    Config,
    /// A full state checkpoint (a serialized
    /// [`CheckpointDoc`](crate::checkpoint::CheckpointDoc)).
    Checkpoint,
    /// One monitoring tick's event-log line.
    Tick,
    /// A recovery note stamped by a previous resume from this log.
    Note,
}

impl RecordKind {
    /// The on-disk kind byte.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            RecordKind::Config => 1,
            RecordKind::Checkpoint => 2,
            RecordKind::Tick => 3,
            RecordKind::Note => 4,
        }
    }

    /// Parses an on-disk kind byte.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<RecordKind> {
        match byte {
            1 => Some(RecordKind::Config),
            2 => Some(RecordKind::Checkpoint),
            3 => Some(RecordKind::Tick),
            4 => Some(RecordKind::Note),
            _ => None,
        }
    }

    /// Human-readable kind name (appears in recovery summaries).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Config => "config",
            RecordKind::Checkpoint => "checkpoint",
            RecordKind::Tick => "tick",
            RecordKind::Note => "note",
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// What the payload holds.
    pub kind: RecordKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// FNV-1a over the kind byte followed by the payload.
#[must_use]
pub fn record_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    hash ^= u64::from(kind);
    hash = hash.wrapping_mul(FNV_PRIME);
    for &byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Encodes one record into its on-disk framing.
#[must_use]
pub fn encode_record(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MIN_RECORD_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind.as_u8());
    out.extend_from_slice(payload);
    out.extend_from_slice(&record_checksum(kind.as_u8(), payload).to_le_bytes());
    out
}

/// An append-only WAL being built in memory.
///
/// The writer owns the byte buffer; callers persist it with
/// [`crate::io::write_bytes`] (or hand it to a fault plan first, in
/// tests). Appends are infallible — framing cannot fail, and the
/// buffer grows as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalWriter {
    buf: Vec<u8>,
}

impl WalWriter {
    /// Starts a fresh WAL (header only).
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&WAL_MAGIC);
        buf.push(WAL_VERSION);
        WalWriter { buf }
    }

    /// Continues an existing WAL (e.g. a recovered prefix).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadHeader`] if `bytes` does not open with
    /// a valid header; the content past the header is *not* re-scanned
    /// (run [`crate::recovery::recover`] first for that).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        check_header(&bytes)?;
        Ok(WalWriter { buf: bytes })
    }

    /// Appends one record.
    pub fn append(&mut self, kind: RecordKind, payload: &[u8]) {
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.push(kind.as_u8());
        self.buf.extend_from_slice(payload);
        self.buf
            .extend_from_slice(&record_checksum(kind.as_u8(), payload).to_le_bytes());
    }

    /// The bytes written so far (header included).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Total size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log holds no records (header only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= WAL_HEADER_LEN
    }

    /// Consumes the writer, returning the backing bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for WalWriter {
    fn default() -> Self {
        WalWriter::new()
    }
}

/// Validates the 5-byte header.
///
/// # Errors
///
/// Returns [`StoreError::BadHeader`] when the stream is shorter than a
/// header, the magic differs, or the version is unsupported.
pub fn check_header(bytes: &[u8]) -> Result<(), StoreError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(StoreError::BadHeader {
            reason: "stream shorter than the 5-byte header",
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(StoreError::BadHeader {
            reason: "magic bytes are not `TWAL`",
        });
    }
    if bytes[4] != WAL_VERSION {
        return Err(StoreError::BadHeader {
            reason: "unsupported format version",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bytes_roundtrip_and_unknowns_are_rejected() {
        for kind in [
            RecordKind::Config,
            RecordKind::Checkpoint,
            RecordKind::Tick,
            RecordKind::Note,
        ] {
            assert_eq!(RecordKind::from_u8(kind.as_u8()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(RecordKind::from_u8(0), None);
        assert_eq!(RecordKind::from_u8(5), None);
        assert_eq!(RecordKind::from_u8(255), None);
    }

    #[test]
    fn encode_record_matches_writer_append() {
        let mut writer = WalWriter::new();
        writer.append(RecordKind::Tick, b"t=00001 verdict=intact");
        let encoded = encode_record(RecordKind::Tick, b"t=00001 verdict=intact");
        assert_eq!(&writer.bytes()[WAL_HEADER_LEN..], &encoded[..]);
        assert_eq!(encoded.len(), MIN_RECORD_LEN + 22);
    }

    #[test]
    fn checksum_covers_kind_and_payload() {
        let base = record_checksum(1, b"abc");
        assert_ne!(base, record_checksum(2, b"abc"), "kind must matter");
        assert_ne!(base, record_checksum(1, b"abd"), "payload must matter");
        assert_eq!(base, record_checksum(1, b"abc"));
    }

    #[test]
    fn header_validation() {
        let writer = WalWriter::new();
        assert!(writer.is_empty());
        check_header(writer.bytes()).unwrap();
        assert!(WalWriter::from_bytes(writer.bytes().to_vec()).is_ok());

        assert!(check_header(b"TWA").is_err());
        assert!(check_header(b"XWAL\x01").is_err());
        assert!(check_header(b"TWAL\x02").is_err());
        assert!(WalWriter::from_bytes(b"junk!".to_vec()).is_err());
    }

    #[test]
    fn writer_tracks_length() {
        let mut writer = WalWriter::new();
        assert_eq!(writer.len(), WAL_HEADER_LEN);
        writer.append(RecordKind::Config, b"seed 1");
        assert!(!writer.is_empty());
        assert_eq!(writer.len(), WAL_HEADER_LEN + MIN_RECORD_LEN + 6);
        let bytes = writer.clone().into_bytes();
        assert_eq!(bytes, writer.bytes());
    }
}
