//! The crate's only filesystem touchpoint.
//!
//! Everything else in `tagwatch-store` (and in the analytics durable
//! layer above it) operates on in-memory byte buffers, which is what
//! makes crash/corruption fault injection exact and deterministic.
//! This module is the narrow waist where those buffers meet disk, and
//! it is the *only* library module the `s4-io` lint rule permits to
//! name `std::fs`.

use std::fs;
use std::path::Path;

use crate::error::StoreError;

fn io_err(path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// Writes `bytes` to `path`, creating parent directories as needed.
///
/// The write is whole-buffer: durable soak runs build the full WAL in
/// memory and persist it once, so a partially written file only occurs
/// through the scripted storage faults that model it.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if directory creation or the write
/// fails.
pub fn write_bytes<P: AsRef<Path>>(path: P, bytes: &[u8]) -> Result<(), StoreError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| io_err(path, &e))?;
        }
    }
    fs::write(path, bytes).map_err(|e| io_err(path, &e))
}

/// Reads the full contents of `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the read fails.
pub fn read_bytes<P: AsRef<Path>>(path: P) -> Result<Vec<u8>, StoreError> {
    let path = path.as_ref();
    fs::read(path).map_err(|e| io_err(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join("tagwatch-store-io-tests")
            .join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrips_bytes_and_creates_parents() {
        let path = temp_path("roundtrip").join("nested").join("log.wal");
        let payload = b"TWAL\x01some bytes".to_vec();
        write_bytes(&path, &payload).unwrap();
        assert_eq!(read_bytes(&path).unwrap(), payload);
        std::fs::remove_dir_all(temp_path("roundtrip")).ok();
    }

    #[test]
    fn read_missing_file_is_an_io_error() {
        let err = read_bytes(temp_path("never-written")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("never-written"));
    }
}
