//! Deterministic sectioned checkpoint documents.
//!
//! A checkpoint is a text document — one header line, then named
//! sections whose payload lines the *caller* defines. The grammar:
//!
//! ```text
//! tagwatch-checkpoint v1
//! @section <name>
//! <payload line>
//! <payload line>
//! @section <name>
//! …
//! ```
//!
//! This crate knows nothing about what the sections mean: the soak
//! driver serializes its registry, RNG states, ladder counters and so
//! on into lines, and parses them back on warm restart. Keeping the
//! container generic (and textual) makes checkpoints diffable in test
//! failures and keeps the store crate free of upward dependencies.
//!
//! Determinism contract: section order is preserved, serialization is
//! the exact input lines, and `parse(doc.to_bytes()) == doc` for every
//! valid document.

use crate::error::StoreError;

const HEADER: &str = "tagwatch-checkpoint v1";
const SECTION_PREFIX: &str = "@section ";

/// An ordered, named-section text document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointDoc {
    sections: Vec<(String, Vec<String>)>,
}

impl CheckpointDoc {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        CheckpointDoc::default()
    }

    /// Appends a named section.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidSection`] if the name is empty,
    /// contains whitespace or `@`, or any payload line starts with
    /// `@` (which would be ambiguous with a section marker);
    /// [`StoreError::DuplicateSection`] if the name was already used.
    pub fn push_section<I, S>(&mut self, name: &str, lines: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if name.is_empty() || name.contains(char::is_whitespace) || name.contains('@') {
            return Err(StoreError::InvalidSection {
                message: format!("bad section name `{name}`"),
            });
        }
        if self.sections.iter().any(|(n, _)| n == name) {
            return Err(StoreError::DuplicateSection {
                name: name.to_string(),
            });
        }
        let lines: Vec<String> = lines.into_iter().map(Into::into).collect();
        for line in &lines {
            if line.starts_with('@') {
                return Err(StoreError::InvalidSection {
                    message: format!("section `{name}` line starts with `@`: `{line}`"),
                });
            }
            if line.contains('\n') {
                return Err(StoreError::InvalidSection {
                    message: format!("section `{name}` line embeds a newline"),
                });
            }
        }
        self.sections.push((name.to_string(), lines));
        Ok(())
    }

    /// The payload lines of section `name`, if present.
    #[must_use]
    pub fn section(&self, name: &str) -> Option<&[String]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, lines)| lines.as_slice())
    }

    /// All sections in document order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.sections
            .iter()
            .map(|(n, lines)| (n.as_str(), lines.as_slice()))
    }

    /// Serializes to the canonical byte form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::with_capacity(256);
        out.push_str(HEADER);
        out.push('\n');
        for (name, lines) in &self.sections {
            out.push_str(SECTION_PREFIX);
            out.push_str(name);
            out.push('\n');
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.into_bytes()
    }

    /// Parses the canonical byte form back into a document.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ParseCheckpoint`] on a missing/unknown
    /// header, non-UTF-8 input, or a payload line outside any section;
    /// [`StoreError::DuplicateSection`] on a repeated section name.
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        let text = std::str::from_utf8(bytes).map_err(|e| StoreError::ParseCheckpoint {
            line: 0,
            message: format!("not UTF-8: {e}"),
        })?;
        let mut doc = CheckpointDoc::new();
        let mut current: Option<(String, Vec<String>)> = None;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if lineno == 1 {
                if line != HEADER {
                    return Err(StoreError::ParseCheckpoint {
                        line: lineno,
                        message: format!("expected `{HEADER}`, found `{line}`"),
                    });
                }
                continue;
            }
            if let Some(name) = line.strip_prefix(SECTION_PREFIX) {
                if let Some((done_name, lines)) = current.take() {
                    doc.push_section_parsed(done_name, lines, lineno)?;
                }
                current = Some((name.to_string(), Vec::new()));
                continue;
            }
            match current.as_mut() {
                Some((_, lines)) => lines.push(line.to_string()),
                None => {
                    return Err(StoreError::ParseCheckpoint {
                        line: lineno,
                        message: format!("payload line outside any section: `{line}`"),
                    })
                }
            }
        }
        if text.is_empty() {
            return Err(StoreError::ParseCheckpoint {
                line: 1,
                message: "empty document".to_string(),
            });
        }
        if let Some((done_name, lines)) = current.take() {
            doc.push_section_parsed(done_name, lines, text.lines().count())?;
        }
        Ok(doc)
    }

    /// `push_section` with parse-context error mapping.
    fn push_section_parsed(
        &mut self,
        name: String,
        lines: Vec<String>,
        lineno: usize,
    ) -> Result<(), StoreError> {
        self.push_section(&name, lines).map_err(|e| match e {
            dup @ StoreError::DuplicateSection { .. } => dup,
            other => StoreError::ParseCheckpoint {
                line: lineno,
                message: other.to_string(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointDoc {
        let mut doc = CheckpointDoc::new();
        doc.push_section("meta", ["next_tick 25"]).unwrap();
        doc.push_section(
            "rng",
            ["tick 1 2 3 4".to_string(), "markov 5 6 7 8".to_string()],
        )
        .unwrap();
        doc.push_section("empty", Vec::<String>::new()).unwrap();
        doc
    }

    #[test]
    fn roundtrips_byte_exactly() {
        let doc = sample();
        let bytes = doc.to_bytes();
        let parsed = CheckpointDoc::parse(&bytes).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn section_lookup_and_order() {
        let doc = sample();
        assert_eq!(doc.section("meta").unwrap(), ["next_tick 25"]);
        assert_eq!(doc.section("empty").unwrap(), Vec::<String>::new());
        assert!(doc.section("missing").is_none());
        let names: Vec<&str> = doc.sections().map(|(n, _)| n).collect();
        assert_eq!(names, ["meta", "rng", "empty"]);
    }

    #[test]
    fn rejects_bad_names_and_lines() {
        let mut doc = CheckpointDoc::new();
        assert!(doc.push_section("", ["x"]).is_err());
        assert!(doc.push_section("has space", ["x"]).is_err());
        assert!(doc.push_section("at@sign", ["x"]).is_err());
        assert!(doc.push_section("ok", ["@section sneaky"]).is_err());
        assert!(doc.push_section("ok", ["line\nbreak"]).is_err());
        doc.push_section("ok", ["fine"]).unwrap();
        assert!(matches!(
            doc.push_section("ok", ["again"]),
            Err(StoreError::DuplicateSection { .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(CheckpointDoc::parse(b"").is_err());
        assert!(CheckpointDoc::parse(b"wrong header\n").is_err());
        assert!(CheckpointDoc::parse(b"tagwatch-checkpoint v1\norphan line\n").is_err());
        assert!(CheckpointDoc::parse(&[0xff, 0xfe]).is_err());
        let dup = b"tagwatch-checkpoint v1\n@section a\n@section a\n";
        assert!(matches!(
            CheckpointDoc::parse(dup),
            Err(StoreError::DuplicateSection { .. })
        ));
    }

    #[test]
    fn header_only_document_is_valid_and_empty() {
        let doc = CheckpointDoc::parse(b"tagwatch-checkpoint v1\n").unwrap();
        assert_eq!(doc, CheckpointDoc::new());
        // And a new document serializes to exactly that.
        assert_eq!(CheckpointDoc::new().to_bytes(), b"tagwatch-checkpoint v1\n");
    }

    #[test]
    fn preserves_lines_verbatim() {
        let mut doc = CheckpointDoc::new();
        let tricky = "policy m=2 alpha=0.95  # trailing   spaces ok ";
        doc.push_section("registry", [tricky]).unwrap();
        let parsed = CheckpointDoc::parse(&doc.to_bytes()).unwrap();
        assert_eq!(parsed.section("registry").unwrap(), [tricky]);
    }
}
