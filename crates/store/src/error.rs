//! Error type for durable-state operations.

use std::fmt;

/// Everything that can go wrong writing, reading, or parsing durable
/// state.
///
/// Tail *corruption* of a WAL is deliberately **not** an error: the
/// recovery scanner reports it as a
/// [`RecoveryNote`](crate::recovery::RecoveryNote) alongside the
/// intact prefix. Errors are reserved for states recovery cannot work
/// with at all (an unrecognizable header, an unparsable checkpoint, a
/// failed file operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The byte stream does not start with a recognizable WAL header.
    BadHeader {
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A checkpoint document failed to parse.
    ParseCheckpoint {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A checkpoint section name was used twice.
    DuplicateSection {
        /// The repeated name.
        name: String,
    },
    /// A section name or payload line violates the checkpoint grammar.
    InvalidSection {
        /// What was wrong with it.
        message: String,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The stringified OS error.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadHeader { reason } => {
                write!(f, "unrecognizable WAL header: {reason}")
            }
            StoreError::ParseCheckpoint { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            StoreError::DuplicateSection { name } => {
                write!(f, "duplicate checkpoint section `{name}`")
            }
            StoreError::InvalidSection { message } => {
                write!(f, "invalid checkpoint section: {message}")
            }
            StoreError::Io { path, message } => {
                write!(f, "i/o error on `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let errors: Vec<(StoreError, &str)> = vec![
            (
                StoreError::BadHeader {
                    reason: "too short",
                },
                "too short",
            ),
            (
                StoreError::ParseCheckpoint {
                    line: 7,
                    message: "bad counter".to_string(),
                },
                "line 7",
            ),
            (
                StoreError::DuplicateSection {
                    name: "rng".to_string(),
                },
                "`rng`",
            ),
            (
                StoreError::InvalidSection {
                    message: "empty name".to_string(),
                },
                "empty name",
            ),
            (
                StoreError::Io {
                    path: "a/b.wal".to_string(),
                    message: "denied".to_string(),
                },
                "a/b.wal",
            ),
        ];
        for (err, needle) in errors {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} missing {needle}");
        }
    }
}
