//! The recovery manager: scan a possibly damaged WAL back to its
//! longest intact prefix.
//!
//! Recovery never guesses. The scanner walks records front to back,
//! verifying framing and checksums; at the first byte that cannot be
//! part of a valid record it stops, reports everything before it as
//! the intact prefix, and attaches a [`RecoveryNote`] classifying the
//! damage (torn tail, torn record, checksum mismatch, unknown record
//! kind) with its exact offset and the number of bytes dropped. A
//! clean log yields no note — and *only* a clean log does, so a
//! damaged WAL can never masquerade as intact.

use crate::error::StoreError;
use crate::wal::{check_header, Record, RecordKind, MIN_RECORD_LEN, WAL_HEADER_LEN};

/// How a WAL tail was damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Fewer bytes remain than the smallest possible record: the final
    /// write was torn mid-frame (or the tail was truncated inside one).
    TornTail,
    /// A record's length prefix claims more bytes than remain: the
    /// payload or checksum never made it to disk.
    TornRecord,
    /// A record is complete but its FNV-1a checksum does not match:
    /// in-place corruption (e.g. a flipped bit).
    ChecksumMismatch,
    /// A record verifies but carries a kind byte this version does not
    /// know — written by a future format or corrupted in a way the
    /// checksum happens to cover.
    UnknownKind,
}

impl CorruptionKind {
    /// Stable numeric code (used by telemetry events).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            CorruptionKind::TornTail => 1,
            CorruptionKind::TornRecord => 2,
            CorruptionKind::ChecksumMismatch => 3,
            CorruptionKind::UnknownKind => 4,
        }
    }

    /// Human-readable name (appears in recovery summaries and notes).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::TornTail => "torn-tail",
            CorruptionKind::TornRecord => "torn-record",
            CorruptionKind::ChecksumMismatch => "checksum-mismatch",
            CorruptionKind::UnknownKind => "unknown-record-kind",
        }
    }
}

/// An attributable account of damage found (and excised) during
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryNote {
    /// What kind of damage was found.
    pub kind: CorruptionKind,
    /// Byte offset (from the start of the WAL) where the damaged
    /// region begins — also the length of the intact prefix.
    pub offset: u64,
    /// How many trailing bytes were dropped.
    pub dropped_bytes: u64,
}

impl RecoveryNote {
    /// One-line human-readable description, stable enough to assert on.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} at offset {}: dropped {} trailing byte(s), kept intact prefix",
            self.kind.name(),
            self.offset,
            self.dropped_bytes
        )
    }
}

/// The result of scanning a WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Every record in the intact prefix, in append order.
    pub records: Vec<Record>,
    /// Length in bytes of the intact prefix (header included); equal
    /// to the input length exactly when `note` is `None`.
    pub valid_len: usize,
    /// The damage classification, when any byte had to be dropped.
    pub note: Option<RecoveryNote>,
}

impl Recovered {
    /// Whether the log was fully intact.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        self.note.is_none()
    }
}

/// Scans `bytes` and returns the longest valid record prefix plus a
/// classification of whatever damage cut it short.
///
/// # Errors
///
/// Returns [`StoreError::BadHeader`] when the stream does not even
/// open with a valid header — there is no prefix to recover.
pub fn recover(bytes: &[u8]) -> Result<Recovered, StoreError> {
    check_header(bytes)?;
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let total = bytes.len();

    let note = loop {
        let remaining = total - pos;
        if remaining == 0 {
            break None;
        }
        if remaining < MIN_RECORD_LEN {
            break Some(CorruptionKind::TornTail);
        }
        // Framing reads below are bounds-safe: remaining >= 13.
        let payload_len = read_u32(bytes, pos) as usize;
        let record_len = MIN_RECORD_LEN + payload_len;
        if remaining < record_len {
            break Some(CorruptionKind::TornRecord);
        }
        let kind_byte = bytes[pos + 4];
        let payload = &bytes[pos + 5..pos + 5 + payload_len];
        let stored = read_u64(bytes, pos + 5 + payload_len);
        if stored != crate::wal::record_checksum(kind_byte, payload) {
            break Some(CorruptionKind::ChecksumMismatch);
        }
        let Some(kind) = RecordKind::from_u8(kind_byte) else {
            break Some(CorruptionKind::UnknownKind);
        };
        records.push(Record {
            kind,
            payload: payload.to_vec(),
        });
        pos += record_len;
    };

    Ok(Recovered {
        records,
        valid_len: pos,
        note: note.map(|kind| RecoveryNote {
            kind,
            offset: pos as u64,
            dropped_bytes: (total - pos) as u64,
        }),
    })
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;

    fn sample_wal() -> Vec<u8> {
        let mut writer = WalWriter::new();
        writer.append(RecordKind::Config, b"seed 7");
        writer.append(RecordKind::Checkpoint, b"@section meta\nnext_tick 0");
        writer.append(RecordKind::Tick, b"t=00000 verdict=intact");
        writer.append(RecordKind::Tick, b"t=00001 verdict=intact");
        writer.into_bytes()
    }

    #[test]
    fn clean_log_recovers_fully_with_no_note() {
        let bytes = sample_wal();
        let out = recover(&bytes).unwrap();
        assert!(out.is_intact());
        assert_eq!(out.valid_len, bytes.len());
        assert_eq!(out.records.len(), 4);
        assert_eq!(out.records[0].kind, RecordKind::Config);
        assert_eq!(out.records[3].payload, b"t=00001 verdict=intact");
    }

    #[test]
    fn empty_log_is_intact() {
        let out = recover(WalWriter::new().bytes()).unwrap();
        assert!(out.is_intact());
        assert!(out.records.is_empty());
    }

    #[test]
    fn bad_header_is_unrecoverable() {
        assert!(recover(b"").is_err());
        assert!(recover(b"TWA").is_err());
        let mut bytes = sample_wal();
        bytes[0] ^= 0xff;
        assert!(recover(&bytes).is_err());
    }

    #[test]
    fn short_tail_is_torn_tail() {
        let full = sample_wal();
        let bytes = &full[..full.len() - 5]; // cut inside the final checksum
        let out = recover(bytes).unwrap();
        let note = out.note.unwrap();
        // The cut lands inside the final record, whose remaining bytes
        // are fewer than one frame... unless the remainder still spans
        // >= MIN_RECORD_LEN, in which case it reads as a torn record.
        assert!(
            matches!(
                note.kind,
                CorruptionKind::TornTail | CorruptionKind::TornRecord
            ),
            "{note:?}"
        );
        assert_eq!(out.records.len(), 3);
        assert_eq!(note.offset as usize, out.valid_len);
        assert_eq!(note.offset + note.dropped_bytes, bytes.len() as u64);
    }

    #[test]
    fn oversized_length_prefix_is_torn_record() {
        let mut writer = WalWriter::new();
        writer.append(RecordKind::Config, b"seed 7");
        let mut bytes = writer.into_bytes();
        // A record whose length prefix promises far more than exists
        // (leave more than MIN_RECORD_LEN behind so the tail is not
        // classified as merely torn).
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.push(RecordKind::Tick.as_u8());
        bytes.extend_from_slice(b"much too short for the claimed length");
        let out = recover(&bytes).unwrap();
        let note = out.note.unwrap();
        assert_eq!(note.kind, CorruptionKind::TornRecord);
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let mut bytes = sample_wal();
        let last = bytes.len();
        bytes[last - 10] ^= 0x01; // inside the final record's payload
        let out = recover(&bytes).unwrap();
        let note = out.note.unwrap();
        assert_eq!(note.kind, CorruptionKind::ChecksumMismatch);
        assert_eq!(out.records.len(), 3, "prefix before the flip survives");
        assert!(note.describe().contains("checksum-mismatch"));
    }

    #[test]
    fn unknown_kind_with_valid_checksum_is_reported() {
        let mut writer = WalWriter::new();
        writer.append(RecordKind::Config, b"seed 7");
        let mut bytes = writer.into_bytes();
        let payload = b"future";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.push(9); // no such kind
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&crate::wal::record_checksum(9, payload).to_le_bytes());
        let out = recover(&bytes).unwrap();
        assert_eq!(out.note.unwrap().kind, CorruptionKind::UnknownKind);
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn corruption_codes_and_names_are_distinct() {
        let kinds = [
            CorruptionKind::TornTail,
            CorruptionKind::TornRecord,
            CorruptionKind::ChecksumMismatch,
            CorruptionKind::UnknownKind,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.code(), b.code());
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
