//! Property tests for the WAL record codec: encode→decode identity,
//! truncation always recovers to a valid record prefix, and single-bit
//! corruption is always detected — the executable form of the "no
//! silent false intact" contract in `docs/DURABILITY.md`.

use proptest::prelude::*;
use tagwatch_store::recovery::recover;
use tagwatch_store::wal::{RecordKind, WalWriter, WAL_HEADER_LEN};

/// Builds a WAL from parallel kind/payload pools (kinds cycle if the
/// pools differ in length).
fn build_wal(kinds: &[u8], payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<(RecordKind, Vec<u8>)>) {
    let mut writer = WalWriter::new();
    let mut expected = Vec::new();
    for (i, payload) in payloads.iter().enumerate() {
        let kind = RecordKind::from_u8(kinds[i % kinds.len()] % 4 + 1).expect("kind in 1..=4");
        writer.append(kind, payload);
        expected.push((kind, payload.clone()));
    }
    (writer.into_bytes(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_identity(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12),
    ) {
        let (bytes, expected) = build_wal(&kinds, &payloads);
        let out = recover(&bytes).map_err(|e| e.to_string())?;
        prop_assert!(out.is_intact(), "clean log reported damage: {:?}", out.note);
        prop_assert_eq!(out.valid_len, bytes.len());
        prop_assert_eq!(out.records.len(), expected.len());
        for (record, (kind, payload)) in out.records.iter().zip(&expected) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
    }

    #[test]
    fn truncation_recovers_to_a_valid_prefix(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..10),
        cut_seed in any::<u64>(),
    ) {
        let (bytes, expected) = build_wal(&kinds, &payloads);
        // Cut anywhere from "header only" to "one byte short of intact".
        let span = bytes.len() - WAL_HEADER_LEN;
        let cut = WAL_HEADER_LEN + (cut_seed as usize) % span;
        let truncated = &bytes[..cut];

        let out = recover(truncated).map_err(|e| e.to_string())?;
        // The recovered records are exactly a prefix of the originals…
        prop_assert!(out.records.len() <= expected.len());
        for (record, (kind, payload)) in out.records.iter().zip(&expected) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
        // …the valid prefix never extends past the cut…
        prop_assert!(out.valid_len <= cut);
        // …and a cut mid-record is always reported, never silent.
        if out.valid_len < cut {
            let note = out.note.ok_or("mid-record cut produced no recovery note")?;
            prop_assert_eq!(note.offset as usize, out.valid_len);
            prop_assert_eq!(note.offset + note.dropped_bytes, cut as u64);
        } else {
            // Cut exactly on a record boundary: a shorter but fully
            // valid log, indistinguishable from a clean stop by design.
            prop_assert!(out.is_intact());
        }
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..10),
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut bytes, expected) = build_wal(&kinds, &payloads);
        // Flip one bit anywhere in the record region (header flips are
        // a separate, unrecoverable failure tested below).
        let span = bytes.len() - WAL_HEADER_LEN;
        let at = WAL_HEADER_LEN + (flip_seed as usize) % span;
        bytes[at] ^= 1 << bit;

        let out = recover(&bytes).map_err(|e| e.to_string())?;
        let note = out.note.ok_or("bit flip went undetected: log read as intact")?;
        prop_assert!(note.dropped_bytes > 0);
        // Everything before the damage is served unharmed.
        for (record, (kind, payload)) in out.records.iter().zip(&expected) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
        prop_assert!(out.records.len() < expected.len());
    }

    #[test]
    fn header_bit_flip_is_unrecoverable(
        payload in prop::collection::vec(any::<u8>(), 0..32),
        at in 0usize..5,
        bit in 0u8..8,
    ) {
        let mut writer = WalWriter::new();
        writer.append(RecordKind::Config, &payload);
        let mut bytes = writer.into_bytes();
        bytes[at] ^= 1 << bit;
        prop_assert!(recover(&bytes).is_err());
    }
}
