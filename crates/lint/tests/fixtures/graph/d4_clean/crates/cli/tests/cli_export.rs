//! Pins the fixture's public surface so u1 stays out of the d4 story.

#[test]
fn jsonl_is_reproducible_for_a_fixed_stamp() {
    assert_eq!(
        cli::export::to_jsonl(7, &[1]),
        cli::export::to_jsonl(7, &[1])
    );
}
