//! Fixture: the same export shape as `d4_violation`, with the clock
//! hoisted out of the digest path — the caller supplies the stamp.
#![forbid(unsafe_code)]

pub mod export;
