//! JSONL export with an injected timestamp: byte-reproducible, so the
//! taint walk finds nothing to reach.

/// Renders one line per event under a caller-chosen stamp.
pub fn to_jsonl(stamp: u64, events: &[u64]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{{\"stamp\":{stamp},\"event\":{e}}}\n"));
    }
    out
}
