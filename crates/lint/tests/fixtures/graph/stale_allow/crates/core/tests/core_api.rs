//! Pins the fixture's public surface so u1 stays out of the audit.

#[test]
fn robust_answers() {
    assert_eq!(core_fixture::robust(), 7);
}
