//! Fixture: an allow escape whose violation has since been fixed — the
//! stale-allow audit must flag it instead of letting it linger.
#![forbid(unsafe_code)]

/// The unwrap this escape once covered is long gone.
pub fn robust() -> u64 {
    // lint:allow(s2-panic): the parse below cannot fail on a literal
    let v: u64 = 7;
    v
}
