//! Wall-clock helper: the taint source lives here, far from the sink.

use std::time::SystemTime;

/// Milliseconds since the epoch — nondeterministic by construction.
pub fn now_ms() -> u64 {
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_millis() as u64,
        Err(_) => 0,
    }
}
