//! Pins the fixture's public surface so u1 stays out of the d4 story.

#[test]
fn jsonl_mentions_every_event() {
    let out = cli::export::to_jsonl(&[1, 2]);
    assert_eq!(out.lines().count(), 2);
}
