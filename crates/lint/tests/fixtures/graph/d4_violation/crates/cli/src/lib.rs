//! Fixture: a digest sink that transitively reaches a wall-clock
//! source two hops away — the case per-file lexical rules cannot see.
#![forbid(unsafe_code)]

pub mod export;
pub mod time;
