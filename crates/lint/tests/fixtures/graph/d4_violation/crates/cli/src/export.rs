//! JSONL export: the digest sink. Nothing in this file is
//! nondeterministic on its own — the violation is only visible on the
//! call graph.

/// Renders one line per event, stamped with the current time.
pub fn to_jsonl(events: &[u64]) -> String {
    let stamp = crate::time::now_ms();
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{{\"stamp\":{stamp},\"event\":{e}}}\n"));
    }
    out
}
