//! Fixture: one live export, one dead one — u1 must name exactly the
//! dead item and leave the referenced one alone.
#![forbid(unsafe_code)]

/// Referenced from the integration test below — live.
pub fn live_api() -> u64 {
    41
}

/// Referenced nowhere in any bin, test, or facade — the rule's target.
pub fn dead_api() -> u64 {
    42
}
