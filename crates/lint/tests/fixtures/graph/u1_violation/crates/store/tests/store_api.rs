//! References `live_api` and only `live_api`.

#[test]
fn live_api_answers() {
    assert_eq!(store::live_api(), 41);
}
