//! Fixture: the `d4_violation` tree with the sink explicitly escaped
//! via `lint:allow` — the escape must suppress exactly one finding and
//! register as live.
#![forbid(unsafe_code)]

pub mod export;
pub mod time;
