//! JSONL export whose wall-clock stamp is an acknowledged, documented
//! exception — the escape sits on the sink, where d4 reports.

/// Renders one line per event, stamped with the current time.
// lint:allow(d4-digest-taint): operator-facing log lines are stamped on purpose; nothing digests this output
pub fn to_jsonl(events: &[u64]) -> String {
    let stamp = crate::time::now_ms();
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{{\"stamp\":{stamp},\"event\":{e}}}\n"));
    }
    out
}
