//! Pins the fixture's public surface so u1 stays out of the c1 story.

#[test]
fn guarded_reads_the_counter() {
    assert_eq!(sim::guarded(), 7);
}
