//! Fixture: concurrency primitives escaping the designated pool
//! modules, plus a `static mut` — both c1-pool-discipline violations.
#![forbid(unsafe_code)]

use std::sync::Mutex;

static mut ROUNDS: u64 = 0;

/// Guards a counter with a lock that does not belong in this crate.
pub fn guarded() -> u64 {
    let m = Mutex::new(7u64);
    match m.lock() {
        Ok(v) => *v,
        Err(_) => 0,
    }
}
