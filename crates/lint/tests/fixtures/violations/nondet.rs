//! Violation fixture: nondeterminism sources reachable from exports.

use std::collections::HashMap;
use std::time::Instant;

/// Wall-clock reads poison digest reproducibility.
pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_nanos()
}

/// Unordered iteration poisons export ordering.
pub fn sum(map: &HashMap<u64, u64>) -> u64 {
    map.values().sum()
}
