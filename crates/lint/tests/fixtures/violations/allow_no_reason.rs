//! Violation fixture: `lint:allow` escapes must carry a non-empty
//! reason and name a known rule; malformed ones suppress nothing.

/// The allow below has no reason, so the unwrap still fires and the
/// malformed escape is itself reported.
pub fn bad_allow(x: Option<u64>) -> u64 {
    // lint:allow(s2-panic):
    x.unwrap()
}

/// Unknown rule names are reported too.
pub fn unknown_rule(y: Option<u64>) -> u64 {
    // lint:allow(s9-imaginary): not a real rule
    y.unwrap()
}
