//! s4-io violation fixture: filesystem access sprinkled through what
//! pretends to be library code. Every non-test disk touch here must
//! fire; the `#[cfg(test)]` block at the bottom must not.

use std::fs;
use std::fs::OpenOptions;

fn persist_report(json: &str) -> std::io::Result<()> {
    fs::write("results/report.json", json)
}

fn append_log(line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = OpenOptions::new().append(true).open("run.log")?;
    f.write_all(line.as_bytes())
}

fn slurp() -> std::io::Result<Vec<u8>> {
    std::fs::read("state.bin")
}

fn handle() -> std::io::Result<std::fs::File> {
    std::fs::File::open("state.bin")
}

#[cfg(test)]
mod tests {
    #[test]
    fn temp_files_are_fine_in_tests() {
        std::fs::write("/tmp/fixture-scratch", b"ok").ok();
    }
}
