//! Violation fixture: ad-hoc float precision inside a JSON-building
//! format string (must go through `tagwatch_obs::json_f64`).

/// Hand-rolls a JSON object with `{:.3}` floats.
pub fn to_json(rate: f64) -> String {
    format!("{{\"rate\": {rate:.3}}}")
}
