//! Violation fixture: a crate root without `#![forbid(unsafe_code)]`.

/// Nothing else is wrong with this file.
pub fn fine() -> u64 {
    42
}
