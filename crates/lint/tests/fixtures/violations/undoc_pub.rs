//! Violation fixture: public items in `core`/`protocols` must be
//! doc-commented.

/// A documented item separating the module docs from the offenders.
pub const SEVEN: u64 = 7;

pub fn undocumented() -> u64 {
    SEVEN
}

pub struct AlsoUndocumented {
    /// Field docs do not rescue the type itself.
    pub field: u64,
}
