//! Violation fixture: every `s2-panic` trigger in library position.

/// Four distinct panic paths.
pub fn all_the_panics(x: Option<u64>, y: Result<u64, ()>) -> u64 {
    let a = x.unwrap();
    let b = y.expect("nope");
    if a > b {
        panic!("a > b");
    }
    todo!()
}
