//! Clean fixture: comments — including nested block comments — never
//! contribute code tokens.

/* outer comment
   /* nested: unsafe { core::mem::transmute(0u64) } */
   still inside the outer comment: x.unwrap(), panic!("no"),
   Instant::now(), HashMap::new()
*/

// line comment with SystemTime::now() and thread_rng()

/// Lifetime syntax must not be confused with an unterminated char
/// literal by the lexer.
pub fn lifetimes<'a>(x: &'a u64) -> &'a u64 {
    x
}
