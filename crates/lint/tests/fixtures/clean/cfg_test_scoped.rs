//! Clean fixture: panicking assertions are idiomatic inside
//! `#[cfg(test)]` scopes and must not fire `s2-panic`.

/// Library-side code stays clean.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::double;

    #[test]
    fn doubles() {
        let v: Option<u64> = Some(2);
        assert_eq!(double(v.unwrap()), 4);
        let w: Result<u64, ()> = Ok(3);
        assert_eq!(double(w.expect("ok")), 6);
        if false {
            panic!("unreachable in tests is fine");
        }
    }
}
