//! Clean fixture: rule-trigger tokens are inert inside string and raw
//! string literals.

/// Returns documentation text that merely *mentions* forbidden idioms.
pub fn scary_strings() -> Vec<String> {
    vec![
        "call .unwrap( at your peril".to_string(),
        "HashMap iteration order".to_string(),
        r#"Instant::now() and thread_rng() in a raw string"#.to_string(),
        r##"nested fence: r#"panic!("boom")"# stays text"##.to_string(),
        "escaped quote \" then SystemTime".to_string(),
    ]
}

/// A byte string and a char cannot smuggle tokens either.
pub fn more_literals() -> (&'static [u8], char) {
    (br"todo!() as bytes", '"')
}
