//! Clean fixture: a scoped `lint:allow(rule): reason` escape with a
//! non-empty reason suppresses the finding on its line and the next.

use std::collections::HashMap; // lint:allow(d1-nondeterminism): lookup-only map, never iterated

/// Index lookups do not depend on iteration order.
// lint:allow(d1-nondeterminism): parameter type only; the body does point lookups
pub fn lookup(map: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    map.get(&key).copied()
}

/// An invariant-backed expect under a justified allow.
pub fn first(xs: &[u64]) -> u64 {
    // lint:allow(s2-panic): callers guarantee xs is non-empty
    *xs.first().expect("non-empty by contract")
}
