//! Fixture-driven rule tests: every rule must fire on its violation
//! fixture and stay silent on the clean set, and the `lint:allow`
//! escape must behave exactly as documented.
//!
//! The fixtures live under `tests/fixtures/{clean,violations}/` and are
//! deliberately excluded from the workspace walk (`workspace::discover`
//! skips them), so the violations never reach the CI gate.

#![forbid(unsafe_code)]

use std::path::Path;

use tagwatch_lint::{analyze_source, FileMeta, FileRole, Finding, RuleId};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn meta(crate_name: &str, is_crate_root: bool) -> FileMeta {
    FileMeta {
        crate_name: crate_name.to_string(),
        role: FileRole::Src,
        is_crate_root,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

// ---- clean set ----------------------------------------------------

#[test]
fn raw_strings_are_inert() {
    let src = fixture("clean/raw_strings.rs");
    let (findings, _) = analyze_source(&meta("core", false), "clean/raw_strings.rs", &src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn nested_block_comments_are_inert() {
    let src = fixture("clean/nested_comments.rs");
    let (findings, _) = analyze_source(&meta("core", false), "clean/nested_comments.rs", &src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn cfg_test_scopes_exempt_panics() {
    let src = fixture("clean/cfg_test_scoped.rs");
    let (findings, _) = analyze_source(&meta("core", false), "clean/cfg_test_scoped.rs", &src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn allow_with_reason_suppresses_and_is_recorded() {
    let src = fixture("clean/allow_with_reason.rs");
    let (findings, allows) =
        analyze_source(&meta("sim", false), "clean/allow_with_reason.rs", &src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    assert_eq!(allows.len(), 3, "all three escapes recorded: {allows:?}");
    assert!(allows.iter().any(|a| a.rule == RuleId::S2Panic));
    assert!(
        allows.iter().all(|a| !a.reason.trim().is_empty()),
        "reasons survive parsing"
    );
}

// ---- violation set ------------------------------------------------

#[test]
fn s2_fires_on_every_panic_path() {
    let src = fixture("violations/panics.rs");
    let (findings, _) = analyze_source(&meta("core", false), "violations/panics.rs", &src);
    let s2 = rules_of(&findings)
        .iter()
        .filter(|&&r| r == RuleId::S2Panic)
        .count();
    assert_eq!(s2, 4, "unwrap + expect + panic! + todo!: {findings:?}");
}

#[test]
fn s2_is_out_of_scope_for_non_library_crates() {
    let src = fixture("violations/panics.rs");
    let (findings, _) = analyze_source(&meta("bench", false), "violations/panics.rs", &src);
    assert!(
        findings.is_empty(),
        "bench is not a library crate: {findings:?}"
    );
}

#[test]
fn d1_fires_on_clocks_rngs_and_unordered_maps() {
    let src = fixture("violations/nondet.rs");
    let (findings, _) = analyze_source(&meta("core", false), "violations/nondet.rs", &src);
    let d1 = rules_of(&findings)
        .iter()
        .filter(|&&r| r == RuleId::D1Nondeterminism)
        .count();
    assert!(d1 >= 3, "Instant::now + SystemTime + HashMap: {findings:?}");
}

#[test]
fn d2_fires_on_adhoc_float_json() {
    let src = fixture("violations/float_json.rs");
    let (findings, _) = analyze_source(&meta("obs", false), "violations/float_json.rs", &src);
    assert!(
        rules_of(&findings).contains(&RuleId::D2FloatFormat),
        "{findings:?}"
    );
}

#[test]
fn d2_is_out_of_scope_outside_export_crates() {
    let src = fixture("violations/float_json.rs");
    let (findings, _) = analyze_source(&meta("attack", false), "violations/float_json.rs", &src);
    assert!(
        !rules_of(&findings).contains(&RuleId::D2FloatFormat),
        "attack does not build JSON exports: {findings:?}"
    );
}

#[test]
fn s1_fires_on_crate_root_without_forbid() {
    let src = fixture("violations/missing_forbid.rs");
    let (findings, _) = analyze_source(&meta("core", true), "violations/missing_forbid.rs", &src);
    assert!(
        rules_of(&findings).contains(&RuleId::S1Unsafe),
        "{findings:?}"
    );
    // Same file as a non-root module is fine.
    let (findings, _) = analyze_source(&meta("core", false), "violations/missing_forbid.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_allows_suppress_nothing_and_are_reported() {
    let src = fixture("violations/allow_no_reason.rs");
    let (findings, allows) =
        analyze_source(&meta("core", false), "violations/allow_no_reason.rs", &src);
    let rules = rules_of(&findings);
    let s2 = rules.iter().filter(|&&r| r == RuleId::S2Panic).count();
    let syntax = rules.iter().filter(|&&r| r == RuleId::AllowSyntax).count();
    assert_eq!(s2, 2, "both unwraps still fire: {findings:?}");
    assert_eq!(syntax, 2, "empty reason + unknown rule: {findings:?}");
    assert!(allows.is_empty(), "malformed escapes are not recorded");
}

#[test]
fn s4_fires_on_every_disk_touch_in_library_code() {
    let src = fixture("violations/disk_io.rs");
    let (findings, _) = analyze_source(&meta("analytics", false), "violations/disk_io.rs", &src);
    let s4 = rules_of(&findings)
        .iter()
        .filter(|&&r| r == RuleId::S4Io)
        .count();
    assert!(
        s4 >= 7,
        "use/fs::write/OpenOptions/std::fs::read/File:: all fire: {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.rule == RuleId::S4Io),
        "nothing else in the fixture trips: {findings:?}"
    );
}

#[test]
fn s4_is_out_of_scope_for_cli_and_exempts_store_io() {
    let src = fixture("violations/disk_io.rs");
    let (findings, _) = analyze_source(&meta("cli", false), "violations/disk_io.rs", &src);
    assert!(
        findings.is_empty(),
        "the CLI layer owns user-facing file I/O: {findings:?}"
    );
    let (findings, _) = analyze_source(&meta("store", false), "crates/store/src/io.rs", &src);
    assert!(
        !rules_of(&findings).contains(&RuleId::S4Io),
        "store/src/io.rs is the designated touchpoint: {findings:?}"
    );
    let (findings, _) = analyze_source(&meta("store", false), "crates/store/src/wal.rs", &src);
    assert!(
        rules_of(&findings).contains(&RuleId::S4Io),
        "the rest of the store crate is in scope: {findings:?}"
    );
}

#[test]
fn s3_fires_on_undocumented_public_items() {
    let src = fixture("violations/undoc_pub.rs");
    let (findings, _) = analyze_source(&meta("core", false), "violations/undoc_pub.rs", &src);
    let s3 = rules_of(&findings)
        .iter()
        .filter(|&&r| r == RuleId::S3Doc)
        .count();
    assert_eq!(s3, 2, "undocumented fn + struct: {findings:?}");
    // Outside the doc-crates set the same file passes.
    let (findings, _) = analyze_source(&meta("sim", false), "violations/undoc_pub.rs", &src);
    assert!(
        !rules_of(&findings).contains(&RuleId::S3Doc),
        "{findings:?}"
    );
}

// ---- end-to-end: the real workspace stays clean -------------------

#[test]
fn workspace_is_clean_under_deny() {
    let root = tagwatch_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let analysis = tagwatch_lint::analyze_workspace(&root).expect("analyzable workspace");
    assert!(
        analysis.is_clean(),
        "workspace has lint findings:\n{}",
        analysis.human()
    );
    // The digested report is byte-deterministic across runs.
    let again = tagwatch_lint::analyze_workspace(&root).expect("analyzable workspace");
    assert_eq!(analysis.to_json(), again.to_json());
}
