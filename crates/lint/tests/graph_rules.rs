//! Fixture-driven tests for the v2 call-graph rules: each graph rule
//! must fire on its violation mini-workspace, stay silent on the clean
//! one, and honor the `lint:allow` escape; the call-graph artifact must
//! be byte-stable against a committed golden and across runs.
//!
//! Unlike the per-file fixtures in `fixture_rules.rs`, every scenario
//! here is a *directory* shaped like a tiny workspace
//! (`crates/<name>/{src,tests}`), because d4/c1/u1 only exist at
//! whole-workspace scope — the violations span files and crates.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use tagwatch_lint::{analyze_workspace_full, Analysis, CallGraph, Finding, RuleId};

fn scenario(name: &str) -> (Analysis, CallGraph) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph")
        .join(name);
    analyze_workspace_full(&root)
        .unwrap_or_else(|e| panic!("cannot analyze fixture workspace {name}: {e}"))
}

fn of_rule(analysis: &Analysis, rule: RuleId) -> Vec<&Finding> {
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .collect()
}

// ---- d4-digest-taint ----------------------------------------------

#[test]
fn d4_fires_on_a_cross_file_source_with_the_full_chain() {
    let (analysis, _) = scenario("d4_violation");
    let d4 = of_rule(&analysis, RuleId::D4DigestTaint);
    assert_eq!(d4.len(), 1, "exactly the one sink: {:?}", analysis.findings);
    let f = d4[0];
    // Reported at the sink, where the fix belongs…
    assert_eq!(f.file, "crates/cli/src/export.rs");
    assert!(f.message.contains("cli::export::to_jsonl"), "{f:?}");
    assert!(f.message.contains("SystemTime"), "{f:?}");
    // …with the chain walking back to the source's file and line.
    assert_eq!(f.chain.len(), 2, "{f:?}");
    assert_eq!(f.chain[0], "cli::export::to_jsonl");
    assert!(f.chain[1].contains("cli::time::now_ms"), "{f:?}");
    assert!(
        f.chain[1].contains("SystemTime at crates/cli/src/time.rs:7"),
        "{f:?}"
    );
    // The rendered diagnostic carries the chain as note lines.
    let human = analysis.human();
    assert!(human.contains("note: call chain:"), "{human}");
    assert!(human.contains("-> cli::time::now_ms"), "{human}");
}

#[test]
fn d4_stays_silent_when_the_stamp_is_injected() {
    let (analysis, _) = scenario("d4_clean");
    assert!(
        analysis.is_clean(),
        "clean fixture has findings:\n{}",
        analysis.human()
    );
    assert!(analysis.allows.is_empty());
}

#[test]
fn d4_allow_on_the_sink_suppresses_and_registers_live() {
    let (analysis, _) = scenario("d4_allow");
    assert!(
        analysis.is_clean(),
        "escaped fixture still has findings:\n{}",
        analysis.human()
    );
    assert_eq!(analysis.allows.len(), 1);
    let a = &analysis.allows[0];
    assert_eq!(a.rule, RuleId::D4DigestTaint);
    assert!(a.reason.contains("stamped on purpose"), "{a:?}");
    // A *used* escape must not be reported stale.
    assert!(of_rule(&analysis, RuleId::AllowStale).is_empty());
}

// ---- c1-pool-discipline -------------------------------------------

#[test]
fn c1_fires_on_static_mut_and_escaped_primitives() {
    let (analysis, _) = scenario("c1_violation");
    let c1 = of_rule(&analysis, RuleId::C1PoolDiscipline);
    assert_eq!(c1.len(), 2, "{:?}", analysis.findings);
    assert!(
        c1.iter().any(|f| f.message.contains("static mut ROUNDS")),
        "{c1:?}"
    );
    assert!(
        c1.iter()
            .any(|f| f.message.contains("Mutex") && f.message.contains("sim::guarded")),
        "{c1:?}"
    );
    // Nothing else fires: the fixture isolates the rule.
    assert_eq!(analysis.findings.len(), 2, "{:?}", analysis.findings);
}

// ---- u1-dead-pub --------------------------------------------------

#[test]
fn u1_names_the_dead_item_and_spares_the_live_one() {
    let (analysis, _) = scenario("u1_violation");
    let u1 = of_rule(&analysis, RuleId::U1DeadPub);
    assert_eq!(u1.len(), 1, "{:?}", analysis.findings);
    assert!(u1[0].message.contains("store::dead_api"), "{:?}", u1[0]);
    assert!(
        !analysis.human().contains("live_api"),
        "the test-referenced fn must not be flagged:\n{}",
        analysis.human()
    );
}

// ---- stale-allow audit --------------------------------------------

#[test]
fn a_fixed_violation_turns_its_escape_stale() {
    let (analysis, _) = scenario("stale_allow");
    let stale = of_rule(&analysis, RuleId::AllowStale);
    assert_eq!(stale.len(), 1, "{:?}", analysis.findings);
    assert_eq!(stale[0].file, "crates/core/src/lib.rs");
    assert_eq!(stale[0].line, 7, "reported on the escape itself");
    // The escape is still *recorded* (the audit lists it as STALE).
    assert_eq!(analysis.allows.len(), 1);
}

// ---- call-graph artifact ------------------------------------------

#[test]
fn graph_artifact_matches_the_committed_golden_byte_for_byte() {
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph/d4_violation.graph.json");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));
    let (_, graph) = scenario("d4_violation");
    assert_eq!(
        graph.to_json(),
        golden,
        "graph artifact drifted from the golden; if the schema change is \
         intentional, regenerate with `tagwatch-lint --root <fixture> --graph-out`"
    );
}

#[test]
fn graph_artifact_is_identical_across_runs() {
    let (_, first) = scenario("d4_violation");
    let (_, second) = scenario("d4_violation");
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn real_workspace_graph_is_identical_across_runs() {
    let root = tagwatch_lint::find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let (_, first) = analyze_workspace_full(&root).expect("analyzable workspace");
    let (_, second) = analyze_workspace_full(&root).expect("analyzable workspace");
    assert_eq!(first.to_json(), second.to_json());
    assert!(first
        .to_json()
        .contains("\"schema\": \"tagwatch-lint-graph/v1\""));
}
