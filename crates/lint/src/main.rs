//! The `tagwatch-lint` binary: analyze the workspace, print rustc-style
//! diagnostics, optionally archive the digested findings report and the
//! call-graph artifact, audit `lint:allow` escapes, and gate CI with
//! `--deny`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tagwatch_lint::{analyze_workspace_full, find_root, RuleId};

const USAGE: &str = "\
tagwatch-lint: workspace determinism-and-soundness analyzer

USAGE:
    tagwatch-lint [allows] [OPTIONS]

SUBCOMMANDS:
    allows            Audit every lint:allow escape (live vs STALE)

OPTIONS:
    --deny            Exit non-zero when any finding remains
                      (for `allows`: when any escape is stale)
    --report <PATH>   Write the FNV-digested JSON findings report
    --graph-out <PATH> Write the deterministic JSON call-graph artifact
    --explain <RULE>  Print the long-form rationale for one rule
    --root <PATH>     Workspace root (default: walk up to [workspace])
    --list-rules      Print the rule catalog and exit
    --help            Show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut report_path: Option<PathBuf> = None;
    let mut graph_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut audit_allows = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "allows" => audit_allows = true,
            "--deny" => deny = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage_error("--report needs a path"),
            },
            "--graph-out" => match args.next() {
                Some(p) => graph_path = Some(PathBuf::from(p)),
                None => return usage_error("--graph-out needs a path"),
            },
            "--explain" => match args.next().as_deref().map(RuleId::from_name) {
                Some(Some(rule)) => {
                    println!("{}: {}\n", rule.name(), rule.summary());
                    println!("{}", rule.explain());
                    return ExitCode::SUCCESS;
                }
                Some(None) => return usage_error("--explain: unknown rule name"),
                None => return usage_error("--explain needs a rule name"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<18} {}", rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let (analysis, graph) = match analyze_workspace_full(&root) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if audit_allows {
        // Stale allows surface as allow-stale findings; everything the
        // audit prints is derived from the same analysis, so the
        // listing is deterministic.
        let mut stale = 0usize;
        for a in &analysis.allows {
            let is_stale = analysis
                .findings
                .iter()
                .any(|f| f.rule == RuleId::AllowStale && f.file == a.file && f.line == a.line);
            let status = if is_stale {
                stale += 1;
                "STALE"
            } else {
                "live "
            };
            println!(
                "{status} {}:{} lint:allow({}): {}",
                a.file,
                a.line,
                a.rule.name(),
                a.reason
            );
        }
        println!(
            "tagwatch-lint allows: {} escape(s), {} stale",
            analysis.allows.len(),
            stale
        );
        if deny && stale > 0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    print!("{}", analysis.human());
    println!("{}", analysis.summary());

    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("error: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }

    if let Some(path) = graph_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, graph.to_json()) {
            eprintln!("error: cannot write call graph {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("call graph written to {}", path.display());
    }

    if deny && !analysis.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
