//! The `tagwatch-lint` binary: analyze the workspace, print rustc-style
//! diagnostics, optionally archive the digested findings report, and
//! gate CI with `--deny`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tagwatch_lint::{analyze_workspace, find_root, RuleId};

const USAGE: &str = "\
tagwatch-lint: workspace determinism-and-soundness analyzer

USAGE:
    tagwatch-lint [OPTIONS]

OPTIONS:
    --deny            Exit non-zero when any finding remains
    --report <PATH>   Write the FNV-digested JSON findings report
    --root <PATH>     Workspace root (default: walk up to [workspace])
    --list-rules      Print the rule catalog and exit
    --help            Show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut report_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage_error("--report needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<18} {}", rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", analysis.human());
    println!("{}", analysis.summary());

    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("error: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }

    if deny && !analysis.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
