//! A hand-rolled item parser over the lexer's token stream.
//!
//! The v2 analyzer needs more than tokens: to prove that no digest
//! sink can transitively reach a nondeterminism source it must know
//! **which function** each token belongs to and **who calls whom**.
//! This module extracts exactly that — function/type items with their
//! module paths, `use` imports, and per-function call candidates —
//! without pulling in `syn` (the build is offline and the analyzer
//! must stay auditable).
//!
//! It is deliberately not a full Rust grammar. The recognized shapes
//! are the ones the workspace actually uses:
//!
//! * `mod name { … }` / `mod name;` nesting (file modules are derived
//!   from the path by [`module_path_of`]).
//! * `impl Type { … }` and `impl Trait for Type { … }` blocks; the
//!   implementing type's last path segment becomes the method
//!   context, and `Self::` resolves against it.
//! * `fn name` items, with the body located as the first `{` at zero
//!   paren/bracket depth after the signature (return-position
//!   `impl Trait` cannot carry braces, so this is exact for the
//!   grammar subset in use).
//! * `use a::b::{c, d as e};` trees, flattened into alias → path
//!   mappings for the resolver.
//! * `struct`/`enum`/`trait`/`type`/`const`/`static` declarations
//!   (name, visibility, line) for the dead-API rule.
//!
//! Known approximations, documented in `docs/LINTING.md`: bodies of
//! `macro_rules!` definitions are skipped for item and call extraction
//! (their tokens still count as name references for liveness);
//! closures are attributed to their enclosing function; tuple-struct
//! literals and enum-variant constructors (`Some(x)`, `TagId(7)`) are
//! not call edges.

use std::collections::BTreeMap;

use crate::lexer::{Token, TokenKind};
use crate::rules::Code;

/// What kind of non-function item a [`TypeItem`] declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `trait`
    Trait,
    /// `type` alias
    Alias,
    /// `const`
    Const,
    /// `static`
    Static,
}

impl TypeKind {
    /// The declaration keyword, for diagnostics.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            TypeKind::Struct => "struct",
            TypeKind::Enum => "enum",
            TypeKind::Trait => "trait",
            TypeKind::Alias => "type",
            TypeKind::Const => "const",
            TypeKind::Static => "static",
        }
    }
}

/// One call candidate extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallCand {
    /// Path segments as written (`["RoundScratch", "new"]`, or a
    /// single segment for bare calls and method calls).
    pub path: Vec<String>,
    /// Whether this was `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line of the call site.
    pub line: u32,
}

/// One nondeterminism-source token found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceHit {
    /// Human label (`Instant::now`, `HashMap`, …).
    pub what: String,
    /// 1-based line of the token.
    pub line: u32,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Fully qualified path (`crate::module::Type::name` with the
    /// crate directory name as root, e.g.
    /// `analytics::session::MonitoringSession::tick`).
    pub qual: String,
    /// `pub` without a `(crate)`/`(super)` restriction.
    pub is_pub: bool,
    /// Defined inside an `impl` (or trait) block.
    pub is_method: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Call candidates extracted from the body.
    pub calls: Vec<CallCand>,
    /// Nondeterminism-source tokens in the body.
    pub sources: Vec<SourceHit>,
    /// Concurrency-primitive tokens in the body (names only).
    pub concurrency: Vec<SourceHit>,
}

/// One non-function item (for the dead-API rule).
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Bare name.
    pub name: String,
    /// Fully qualified path.
    pub qual: String,
    /// Declaration keyword.
    pub kind: TypeKind,
    /// `pub` without a restriction.
    pub is_pub: bool,
    /// Inside a test region.
    pub in_test: bool,
    /// 1-based line of the keyword.
    pub line: u32,
    /// 1-based column of the keyword.
    pub col: u32,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Function items, in declaration order.
    pub fns: Vec<FnItem>,
    /// Non-function items, in declaration order.
    pub types: Vec<TypeItem>,
    /// `use` alias → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Identifier occurrences that count as *references* for the
    /// liveness rule: every code identifier except those inside `use`
    /// statements, item-declaration name tokens, and the type names
    /// of `impl` headers.
    pub refs: BTreeMap<String, u32>,
    /// `static mut` declarations (name + line) — banned outright by
    /// `c1-pool-discipline`.
    pub statics_mut: Vec<SourceHit>,
}

/// Derives the module path of a file from its workspace-relative path:
/// `crates/core/src/math/binomial.rs` → `core::math::binomial`,
/// `crates/core/src/lib.rs` → `core`, `src/lib.rs` → `tagwatch`,
/// `crates/cli/src/bin/x.rs` → `cli::bin::x`, and test/example files
/// get a `tests`/`examples` pseudo-segment (each is its own crate, so
/// they only need to be unique).
#[must_use]
pub fn module_path_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 2
    {
        (parts[1], &parts[2..])
    } else {
        ("tagwatch", &parts[..])
    };
    let mut segs: Vec<String> = vec![crate_name.to_string()];
    for (i, part) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" {
                segs.push(stem.to_string());
            }
        } else if *part != "src" {
            segs.push((*part).to_string());
        }
    }
    segs.join("::")
}

/// Maps an extern-crate path root to its module root in the symbol
/// table: `tagwatch_core` → `core`, `tagwatch` → `tagwatch`; anything
/// else (std, vendored shims) returns `None`.
#[must_use]
pub fn crate_alias(seg: &str) -> Option<String> {
    if seg == "tagwatch" {
        return Some("tagwatch".to_string());
    }
    seg.strip_prefix("tagwatch_").map(str::to_string)
}

/// Nondeterminism-source token patterns: (matcher name, label).
/// Matched inside every function body; a hit marks the function as a
/// taint source for `d4-digest-taint`.
const SOURCE_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "HashMap", "HashSet"];

/// Concurrency-primitive identifier prefixes for `c1-pool-discipline`.
const CONCURRENCY_IDENTS: [&str; 5] = ["Mutex", "RwLock", "Condvar", "mpsc", "Barrier"];

struct Parser<'a> {
    code: &'a Code<'a>,
    test_ranges: &'a [(usize, usize)],
    out: ParsedFile,
    /// Code-token indices that must not count as references.
    nonref: Vec<usize>,
}

/// Parses one file. `code` is the comment-free token view shared with
/// the lexical rules; `test_ranges` the `#[cfg(test)]` regions.
#[must_use]
pub(crate) fn parse_file(code: &Code<'_>, test_ranges: &[(usize, usize)], rel: &str) -> ParsedFile {
    let root = module_path_of(rel);
    let mut p = Parser {
        code,
        test_ranges,
        out: ParsedFile::default(),
        nonref: Vec::new(),
    };
    p.parse_range(0, code.len(), &root, None);
    p.collect_refs();
    p.out
}

impl<'a> Parser<'a> {
    fn in_test(&self, k: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| lo <= k && k <= hi)
    }

    fn is_path_sep(&self, k: usize) -> bool {
        self.code.is_punct(k, ':') && self.code.is_punct(k + 1, ':')
    }

    /// Whether the item whose keyword sits at `k` is `pub` (without a
    /// `(crate)`/`(super)` restriction). Walks back over at most one
    /// `(` `…` `)` restriction group.
    fn is_pub_at(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        if self.code.is_ident(k - 1, "pub") {
            return true;
        }
        // `pub(crate) fn` → `)` directly before the keyword.
        if self.code.is_punct(k - 1, ')') {
            let mut j = k - 1;
            while j > 0 && !self.code.is_punct(j, '(') {
                j -= 1;
            }
            // Restricted visibility is not public API.
            let _ = j;
            return false;
        }
        false
    }

    /// From `start` (just past `fn name` or an `impl` header start),
    /// returns `Some(body_open)` for the first `{` at zero
    /// paren/bracket depth, or `None` if a `;` ends the item first.
    fn find_body_open(&self, start: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = start;
        while k < hi {
            if self.code.kind(k) == Some(TokenKind::Punct) {
                match self.code.text(k).as_bytes()[0] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => return Some(k),
                    b';' if depth == 0 => return None,
                    _ => {}
                }
            }
            k += 1;
        }
        None
    }

    /// Given the code index of a `{`, returns its matching `}` (or
    /// `hi - 1` when unterminated).
    fn close_of(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        for k in open..hi {
            if self.code.is_punct(k, '{') {
                depth += 1;
            } else if self.code.is_punct(k, '}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        hi.saturating_sub(1)
    }

    fn parse_range(&mut self, lo: usize, hi: usize, module: &str, impl_ctx: Option<&str>) {
        let mut k = lo;
        while k < hi {
            if self.code.kind(k) != Some(TokenKind::Ident) {
                k += 1;
                continue;
            }
            match self.code.text(k) {
                "mod" if self.code.kind(k + 1) == Some(TokenKind::Ident) => {
                    let name = self.code.text(k + 1).to_string();
                    self.nonref.push(k + 1);
                    if self.code.is_punct(k + 2, '{') {
                        let close = self.close_of(k + 2, hi);
                        let inner = format!("{module}::{name}");
                        self.parse_range(k + 3, close, &inner, None);
                        k = close + 1;
                    } else {
                        k += 2; // `mod name;` file module
                    }
                }
                "impl" => {
                    let Some(open) = self.find_body_open(k + 1, hi) else {
                        k += 1;
                        continue;
                    };
                    let ty = self.impl_type_name(k + 1, open);
                    let close = self.close_of(open, hi);
                    self.parse_range(open + 1, close, module, ty.as_deref());
                    k = close + 1;
                }
                "trait" if self.code.kind(k + 1) == Some(TokenKind::Ident) => {
                    let name = self.code.text(k + 1).to_string();
                    self.record_type(k, &name, TypeKind::Trait, module);
                    if let Some(open) = self.find_body_open(k + 2, hi) {
                        let close = self.close_of(open, hi);
                        self.parse_range(open + 1, close, module, Some(&name.clone()));
                        k = close + 1;
                    } else {
                        k += 2;
                    }
                }
                "fn" if self.code.kind(k + 1) == Some(TokenKind::Ident) => {
                    let name = self.code.text(k + 1).to_string();
                    self.nonref.push(k + 1);
                    let qual = match impl_ctx {
                        Some(ty) => format!("{module}::{ty}::{name}"),
                        None => format!("{module}::{name}"),
                    };
                    let tok = self.code.tok(k);
                    let (line, col) = (tok.line, tok.col);
                    let mut item = FnItem {
                        name,
                        qual,
                        is_pub: self.is_pub_at(k),
                        is_method: impl_ctx.is_some(),
                        in_test: self.in_test(k),
                        line,
                        col,
                        calls: Vec::new(),
                        sources: Vec::new(),
                        concurrency: Vec::new(),
                    };
                    match self.find_body_open(k + 2, hi) {
                        Some(open) => {
                            let close = self.close_of(open, hi);
                            self.scan_body(open + 1, close, impl_ctx, &mut item);
                            self.out.fns.push(item);
                            k = close + 1;
                        }
                        None => {
                            // Bodyless trait-method declaration.
                            self.out.fns.push(item);
                            k += 2;
                        }
                    }
                }
                "use" => {
                    k = self.parse_use(k + 1, hi);
                }
                "macro_rules" => {
                    // `macro_rules ! name { … }` — opaque for items and
                    // calls; its tokens still count as references.
                    if let Some(open) = self.find_body_open(k + 1, hi) {
                        k = self.close_of(open, hi) + 1;
                    } else {
                        k += 1;
                    }
                }
                kw @ ("struct" | "enum" | "type" | "const" | "static")
                    if self.code.kind(k + 1) == Some(TokenKind::Ident)
                        || (kw == "static" && self.code.is_ident(k + 1, "mut")) =>
                {
                    let name_at = if self.code.is_ident(k + 1, "mut") {
                        self.out.statics_mut.push(SourceHit {
                            what: self.code.text(k + 2).to_string(),
                            line: self.code.tok(k).line,
                        });
                        k + 2
                    } else {
                        k + 1
                    };
                    // `const fn`, `impl const`, associated `type … ;` in
                    // traits are all handled by the generic skip below.
                    let name = self.code.text(name_at).to_string();
                    if name == "fn" {
                        k += 1; // `const fn` — the fn arm handles it
                        continue;
                    }
                    let kind = match kw {
                        "struct" => TypeKind::Struct,
                        "enum" => TypeKind::Enum,
                        "type" => TypeKind::Alias,
                        "const" => TypeKind::Const,
                        _ => TypeKind::Static,
                    };
                    self.record_type(k, &name, kind, module);
                    // Skip the declaration: to `;` or through `{…}`.
                    match self.find_body_open(name_at + 1, hi) {
                        Some(open) if matches!(kind, TypeKind::Struct | TypeKind::Enum) => {
                            k = self.close_of(open, hi) + 1;
                        }
                        _ => {
                            let mut j = name_at + 1;
                            let mut depth = 0i32;
                            while j < hi {
                                if self.code.kind(j) == Some(TokenKind::Punct) {
                                    match self.code.text(j).as_bytes()[0] {
                                        b'(' | b'[' | b'{' => depth += 1,
                                        b')' | b']' | b'}' => depth -= 1,
                                        b';' if depth == 0 => break,
                                        _ => {}
                                    }
                                }
                                j += 1;
                            }
                            k = j + 1;
                        }
                    }
                }
                _ => k += 1,
            }
        }
    }

    /// Records a non-function item declaration.
    fn record_type(&mut self, kw_at: usize, name: &str, kind: TypeKind, module: &str) {
        self.nonref.push(kw_at + 1);
        let tok = self.code.tok(kw_at);
        self.out.types.push(TypeItem {
            name: name.to_string(),
            qual: format!("{module}::{name}"),
            kind,
            is_pub: self.is_pub_at(kw_at),
            in_test: self.in_test(kw_at),
            line: tok.line,
            col: tok.col,
        });
    }

    /// The implementing type's last path segment for an `impl` header
    /// spanning `[start, open)`: the path after `for` when present,
    /// otherwise the first path at zero angle depth.
    fn impl_type_name(&mut self, start: usize, open: usize) -> Option<String> {
        let mut from = start;
        for k in start..open {
            if self.code.is_ident(k, "for") {
                from = k + 1;
            }
        }
        // Collect the trailing ident of the first path from `from`,
        // skipping generic groups and reference punctuation.
        let mut angle = 0i32;
        let mut last: Option<(usize, String)> = None;
        for k in from..open {
            match self.code.kind(k) {
                Some(TokenKind::Punct) => match self.code.text(k).as_bytes()[0] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    _ => {}
                },
                Some(TokenKind::Ident) if angle == 0 => {
                    let t = self.code.text(k);
                    if t != "dyn" && t != "where" {
                        last = Some((k, t.to_string()));
                    }
                    if self
                        .code
                        .kind(k + 1)
                        .is_some_and(|kind| kind == TokenKind::Punct)
                        && !self.is_path_sep(k + 1)
                        && !self.code.is_punct(k + 1, '<')
                    {
                        // Path ended (e.g. `impl Foo {`).
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some((k, name)) = last {
            self.nonref.push(k);
            return Some(name);
        }
        None
    }

    /// Parses one `use …;` tree starting just past the `use` keyword;
    /// returns the index just past the terminating `;`. Records alias →
    /// path mappings and marks every token as non-reference.
    fn parse_use(&mut self, start: usize, hi: usize) -> usize {
        // Collect the whole statement first.
        let mut end = start;
        while end < hi && !self.code.is_punct(end, ';') {
            end += 1;
        }
        for k in start..end {
            if self.code.kind(k) == Some(TokenKind::Ident) {
                self.nonref.push(k);
            }
        }
        self.parse_use_tree(start, end, &[]);
        end + 1
    }

    /// Recursively flattens a use tree over `[lo, hi)` with the given
    /// path prefix.
    fn parse_use_tree(&mut self, lo: usize, hi: usize, prefix: &[String]) {
        let mut segs: Vec<String> = Vec::new();
        let mut k = lo;
        while k < hi {
            if self.code.kind(k) == Some(TokenKind::Ident) {
                let t = self.code.text(k).to_string();
                if t == "as" {
                    // alias: `path as name`
                    if self.code.kind(k + 1) == Some(TokenKind::Ident) {
                        let alias = self.code.text(k + 1).to_string();
                        let mut full = prefix.to_vec();
                        full.extend(segs.iter().cloned());
                        self.out.imports.insert(alias, full);
                    }
                    return;
                }
                segs.push(t);
                k += 1;
            } else if self.is_path_sep(k) {
                k += 2;
            } else if self.code.is_punct(k, '{') {
                let close = self.close_of(k, hi + 1);
                // Group: split on top-level commas.
                let mut depth = 0i32;
                let mut item_lo = k + 1;
                let mut full = prefix.to_vec();
                full.extend(segs.iter().cloned());
                for j in k + 1..close {
                    if self.code.kind(j) == Some(TokenKind::Punct) {
                        match self.code.text(j).as_bytes()[0] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            b',' if depth == 0 => {
                                self.parse_use_tree(item_lo, j, &full);
                                item_lo = j + 1;
                            }
                            _ => {}
                        }
                    }
                }
                if item_lo < close {
                    self.parse_use_tree(item_lo, close, &full);
                }
                return;
            } else if self.code.is_punct(k, '*') {
                return; // glob: no aliases recorded (conservative)
            } else {
                k += 1;
            }
        }
        if let Some(last) = segs.last().cloned() {
            let mut full = prefix.to_vec();
            full.extend(segs);
            self.out.imports.insert(last, full);
        }
    }

    /// Scans a function body for call candidates, nondeterminism
    /// sources, and concurrency primitives.
    fn scan_body(&mut self, lo: usize, hi: usize, impl_ctx: Option<&str>, item: &mut FnItem) {
        let mut k = lo;
        while k < hi {
            if self.code.kind(k) != Some(TokenKind::Ident) {
                k += 1;
                continue;
            }
            let text = self.code.text(k);
            let line = self.code.tok(k).line;

            // -- nondeterminism sources ------------------------------
            if SOURCE_IDENTS.contains(&text) {
                item.sources.push(SourceHit {
                    what: text.to_string(),
                    line,
                });
            }
            if text == "Instant" && self.is_path_sep(k + 1) && self.code.is_ident(k + 3, "now") {
                item.sources.push(SourceHit {
                    what: "Instant::now".to_string(),
                    line,
                });
            }
            if text == "thread" && self.is_path_sep(k + 1) && self.code.is_ident(k + 3, "current") {
                item.sources.push(SourceHit {
                    what: "thread::current".to_string(),
                    line,
                });
            }
            if text == "RandomState" {
                item.sources.push(SourceHit {
                    what: "RandomState".to_string(),
                    line,
                });
            }
            if text == "env"
                && self.is_path_sep(k + 1)
                && (self.code.is_ident(k + 3, "var")
                    || self.code.is_ident(k + 3, "vars")
                    || self.code.is_ident(k + 3, "var_os"))
            {
                item.sources.push(SourceHit {
                    what: format!("env::{}", self.code.text(k + 3)),
                    line,
                });
            }

            // `static mut` declared inside a fn body is still banned.
            if text == "static" && self.code.is_ident(k + 1, "mut") {
                self.out.statics_mut.push(SourceHit {
                    what: self.code.text(k + 2).to_string(),
                    line,
                });
            }

            // -- concurrency primitives ------------------------------
            if CONCURRENCY_IDENTS.contains(&text) || text.starts_with("Atomic") {
                item.concurrency.push(SourceHit {
                    what: text.to_string(),
                    line,
                });
            }
            if text == "thread"
                && self.is_path_sep(k + 1)
                && (self.code.is_ident(k + 3, "spawn") || self.code.is_ident(k + 3, "scope"))
            {
                item.concurrency.push(SourceHit {
                    what: format!("thread::{}", self.code.text(k + 3)),
                    line,
                });
            }

            // -- call candidates -------------------------------------
            if self.code.is_punct(k + 1, '(') && !KEYWORDS.contains(&text) {
                if k > lo && self.code.is_punct(k - 1, '.') {
                    item.calls.push(CallCand {
                        path: vec![text.to_string()],
                        method: true,
                        line,
                    });
                } else {
                    let path = self.path_ending_at(k, lo, impl_ctx);
                    // Single-segment uppercase names are tuple-struct /
                    // enum-variant constructors, not calls.
                    let constructor =
                        path.len() == 1 && path[0].chars().next().is_some_and(char::is_uppercase);
                    if !constructor {
                        item.calls.push(CallCand {
                            path,
                            method: false,
                            line,
                        });
                    }
                }
            } else if self.is_path_sep(k + 1)
                && self.code.kind(k + 3) == Some(TokenKind::Ident)
                && !self.code.is_punct(k + 4, '(')
                && !self.is_path_sep(k + 4)
            {
                // Bare multi-segment path not followed by a call:
                // `map(Self::helper)`, `sort_by_key(fnv1a_bytes)` — the
                // trailing segment may still be a function reference.
                let tail = self.code.text(k + 3);
                if tail.chars().next().is_some_and(char::is_lowercase) {
                    let mut path = self.path_ending_at(k, lo, impl_ctx);
                    path.push(tail.to_string());
                    item.calls.push(CallCand {
                        path,
                        method: false,
                        line,
                    });
                }
            }
            k += 1;
        }
        item.calls.dedup();
    }

    /// Collects the full path whose final segment is the ident at `k`,
    /// walking back over `::` separators. `Self` is substituted with
    /// the impl context.
    fn path_ending_at(&self, k: usize, lo: usize, impl_ctx: Option<&str>) -> Vec<String> {
        let mut rev = vec![self.code.text(k).to_string()];
        let mut j = k;
        while j >= lo + 3
            && self.is_path_sep(j - 2)
            && self.code.kind(j - 3) == Some(TokenKind::Ident)
        {
            rev.push(self.code.text(j - 3).to_string());
            j -= 3;
        }
        rev.reverse();
        if rev.first().is_some_and(|s| s == "Self") {
            if let Some(ty) = impl_ctx {
                rev[0] = ty.to_string();
            }
        }
        rev
    }

    /// Counts identifier references, excluding the recorded
    /// non-reference tokens (declaration names, use statements, impl
    /// headers). Format-string interpolations (`"{PROM_PREFIX}x"`)
    /// also count: they are how exporters reference shared constants.
    fn collect_refs(&mut self) {
        self.nonref.sort_unstable();
        for k in 0..self.code.len() {
            match self.code.kind(k) {
                Some(TokenKind::Ident) => {
                    if self.nonref.binary_search(&k).is_ok() {
                        continue;
                    }
                    let t = self.code.text(k);
                    if KEYWORDS.contains(&t) {
                        continue;
                    }
                    *self.out.refs.entry(t.to_string()).or_insert(0) += 1;
                }
                Some(TokenKind::Str | TokenKind::RawStr) => {
                    for name in interpolated_names(self.code.text(k)) {
                        *self.out.refs.entry(name).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Rust keywords and primitive names that are never call targets or
/// item references.
const KEYWORDS: [&str; 40] = [
    "as",
    "break",
    "const",
    "continue",
    "crate",
    "else",
    "enum",
    "extern",
    "false",
    "fn",
    "for",
    "if",
    "impl",
    "in",
    "let",
    "loop",
    "match",
    "mod",
    "move",
    "mut",
    "pub",
    "ref",
    "return",
    "self",
    "Self",
    "static",
    "struct",
    "super",
    "trait",
    "true",
    "type",
    "unsafe",
    "use",
    "where",
    "while",
    "async",
    "await",
    "dyn",
    "union",
    "macro_rules",
];

/// Extracts `{name}` / `{name:spec}` interpolation identifiers from a
/// string-literal token's text. Positional (`{0}`) and escaped (`{{`)
/// braces yield nothing; only names that could reference an item
/// (`{PROM_PREFIX}`, `{rate:.3}`) count.
fn interpolated_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut names = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > start
                && !bytes[start].is_ascii_digit()
                && j < bytes.len()
                && (bytes[j] == b'}' || bytes[j] == b':' || bytes[j] == b'.')
            {
                names.push(text[start..j].to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    names
}

/// Convenience for tests and fixture harnesses: lex + parse a source
/// string as `rel`.
#[must_use]
pub fn parse_source(src: &str, rel: &str) -> ParsedFile {
    let toks = crate::lexer::lex(src);
    let code = Code::new(src, &toks);
    let ranges = crate::rules::compute_test_ranges(&code);
    parse_file(&code, &ranges, rel)
}

/// Re-exported for the parser: tokens of one file. (Kept here so the
/// module is self-contained in rustdoc.)
#[allow(unused)]
type _TokenAlias = Token;

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_source(src, "crates/core/src/x.rs")
    }

    #[test]
    fn module_paths_follow_the_layout() {
        assert_eq!(module_path_of("crates/core/src/lib.rs"), "core");
        assert_eq!(
            module_path_of("crates/core/src/math/binomial.rs"),
            "core::math::binomial"
        );
        assert_eq!(module_path_of("src/lib.rs"), "tagwatch");
        assert_eq!(module_path_of("crates/cli/src/main.rs"), "cli");
        assert_eq!(
            module_path_of("crates/bench/src/bin/perf.rs"),
            "bench::bin::perf"
        );
        assert_eq!(
            module_path_of("crates/analytics/tests/soak.rs"),
            "analytics::tests::soak"
        );
    }

    #[test]
    fn fns_get_qualified_paths_and_impl_context() {
        let p = parse(
            "pub fn free() {}\nmod inner { fn hidden() {} }\nstruct S;\nimpl S { pub fn method(&self) { helper(); } }\nfn helper() {}\n",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "core::x::free",
                "core::x::inner::hidden",
                "core::x::S::method",
                "core::x::helper"
            ]
        );
        assert!(p.fns[0].is_pub && !p.fns[1].is_pub);
        assert!(p.fns[2].is_method);
        assert_eq!(p.fns[2].calls.len(), 1);
        assert_eq!(p.fns[2].calls[0].path, ["helper"]);
    }

    #[test]
    fn impl_for_takes_the_implementing_type() {
        let p = parse("struct Foo;\ntrait T { fn t(&self); }\nimpl T for Foo { fn t(&self) {} }\n");
        assert!(p.fns.iter().any(|f| f.qual == "core::x::Foo::t"));
        // The bodyless trait declaration is context `T`.
        assert!(p.fns.iter().any(|f| f.qual == "core::x::T::t"));
    }

    #[test]
    fn use_trees_flatten_to_aliases() {
        let p = parse(
            "use std::collections::{BTreeMap, BTreeSet as Set};\nuse tagwatch_obs::fnv1a_lines;\n",
        );
        assert_eq!(
            p.imports.get("Set").unwrap(),
            &vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeSet".to_string()
            ]
        );
        assert_eq!(
            p.imports.get("fnv1a_lines").unwrap(),
            &vec!["tagwatch_obs".to_string(), "fnv1a_lines".to_string()]
        );
        // Use tokens never count as references.
        assert!(!p.refs.contains_key("BTreeMap"));
    }

    #[test]
    fn calls_capture_paths_methods_and_self() {
        let p = parse(
            "struct S;\nimpl S { fn a(&self) { self.b(); Self::c(); core::util::d(); }\n fn b(&self) {} fn c() {} }\n",
        );
        let a = &p.fns[0];
        let paths: Vec<(Vec<String>, bool)> =
            a.calls.iter().map(|c| (c.path.clone(), c.method)).collect();
        assert!(paths.contains(&(vec!["b".to_string()], true)));
        assert!(paths.contains(&(vec!["S".to_string(), "c".to_string()], false)));
        assert!(paths.contains(&(
            vec!["core".to_string(), "util".to_string(), "d".to_string()],
            false
        )));
    }

    #[test]
    fn sources_and_concurrency_are_attributed_to_the_fn() {
        let p = parse(
            "fn t() { let _ = std::time::Instant::now(); }\nfn u() { let _m: std::sync::Mutex<u32> = std::sync::Mutex::new(0); }\n",
        );
        assert_eq!(p.fns[0].sources.len(), 1);
        assert_eq!(p.fns[0].sources[0].what, "Instant::now");
        assert!(p.fns[1].concurrency.iter().any(|c| c.what == "Mutex"));
    }

    #[test]
    fn constructors_are_not_calls() {
        let p = parse("fn f() -> Option<u32> { Some(1) }\n");
        assert!(p.fns[0].calls.is_empty(), "{:?}", p.fns[0].calls);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let p = parse("macro_rules! m { () => { pub fn ghost() {} }; }\nfn real() {}\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn refs_exclude_declarations_but_count_uses() {
        let p = parse("pub struct Widget;\nfn f(w: Widget) -> Widget { w }\n");
        // Two type-position references; the declaration is excluded.
        assert_eq!(p.refs.get("Widget").copied(), Some(2));
    }
}
